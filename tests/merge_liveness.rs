//! Deadlock and starvation battery for the channel-merge scheduler.
//!
//! Conservative parallel simulation deadlocks when every shard waits on
//! a channel bound that never advances. The merge engine avoids this by
//! construction — an empty wheel imposes no bound, the null-message
//! equivalent of "nothing is coming" — but that argument only holds if
//! the implementation actually refreshes peeks and skips empty senders.
//! These scenarios are built so a naive bound computation WOULD stall:
//! shards with permanently empty wheels, channels that only ever carry
//! traffic one way, and partition windows that silence the control
//! plane mid-run. Every run executes under a wall-clock watchdog and
//! must still produce the barrier engine's byte-identical report.

use mpls_control::{ControlPlane, LinkSpec, LspRequest, RouterRole, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_ldp::LdpConfig;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{
    EngineKind, FaultPlan, QueueDiscipline, RecoveryMode, RestorationPolicy, RouterKind, SimReport,
    Simulation,
};
use mpls_packet::ipv4::parse_addr;
use std::time::Duration;

/// Runs `f` on a helper thread and panics if it has not finished within
/// `secs` of wall-clock time — a deadlocked engine hangs forever, and a
/// starving one for long enough that this bound trips reliably even on
/// a loaded CI machine.
fn with_watchdog<T: Send + 'static>(
    what: &str,
    secs: u64,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let label = what.to_string();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(v) => v,
        Err(_) => panic!("{label}: engine did not finish within {secs}s — deadlock or starvation"),
    }
}

/// A line 0-1-...-(n-1) with LERs at both ends and heterogeneous
/// delays: odd-indexed links are 20x slower, so per-channel bounds
/// differ by more than an order of magnitude.
fn line(n: u32) -> ControlPlane {
    let last = n - 1;
    let mut topo = Topology::new();
    for id in 0..n {
        let role = if id == 0 || id == last {
            RouterRole::Ler
        } else {
            RouterRole::Lsr
        };
        topo.add_node(id, role, format!("n{id}"));
    }
    for id in 0..last {
        topo.add_link(LinkSpec {
            a: id,
            b: id + 1,
            cost: 1,
            bandwidth_bps: 200_000_000,
            delay_ns: if id % 2 == 1 { 400_000 } else { 20_000 },
        });
    }
    let mut cp = ControlPlane::new(topo);
    cp.attach_prefix(last, Prefix::new(parse_addr("192.168.1.0").unwrap(), 24));
    cp.attach_prefix(0, Prefix::new(parse_addr("10.1.0.0").unwrap(), 16));
    cp.establish_lsp(LspRequest::best_effort(
        0,
        last,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .expect("forward LSP");
    cp.establish_lsp(LspRequest::best_effort(
        last,
        0,
        Prefix::new(parse_addr("10.1.0.0").unwrap(), 16),
    ))
    .expect("reverse LSP");
    cp
}

fn one_way_flow(ingress: u32) -> FlowSpec {
    FlowSpec {
        name: "fwd".into(),
        ingress,
        src_addr: parse_addr("10.1.0.5").unwrap(),
        dst_addr: parse_addr("192.168.1.5").unwrap(),
        payload_bytes: 400,
        precedence: 5,
        pattern: TrafficPattern::Cbr {
            interval_ns: 50_000,
        },
        start_ns: 0,
        stop_ns: 6_000_000,
        police: None,
    }
}

#[allow(clippy::too_many_arguments)]
fn run(
    cp: &ControlPlane,
    flows: &[FlowSpec],
    plan: Option<FaultPlan>,
    hints: &[(u32, usize)],
    shards: usize,
    engine: EngineKind,
    ldp: bool,
    horizon_ns: u64,
) -> SimReport {
    let mut sim = Simulation::build(
        cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 32 },
        7,
    );
    sim.set_shards(shards);
    sim.set_engine(engine);
    for &(node, shard) in hints {
        sim.shard_hint(node, shard);
    }
    if ldp {
        sim.enable_ldp(LdpConfig::default());
    }
    if let Some(plan) = plan {
        sim.set_fault_plan(plan);
    }
    for f in flows {
        sim.add_flow(f.clone());
    }
    sim.run(horizon_ns)
}

fn assert_identical(baseline: &SimReport, report: &SimReport, what: &str) {
    let a = serde_json::to_string(baseline).expect("report serializes");
    let b = serde_json::to_string(report).expect("report serializes");
    assert_eq!(
        a, b,
        "{what}: report diverged from the sequential barrier run"
    );
}

/// Shards 2 and 3 hold only reactive routers that never see a packet:
/// their wheels are empty for the entire run. A bound computation that
/// waits for idle shards to "catch up" stalls here forever, because a
/// reactive router with no traffic never schedules anything.
#[test]
fn zero_traffic_shards_do_not_starve_the_busy_ones() {
    let reports = with_watchdog("zero-traffic shards", 60, || {
        // A line of 8 where BOTH LERs sit at the head: all traffic
        // crosses only the 0-1 boundary while nodes 2..8 never see a
        // packet — reactive routers, so their wheels stay empty.
        let mut topo = Topology::new();
        topo.add_node(0, RouterRole::Ler, "n0");
        topo.add_node(1, RouterRole::Ler, "n1");
        for id in 2..8 {
            topo.add_node(id, RouterRole::Lsr, format!("n{id}"));
        }
        for id in 0..7u32 {
            topo.add_link(LinkSpec {
                a: id,
                b: id + 1,
                cost: 1,
                bandwidth_bps: 200_000_000,
                delay_ns: if id % 2 == 1 { 400_000 } else { 20_000 },
            });
        }
        let mut cp = ControlPlane::new(topo);
        cp.attach_prefix(1, Prefix::new(parse_addr("192.168.1.0").unwrap(), 24));
        cp.attach_prefix(0, Prefix::new(parse_addr("10.1.0.0").unwrap(), 16));
        cp.establish_lsp(LspRequest::best_effort(
            0,
            1,
            Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
        ))
        .expect("head LSP");
        let flow = one_way_flow(0);
        let hints: Vec<(u32, usize)> = vec![
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 2),
            (5, 3),
            (6, 3),
            (7, 3),
        ];
        let base = run(
            &cp,
            &[flow.clone()],
            None,
            &[],
            1,
            EngineKind::Barrier,
            false,
            20_000_000,
        );
        let merge = run(
            &cp,
            &[flow],
            None,
            &hints,
            4,
            EngineKind::Merge,
            false,
            20_000_000,
        );
        (base, merge)
    });
    let (base, merge) = reports;
    assert!(
        base.flow("fwd").unwrap().delivered > 0,
        "traffic must actually cross the busy boundary"
    );
    assert_identical(&base, &merge, "zero-traffic shards");
}

/// Traffic crosses every shard boundary in one direction only, so the
/// reverse channels never carry an event. If the engine's bounds only
/// advanced when a channel delivered something (no null-message
/// equivalent), the upstream shard would block on its silent inbound
/// channel forever.
#[test]
fn one_way_channels_do_not_deadlock() {
    let reports = with_watchdog("one-way channels", 60, || {
        let cp = line(8);
        let flow = one_way_flow(0);
        let base = run(
            &cp,
            &[flow.clone()],
            None,
            &[],
            1,
            EngineKind::Barrier,
            false,
            20_000_000,
        );
        let merge = run(
            &cp,
            &[flow],
            None,
            &[],
            4,
            EngineKind::Merge,
            false,
            20_000_000,
        );
        (base, merge)
    });
    let (base, merge) = reports;
    let s = base.flow("fwd").unwrap();
    assert!(s.delivered > 0, "one-way traffic must actually flow");
    assert_identical(&base, &merge, "one-way channels");
}

/// A partition window under LDP silences the middle of the line while
/// sessions expire and reconverge: control traffic stops crossing the
/// cut, shards on the far side go quiet, and the engine must keep
/// advancing through the window on time alone.
#[test]
fn partition_window_under_ldp_keeps_advancing() {
    let reports = with_watchdog("ldp partition window", 120, || {
        let cp = line(6);
        let mid = cp.topology().link_between(2, 3).expect("link 2-3");
        let make_plan = || {
            let mut plan = FaultPlan::new(RestorationPolicy {
                detection_delay_ns: 300_000,
                resignal_delay_ns: 300_000,
                backoff_factor: 2,
                max_retries: 4,
                hold_down_ns: 1_000_000,
                mode: RecoveryMode::Restoration,
            });
            plan.partition(mid, 14_000_000, 26_000_000);
            plan
        };
        let flow = FlowSpec {
            start_ns: 10_000_000,
            stop_ns: 34_000_000,
            ..one_way_flow(0)
        };
        let horizon = 60_000_000;
        let base = run(
            &cp,
            &[flow.clone()],
            Some(make_plan()),
            &[],
            1,
            EngineKind::Barrier,
            true,
            horizon,
        );
        let merge = run(
            &cp,
            &[flow],
            Some(make_plan()),
            &[],
            4,
            EngineKind::Merge,
            true,
            horizon,
        );
        (base, merge)
    });
    let (base, merge) = reports;
    assert!(
        base.control.sessions_established > 0,
        "LDP must come up before the partition"
    );
    assert_identical(&base, &merge, "ldp partition window");
}

/// Eight shards on an eight-node line: every shard holds exactly one
/// node, so every channel is a cross-shard channel and the bound
/// computation is exercised on the densest possible dependency graph.
#[test]
fn one_node_per_shard_terminates() {
    let reports = with_watchdog("one node per shard", 60, || {
        let cp = line(8);
        let flow = one_way_flow(0);
        let base = run(
            &cp,
            &[flow.clone()],
            None,
            &[],
            1,
            EngineKind::Barrier,
            false,
            20_000_000,
        );
        let merge = run(
            &cp,
            &[flow],
            None,
            &[],
            8,
            EngineKind::Merge,
            false,
            20_000_000,
        );
        (base, merge)
    });
    let (base, merge) = reports;
    assert_eq!(merge.engine.shards, 8, "line must actually split 8 ways");
    assert_identical(&base, &merge, "one node per shard");
}
