//! Closed-loop traffic end to end: congestion windows react to load,
//! transfers complete, conservation holds with retransmissions
//! accounted, and — the hard part — the report is byte-identical across
//! shard counts {1, 2, 4} × engines {barrier, merge}, random topologies
//! and fault schedules included.

use mpls_control::{ControlPlane, LinkSpec, LspRequest, RouterRole, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::traffic::{ClosedLoopSpec, FlowSpec, TrafficPattern};
use mpls_net::{
    EngineKind, FaultPlan, QueueDiscipline, RecoveryMode, RestorationPolicy, RouterKind, SimReport,
    Simulation, SubscriberModel,
};
use mpls_packet::ipv4::parse_addr;
use proptest::prelude::*;

/// A `rows x cols` grid with LERs in opposite corners and per-link
/// delay spread, so shard cuts see varying lookaheads.
fn grid_plane(rows: u32, cols: u32, base_delay_us: u64, delay_salt: u64) -> ControlPlane {
    let last = rows * cols - 1;
    let mut topo = Topology::new();
    for id in 0..=last {
        let role = if id == 0 || id == last {
            RouterRole::Ler
        } else {
            RouterRole::Lsr
        };
        topo.add_node(id, role, format!("n{id}"));
    }
    let mut add = |a: u32, b: u32| {
        let jitter = (a as u64 * 31 + b as u64 * 7 + delay_salt) % 40;
        topo.add_link(LinkSpec {
            a,
            b,
            cost: 1,
            bandwidth_bps: 200_000_000,
            delay_ns: (base_delay_us + jitter) * 1_000,
        });
    };
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                add(id, id + 1);
            }
            if r + 1 < rows {
                add(id, id + cols);
            }
        }
    }
    let mut cp = ControlPlane::new(topo);
    cp.attach_prefix(last, Prefix::new(parse_addr("192.168.1.0").unwrap(), 24));
    cp.attach_prefix(0, Prefix::new(parse_addr("10.1.0.0").unwrap(), 16));
    cp.establish_lsp(LspRequest::best_effort(
        0,
        last,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .expect("forward LSP");
    cp.establish_lsp(LspRequest::best_effort(
        last,
        0,
        Prefix::new(parse_addr("10.1.0.0").unwrap(), 16),
    ))
    .expect("reverse LSP");
    cp
}

fn closed_loop_flow(name: &str, ingress: u32, dst: &str, cl: ClosedLoopSpec) -> FlowSpec {
    FlowSpec {
        name: name.into(),
        ingress,
        src_addr: parse_addr("10.1.0.5").unwrap(),
        dst_addr: parse_addr(dst).unwrap(),
        payload_bytes: 600,
        precedence: 3,
        pattern: TrafficPattern::ClosedLoop(cl),
        start_ns: 0,
        stop_ns: 8_000_000,
        police: None,
    }
}

fn run_once(
    cp: &ControlPlane,
    flows: &[FlowSpec],
    plan: Option<&FaultPlan>,
    seed: u64,
    shards: usize,
    engine: EngineKind,
    horizon_ns: u64,
) -> SimReport {
    let mut sim = Simulation::build(
        cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 32 },
        seed,
    );
    sim.set_shards(shards);
    sim.set_engine(engine);
    if let Some(plan) = plan {
        sim.set_fault_plan(plan.clone());
    }
    for f in flows {
        sim.add_flow(f.clone());
    }
    sim.run(horizon_ns)
}

/// Per-flow conservation with retransmissions: every emission —
/// original or re-send — is independently tracked, so
/// `sent = delivered + all per-cause discards` holds exactly, and the
/// retransmit count is bounded by emissions.
fn assert_conservation(report: &SimReport) {
    for (spec, st) in &report.flows {
        let drops = st.router_dropped
            + st.queue_dropped
            + st.policer_dropped
            + st.link_dropped
            + st.loss_dropped;
        assert_eq!(
            st.sent,
            st.delivered + drops,
            "conservation broke for {}: sent {} delivered {} drops {}",
            spec.name,
            st.sent,
            st.delivered,
            drops
        );
        assert!(st.retransmits <= st.sent);
    }
}

#[test]
fn transfers_complete_and_windows_open() {
    let cp = grid_plane(2, 3, 10, 0);
    let cl = ClosedLoopSpec {
        mean_arrival_ns: 400_000,
        ..ClosedLoopSpec::default()
    };
    let report = run_once(
        &cp,
        &[closed_loop_flow("cl", 0, "192.168.1.5", cl)],
        None,
        7,
        1,
        EngineKind::Barrier,
        30_000_000,
    );
    let (_, st) = &report.flows[0];
    assert!(st.transfers_started > 0, "arrival process never fired");
    assert!(
        st.transfers_completed > 0,
        "no transfer completed: sent {} delivered {}",
        st.sent,
        st.delivered
    );
    assert!(st.sent > 0 && st.delivered > 0);
    // Slow start opened the window past its initial 1.
    assert!(
        st.cwnd_peak > 1,
        "window never opened: peak {}",
        st.cwnd_peak
    );
    assert!(st.fct_hist.count() == st.transfers_completed);
    assert!(st.mean_fct_ns() > 0.0);
    assert_conservation(&report);
}

#[test]
fn cwnd_reacts_to_a_fault_window_and_recovers() {
    let cp = grid_plane(2, 3, 10, 0);
    // Heavy aggregate so transfers are in flight when the link dies.
    let cl = ClosedLoopSpec {
        mean_arrival_ns: 150_000,
        size_min_pkts: 16,
        size_max_pkts: 128,
        rto_ns: 2_000_000,
        ..ClosedLoopSpec::default()
    };
    let flow = closed_loop_flow("cl", 0, "192.168.1.5", cl);
    let mut plan = FaultPlan::new(RestorationPolicy {
        detection_delay_ns: 300_000,
        resignal_delay_ns: 300_000,
        backoff_factor: 2,
        max_retries: 4,
        hold_down_ns: 1_000_000,
        mode: RecoveryMode::Restoration,
    });
    let link = cp.topology().link_between(0, 1).expect("link 0-1");
    plan.link_down(2_000_000, link);
    plan.link_up(5_000_000, link);

    let faulted = run_once(
        &cp,
        std::slice::from_ref(&flow),
        Some(&plan),
        7,
        1,
        EngineKind::Barrier,
        40_000_000,
    );
    let clean = run_once(&cp, &[flow], None, 7, 1, EngineKind::Barrier, 40_000_000);
    let (_, f) = &faulted.flows[0];
    let (_, c) = &clean.flows[0];
    // Decrease on loss: the outage strands in-flight packets, the RTO
    // presumes them lost, re-queues them and collapses the window — a
    // recovery the clean run never needs.
    assert!(f.link_dropped > 0, "outage never claimed a packet");
    assert!(f.retransmits > 0, "outage with in-flight data but no RTO");
    assert_eq!(c.retransmits, 0, "clean run should never time out");
    assert!(f.cwnd_cuts > 0, "loss never cut the window");
    // Recovery after restoration: transfers keep completing after the
    // link returns, and the window re-opens past its collapsed 1.
    assert!(f.transfers_completed > 0);
    assert!(f.cwnd_peak > 1);
    assert!(
        f.last_delivery_ns > 5_000_000,
        "no deliveries after restoration (last at {})",
        f.last_delivery_ns
    );
    assert_conservation(&faulted);
    assert_conservation(&clean);
}

#[test]
fn ecn_marks_halve_the_window_under_congestion() {
    let cp = grid_plane(2, 3, 10, 0);
    // A tiny mark threshold plus elephant transfers: slow start must
    // overrun the queue and take ECN cuts well before any loss.
    let cl = ClosedLoopSpec {
        mean_arrival_ns: 300_000,
        size_min_pkts: 64,
        size_max_pkts: 512,
        ecn_threshold: 2,
        pacing_ns: 500,
        ..ClosedLoopSpec::default()
    };
    let report = run_once(
        &cp,
        &[closed_loop_flow("cl", 0, "192.168.1.5", cl)],
        None,
        11,
        1,
        EngineKind::Barrier,
        40_000_000,
    );
    let (_, st) = &report.flows[0];
    assert!(st.ecn_marks > 0, "queue never crossed the mark threshold");
    assert!(
        st.cwnd_cuts > 0,
        "marks were echoed but never cut the window"
    );
    assert_conservation(&report);
}

#[test]
fn subscriber_model_runs_all_classes() {
    let cp = grid_plane(2, 3, 10, 0);
    let model = SubscriberModel {
        name: "metro".into(),
        subscribers: 2000,
        mean_think_ns: 1_000_000_000,
        base: ClosedLoopSpec {
            diurnal_period_ns: 10_000_000,
            diurnal_trough_pct: 30,
            flash_start_ns: 4_000_000,
            flash_duration_ns: 2_000_000,
            flash_multiplier_pct: 400,
            ..ClosedLoopSpec::default()
        },
        classes: mpls_net::SlaClass::residential_mix(),
    };
    let flows = model.flows(
        0,
        parse_addr("10.1.0.9").unwrap(),
        parse_addr("192.168.1.9").unwrap(),
        0,
        8_000_000,
    );
    assert_eq!(flows.len(), 3);
    let report = run_once(&cp, &flows, None, 3, 1, EngineKind::Barrier, 30_000_000);
    assert_conservation(&report);
    let started: u64 = report.flows.iter().map(|(_, s)| s.transfers_started).sum();
    assert!(started > 0, "population generated no transfers");
    // Every class fired (population shares are all non-zero).
    for (spec, st) in &report.flows {
        assert!(
            st.transfers_started > 0,
            "class {} never started a transfer",
            spec.name
        );
    }
}

/// Interval values at the edges the samplers must clamp: zero (would
/// stall or divide by zero), one, an ordinary value, and near-`u64::MAX`
/// sums (would overflow un-saturating arithmetic).
fn degenerate_ns() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1),
        Just(777),
        Just(u64::MAX / 2),
        Just(u64::MAX),
    ]
}

/// Every pattern kind with degenerate knobs plugged in.
fn degenerate_pattern() -> impl Strategy<Value = TrafficPattern> {
    prop_oneof![
        degenerate_ns().prop_map(|interval_ns| TrafficPattern::Cbr { interval_ns }),
        degenerate_ns().prop_map(|mean_interval_ns| TrafficPattern::Poisson { mean_interval_ns }),
        (degenerate_ns(), degenerate_ns(), degenerate_ns()).prop_map(
            |(on_ns, off_ns, interval_ns)| {
                TrafficPattern::OnOff {
                    on_ns,
                    off_ns,
                    interval_ns,
                }
            }
        ),
        (degenerate_ns(), degenerate_ns(), degenerate_ns()).prop_map(
            |(mean_arrival_ns, pacing_ns, rto_ns)| {
                TrafficPattern::ClosedLoop(ClosedLoopSpec {
                    mean_arrival_ns,
                    pacing_ns,
                    rto_ns,
                    size_min_pkts: 0,
                    size_max_pkts: 3,
                    ecn_threshold: 1,
                    ..ClosedLoopSpec::default()
                })
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Degenerate intervals — zeros, ones, near-`u64::MAX` — must not
    /// panic, wrap, stall, or (the subtle failure) drift: clamping has
    /// to happen in the sampler, identically on every shard, so the
    /// report stays byte-identical across shards {1, 4} on both
    /// engines. The flows stop after 20 µs because a clamped zero
    /// interval emits every nanosecond.
    #[test]
    fn degenerate_intervals_are_shard_invariant(
        seed in 0u64..10_000,
        fwd in degenerate_pattern(),
        rev in degenerate_pattern(),
    ) {
        let cp = grid_plane(2, 2, 5, 0);
        let mk = |name: &str, ingress: u32, src: &str, dst: &str, pattern: &TrafficPattern| FlowSpec {
            name: name.into(),
            ingress,
            src_addr: parse_addr(src).unwrap(),
            dst_addr: parse_addr(dst).unwrap(),
            payload_bytes: 200,
            precedence: 0,
            pattern: pattern.clone(),
            start_ns: 0,
            stop_ns: 20_000,
            police: None,
        };
        let flows = vec![
            mk("fwd", 0, "10.1.0.5", "192.168.1.5", &fwd),
            mk("rev", 3, "192.168.1.5", "10.1.0.5", &rev),
        ];
        let baseline = run_once(
            &cp, &flows, None, seed, 1, EngineKind::Barrier, 2_000_000,
        );
        assert_conservation(&baseline);
        let baseline_json = serde_json::to_string(&baseline).expect("serializes");
        for engine in [EngineKind::Barrier, EngineKind::Merge] {
            for shards in [1usize, 4] {
                if engine == EngineKind::Barrier && shards == 1 {
                    continue;
                }
                let report = run_once(&cp, &flows, None, seed, shards, engine, 2_000_000);
                let json = serde_json::to_string(&report).expect("serializes");
                prop_assert_eq!(
                    &baseline_json, &json,
                    "degenerate intervals diverged at {} shards on the {} engine",
                    shards, engine.name()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The determinism gauntlet: random topology × closed-loop knobs ×
    /// optional fault, byte-identical across shards {1,2,4} × engines
    /// {barrier, merge}, conservation holding everywhere.
    #[test]
    fn closed_loop_is_byte_identical_across_shards_and_engines(
        seed in 0u64..10_000,
        rows in 2u32..4,
        cols in 2u32..5,
        base_delay_us in 5u64..40,
        delay_salt in 0u64..1000,
        mean_arrival_us in 150u64..600,
        max_cwnd in 4u64..48,
        ecn_threshold in 0u32..12,
        rto_us in 800u64..4000,
        with_fault: bool,
        diurnal: bool,
        flash: bool,
    ) {
        let cp = grid_plane(rows, cols, base_delay_us, delay_salt);
        let last = rows * cols - 1;
        let cl = ClosedLoopSpec {
            mean_arrival_ns: mean_arrival_us * 1_000,
            max_cwnd,
            ecn_threshold,
            rto_ns: rto_us * 1_000,
            diurnal_period_ns: if diurnal { 4_000_000 } else { 0 },
            diurnal_trough_pct: 25,
            flash_start_ns: 2_000_000,
            flash_duration_ns: if flash { 2_000_000 } else { 0 },
            flash_multiplier_pct: 300,
            ..ClosedLoopSpec::default()
        };
        // Closed-loop forward, open-loop reverse: acks share shards with
        // ordinary cross-traffic.
        let flows = vec![
            closed_loop_flow("cl-fwd", 0, "192.168.1.5", cl),
            FlowSpec {
                name: "rev".into(),
                ingress: last,
                src_addr: parse_addr("192.168.1.5").unwrap(),
                dst_addr: parse_addr("10.1.0.5").unwrap(),
                payload_bytes: 900,
                precedence: 0,
                pattern: TrafficPattern::Poisson { mean_interval_ns: 90_000 },
                start_ns: 500_000,
                stop_ns: 8_000_000,
                police: None,
            },
        ];
        let plan = with_fault.then(|| {
            let mut plan = FaultPlan::new(RestorationPolicy {
                detection_delay_ns: 300_000,
                resignal_delay_ns: 300_000,
                backoff_factor: 2,
                max_retries: 4,
                hold_down_ns: 1_000_000,
                mode: RecoveryMode::Restoration,
            });
            let link = cp.topology().link_between(0, 1).expect("link 0-1");
            plan.link_down(2_000_000, link);
            plan.link_up(5_000_000, link);
            plan
        });
        let horizon_ns = 30_000_000;

        let baseline = run_once(
            &cp, &flows, plan.as_ref(), seed, 1, EngineKind::Barrier, horizon_ns,
        );
        assert_conservation(&baseline);
        let (_, cl_stats) = &baseline.flows[0];
        prop_assert!(cl_stats.sent > 0, "closed-loop flow never emitted");
        let baseline_json = serde_json::to_string(&baseline).expect("serializes");

        for engine in [EngineKind::Barrier, EngineKind::Merge] {
            for shards in [1usize, 2, 4] {
                if engine == EngineKind::Barrier && shards == 1 {
                    continue; // that's the baseline
                }
                let report = run_once(
                    &cp, &flows, plan.as_ref(), seed, shards, engine, horizon_ns,
                );
                let json = serde_json::to_string(&report).expect("serializes");
                prop_assert_eq!(
                    &baseline_json, &json,
                    "report diverged at {} shards on the {} engine",
                    shards, engine.name()
                );
            }
        }
    }
}
