//! The paper's Fig. 2 packet exchange, hop by hop at the router level:
//! "When the ingress LER receives layer 2 data, it is analyzed and a
//! label is added to the packet. ... Subsequent LSRs analyze the label,
//! remove it and attach a new label ... When the packet reaches the
//! egress LER, the label is removed and the packet is forwarded to the
//! appropriate layer 2 network."

use mpls_control::{ControlPlane, LspRequest, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_packet::ipv4::parse_addr;
use mpls_packet::{EtherType, EthernetFrame, Ipv4Header, MacAddr, MplsPacket};
use mpls_router::{Action, EmbeddedRouter, MplsForwarder, SoftwareRouter, SwTimingModel};

fn packet_to(dst: &str) -> MplsPacket {
    MplsPacket::ipv4(
        EthernetFrame {
            dst: MacAddr::from_node(0, 0),
            src: MacAddr::from_node(99, 0),
            ethertype: EtherType::Ipv4,
        },
        Ipv4Header::new(
            parse_addr("10.0.0.1").unwrap(),
            parse_addr(dst).unwrap(),
            Ipv4Header::PROTO_UDP,
            64,
            64,
        ),
        bytes::Bytes::from_static(&[0xAB; 64]),
    )
}

fn setup() -> ControlPlane {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    cp.establish_lsp(LspRequest::best_effort(
        0,
        1,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .unwrap();
    cp
}

/// Walks a packet through a chain of routers, asserting forward decisions
/// match the expected node sequence, and returns the delivered packet.
fn walk<F: MplsForwarder>(
    routers: &mut [(u32, F)],
    expected_path: &[u32],
    packet: MplsPacket,
) -> MplsPacket {
    let mut current = packet;
    let mut at = expected_path[0];
    for hop in 1..expected_path.len() + 1 {
        let (_, router) = routers
            .iter_mut()
            .find(|(id, _)| *id == at)
            .expect("router exists");
        match router.handle(current) {
            mpls_router::Forwarding {
                action: Action::Forward { next, packet },
                ..
            } => {
                assert_eq!(
                    next, expected_path[hop],
                    "hop {hop}: expected {:?}",
                    expected_path
                );
                at = next;
                current = packet;
            }
            mpls_router::Forwarding {
                action: Action::Deliver(packet),
                ..
            } => {
                assert_eq!(at, *expected_path.last().unwrap(), "delivered early");
                return packet;
            }
            mpls_router::Forwarding {
                action: Action::Discard(cause),
                ..
            } => panic!("discarded at node {at}: {cause}"),
        }
    }
    panic!("walked past the path end without delivery");
}

#[test]
fn figure2_exchange_on_embedded_routers() {
    let cp = setup();
    let lsp = cp.lsp(1).unwrap().clone();
    assert_eq!(lsp.path, vec![0, 2, 3, 1]);

    let mut routers: Vec<(u32, EmbeddedRouter)> = [0u32, 2, 3, 1]
        .iter()
        .map(|&id| {
            let role = cp.topology().node(id).unwrap().role;
            (
                id,
                EmbeddedRouter::new(id, role, &cp.config_for(id), ClockSpec::STRATIX_50MHZ),
            )
        })
        .collect();

    let sent = packet_to("192.168.1.5");
    let delivered = walk(&mut routers, &[0, 2, 3, 1], sent.clone());

    // Delivered as plain IPv4, payload intact, unlabeled.
    assert!(delivered.stack.is_empty());
    assert_eq!(delivered.eth.ethertype, EtherType::Ipv4);
    assert_eq!(delivered.payload, sent.payload);
    assert_eq!(delivered.ip.dst, sent.ip.dst);

    // Each router did its part.
    let ingress = &routers[0].1;
    assert_eq!(ingress.stats().forwarded, 1);
    assert_eq!(ingress.stats().flow_installs, 1);
    let egress = &routers[3].1;
    assert_eq!(egress.stats().delivered, 1);
}

#[test]
fn labels_swap_and_ttl_decrements_along_path() {
    let cp = setup();
    let lsp = cp.lsp(1).unwrap().clone();
    let mut routers: Vec<(u32, EmbeddedRouter)> = [0u32, 2, 3]
        .iter()
        .map(|&id| {
            let role = cp.topology().node(id).unwrap().role;
            (
                id,
                EmbeddedRouter::new(id, role, &cp.config_for(id), ClockSpec::STRATIX_50MHZ),
            )
        })
        .collect();

    // Ingress.
    let Action::Forward { packet: p1, .. } = routers[0].1.handle(packet_to("192.168.1.5")).action
    else {
        panic!()
    };
    assert_eq!(p1.stack.depth(), 1);
    assert_eq!(p1.stack.top().unwrap().label, lsp.hop_labels[0]);
    assert_eq!(p1.stack.top().unwrap().ttl, 64, "ingress copies the IP TTL");

    // First LSR.
    let Action::Forward { packet: p2, .. } = routers[1].1.handle(p1).action else {
        panic!()
    };
    assert_eq!(p2.stack.top().unwrap().label, lsp.hop_labels[1]);
    assert_eq!(p2.stack.top().unwrap().ttl, 63);

    // Second LSR.
    let Action::Forward { packet: p3, .. } = routers[2].1.handle(p2).action else {
        panic!()
    };
    assert_eq!(p3.stack.top().unwrap().label, lsp.hop_labels[2]);
    assert_eq!(p3.stack.top().unwrap().ttl, 62);
}

#[test]
fn software_chain_delivers_the_same_packet() {
    let cp = setup();
    let mk_sw = |id: u32| {
        let role = cp.topology().node(id).unwrap().role;
        (
            id,
            SoftwareRouter::<mpls_dataplane::HashTable>::new(
                id,
                role,
                &cp.config_for(id),
                SwTimingModel::default(),
            ),
        )
    };
    let mut sw_routers: Vec<_> = [0u32, 2, 3, 1].iter().map(|&id| mk_sw(id)).collect();
    let sw_delivered = walk(&mut sw_routers, &[0, 2, 3, 1], packet_to("192.168.1.5"));

    let mut hw_routers: Vec<(u32, EmbeddedRouter)> = [0u32, 2, 3, 1]
        .iter()
        .map(|&id| {
            let role = cp.topology().node(id).unwrap().role;
            (
                id,
                EmbeddedRouter::new(id, role, &cp.config_for(id), ClockSpec::STRATIX_50MHZ),
            )
        })
        .collect();
    let hw_delivered = walk(&mut hw_routers, &[0, 2, 3, 1], packet_to("192.168.1.5"));

    assert_eq!(
        sw_delivered, hw_delivered,
        "software and hardware chains must deliver byte-identical packets"
    );
}

#[test]
fn php_lsp_delivers_plain_ip_over_last_hop() {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    let mut req =
        LspRequest::best_effort(0, 1, Prefix::new(parse_addr("192.168.1.0").unwrap(), 24));
    req.php = true;
    cp.establish_lsp(req).unwrap();

    let mut routers: Vec<(u32, EmbeddedRouter)> = [0u32, 2, 3, 1]
        .iter()
        .map(|&id| {
            let role = cp.topology().node(id).unwrap().role;
            (
                id,
                EmbeddedRouter::new(id, role, &cp.config_for(id), ClockSpec::STRATIX_50MHZ),
            )
        })
        .collect();

    // Walk manually to inspect the penultimate hop's output.
    let Action::Forward { packet: p1, .. } = routers[0].1.handle(packet_to("192.168.1.5")).action
    else {
        panic!()
    };
    let Action::Forward { packet: p2, .. } = routers[1].1.handle(p1).action else {
        panic!()
    };
    assert_eq!(p2.stack.depth(), 1);
    // Penultimate LSR pops: the packet leaves unlabeled.
    let Action::Forward { next, packet: p3 } = routers[2].1.handle(p2).action else {
        panic!()
    };
    assert_eq!(next, 1);
    assert!(p3.stack.is_empty(), "PHP removed the label early");
    assert_eq!(p3.eth.ethertype, EtherType::Ipv4);
    // Egress delivers without touching the modifier.
    let out = routers[3].1.handle(p3);
    assert!(matches!(out.action, Action::Deliver(_)));
    assert_eq!(out.latency_ns, 0, "no MPLS processing at the egress");
    assert_eq!(routers[3].1.stats().total_cycles, 0);
}

#[test]
fn roundtrip_lsps_coexist() {
    // Two LSPs in opposite directions share the core.
    let mut cp = ControlPlane::new(Topology::figure1_example());
    cp.establish_lsp(LspRequest::best_effort(
        0,
        1,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .unwrap();
    cp.establish_lsp(LspRequest::best_effort(
        1,
        0,
        Prefix::new(parse_addr("10.1.0.0").unwrap(), 16),
    ))
    .unwrap();

    let mk = |id: u32| {
        let role = cp.topology().node(id).unwrap().role;
        (
            id,
            EmbeddedRouter::new(id, role, &cp.config_for(id), ClockSpec::STRATIX_50MHZ),
        )
    };
    let mut routers: Vec<_> = [0u32, 2, 3, 1].iter().map(|&id| mk(id)).collect();

    let east = walk(&mut routers, &[0, 2, 3, 1], packet_to("192.168.1.9"));
    assert!(east.stack.is_empty());

    let mut west_pkt = packet_to("10.1.2.3");
    west_pkt.eth.dst = MacAddr::from_node(1, 0);
    let west = walk(&mut routers, &[1, 3, 2, 0], west_pkt);
    assert!(west.stack.is_empty());
}
