//! Determinism of the channel-merge scheduler: for any random topology,
//! heterogeneous delay assignment, traffic mix, fault schedule and
//! control plane, the serialized report is byte-identical across shard
//! counts {1, 2, 4, 8} AND across both execution engines — the merge
//! engine's per-shard conservative bounds reorder wall-clock work, never
//! simulated history. Per-shard event counts must also sum to the
//! sequential total under every configuration: scheduling moves events
//! between threads, it never creates or destroys them.

use mpls_control::{ControlPlane, LinkSpec, LspRequest, RouterRole, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_ldp::LdpConfig;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{
    EngineKind, EngineStats, FaultPlan, QueueDiscipline, RecoveryMode, RestorationPolicy,
    RouterKind, Simulation,
};
use mpls_packet::ipv4::parse_addr;
use proptest::prelude::*;

/// A `rows x cols` grid with LERs in opposite corners and *strongly*
/// heterogeneous link delays: every link gets salted jitter, and links
/// whose hash clears `stretch_mask` are stretched by `stretch`x. Wide
/// delay spreads are exactly where the merge engine's per-channel
/// bounds diverge from the global barrier's single lookahead, so this
/// is the regime where a bound bug would actually misorder events.
fn hetero_grid(
    rows: u32,
    cols: u32,
    base_delay_us: u64,
    delay_salt: u64,
    stretch: u64,
) -> ControlPlane {
    let last = rows * cols - 1;
    let mut topo = Topology::new();
    for id in 0..=last {
        let role = if id == 0 || id == last {
            RouterRole::Ler
        } else {
            RouterRole::Lsr
        };
        topo.add_node(id, role, format!("n{id}"));
    }
    let mut add = |a: u32, b: u32| {
        let h = a as u64 * 31 + b as u64 * 7 + delay_salt;
        let mut delay_us = base_delay_us + h % 40;
        if h.is_multiple_of(3) {
            delay_us *= stretch;
        }
        topo.add_link(LinkSpec {
            a,
            b,
            cost: 1,
            bandwidth_bps: 200_000_000,
            delay_ns: delay_us * 1_000,
        });
    };
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                add(id, id + 1);
            }
            if r + 1 < rows {
                add(id, id + cols);
            }
        }
    }
    let mut cp = ControlPlane::new(topo);
    cp.attach_prefix(last, Prefix::new(parse_addr("192.168.1.0").unwrap(), 24));
    cp.attach_prefix(0, Prefix::new(parse_addr("10.1.0.0").unwrap(), 16));
    cp.establish_lsp(LspRequest::best_effort(
        0,
        last,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .expect("forward LSP");
    cp.establish_lsp(LspRequest::best_effort(
        last,
        0,
        Prefix::new(parse_addr("10.1.0.0").unwrap(), 16),
    ))
    .expect("reverse LSP");
    cp
}

#[allow(clippy::too_many_arguments)]
fn run_once(
    cp: &ControlPlane,
    flows: &[FlowSpec],
    plan: Option<&FaultPlan>,
    seed: u64,
    shards: usize,
    engine: EngineKind,
    ldp: bool,
    horizon_ns: u64,
) -> (String, EngineStats) {
    let mut sim = Simulation::build(
        cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 32 },
        seed,
    );
    sim.set_shards(shards);
    sim.set_engine(engine);
    if ldp {
        sim.enable_ldp(LdpConfig::default());
    }
    if let Some(plan) = plan {
        sim.set_fault_plan(plan.clone());
    }
    for f in flows {
        sim.add_flow(f.clone());
    }
    let report = sim.run(horizon_ns);
    let json = serde_json::to_string(&report).expect("report serializes");
    (json, report.engine)
}

/// Regression: the merge bound must be *transitively* conservative.
/// A shard with no direct channel from any busy shard is still reached
/// through relays — each hop receives at one round boundary and
/// forwards at the next — so bounds must propagate along channel paths
/// (shifted by the delays), not just across direct edges. The failure
/// is only visible in order-sensitive state, so this scenario is a
/// miniature of the EXT-10 bench that first exposed it: four corner
/// flows on a grid whose corner shards are mutually non-adjacent,
/// saturating every ingress FIFO, so each corner shard drains its own
/// backlog while cross-traffic is still in flight through the middle.
/// The non-transitive bound let a corner run its drain ahead of
/// arrivals routed through idle relays and dropped a different set of
/// packets.
#[test]
fn idle_relay_shards_stay_transitively_bounded() {
    const SIDE: u32 = 8;
    const CORNERS: [u32; 4] = [0, SIDE - 1, (SIDE - 1) * SIDE, SIDE * SIDE - 1];
    let mut topo = Topology::new();
    for id in 0..SIDE * SIDE {
        let role = if CORNERS.contains(&id) {
            RouterRole::Ler
        } else {
            RouterRole::Lsr
        };
        topo.add_node(id, role, format!("n{id}"));
    }
    for r in 0..SIDE {
        for c in 0..SIDE {
            let id = r * SIDE + c;
            for (neighbor, vertical) in [
                (c + 1 < SIDE).then(|| (id + 1, false)),
                (r + 1 < SIDE).then(|| (id + SIDE, true)),
            ]
            .into_iter()
            .flatten()
            {
                let mut delay_us = 5 + (id as u64 * 31 + neighbor as u64 * 7) % 20;
                if vertical && (r == 2 || r == 5) {
                    delay_us *= 8;
                }
                topo.add_link(LinkSpec {
                    a: id,
                    b: neighbor,
                    cost: 1,
                    bandwidth_bps: 1_000_000_000,
                    delay_ns: delay_us * 1_000,
                });
            }
        }
    }
    let mut cp = ControlPlane::new(topo);
    let corner_prefix =
        |i: usize| Prefix::new(parse_addr(&format!("192.168.{}.0", i + 1)).unwrap(), 24);
    for (i, &corner) in CORNERS.iter().enumerate() {
        cp.attach_prefix(corner, corner_prefix(i));
    }
    for (i, &corner) in CORNERS.iter().enumerate() {
        cp.establish_lsp(LspRequest::best_effort(
            corner,
            CORNERS[3 - i],
            corner_prefix(3 - i),
        ))
        .expect("corner LSP signals");
    }
    let flows: Vec<FlowSpec> = CORNERS
        .iter()
        .enumerate()
        .map(|(i, &corner)| FlowSpec {
            name: format!("corner-{i}"),
            ingress: corner,
            src_addr: parse_addr(&format!("10.0.{i}.1")).unwrap(),
            dst_addr: parse_addr(&format!("192.168.{}.10", (3 - i) + 1)).unwrap(),
            payload_bytes: 500,
            precedence: 0,
            pattern: TrafficPattern::Poisson {
                mean_interval_ns: 8_000,
            },
            start_ns: 0,
            stop_ns: 10_000_000,
            police: None,
        })
        .collect();

    let (baseline, _) = run_once(
        &cp,
        &flows,
        None,
        7,
        1,
        EngineKind::Barrier,
        false,
        30_000_000,
    );
    assert!(
        !baseline.contains("\"queue_dropped\":0"),
        "scenario must saturate the queues for order sensitivity"
    );
    for shards in [4usize, 8] {
        let (json, stats) = run_once(
            &cp,
            &flows,
            None,
            7,
            shards,
            EngineKind::Merge,
            false,
            30_000_000,
        );
        assert_eq!(stats.shards, shards);
        assert_eq!(
            baseline, json,
            "merge at {shards} shards diverged on the congested relay path"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn merge_engine_is_byte_identical_across_shards_and_engines(
        seed in 0u64..10_000,
        rows in 2u32..4,
        cols in 2u32..5,
        base_delay_us in 5u64..40,
        delay_salt in 0u64..1000,
        stretch in 4u64..12,
        interval_a_us in 20u64..200,
        interval_b_us in 20u64..200,
        poisson: bool,
        with_fault: bool,
        loss_pct in 0u32..10,
        ldp: bool,
    ) {
        let cp = hetero_grid(rows, cols, base_delay_us, delay_salt, stretch);
        let last = rows * cols - 1;
        // LDP runs need the control plane converged before traffic is
        // meaningful and take longer to settle, so give them more time.
        let (start_ns, stop_ns, horizon_ns) = if ldp {
            (10_000_000, 16_000_000, 40_000_000)
        } else {
            (0, 8_000_000, 30_000_000)
        };
        let pattern = |interval_ns| if poisson {
            TrafficPattern::Poisson { mean_interval_ns: interval_ns }
        } else {
            TrafficPattern::Cbr { interval_ns }
        };
        let flows = vec![
            FlowSpec {
                name: "fwd".into(),
                ingress: 0,
                src_addr: parse_addr("10.1.0.5").unwrap(),
                dst_addr: parse_addr("192.168.1.5").unwrap(),
                payload_bytes: 400,
                precedence: 5,
                pattern: pattern(interval_a_us * 1_000),
                start_ns,
                stop_ns,
                police: None,
            },
            FlowSpec {
                name: "rev".into(),
                ingress: last,
                src_addr: parse_addr("192.168.1.5").unwrap(),
                dst_addr: parse_addr("10.1.0.5").unwrap(),
                payload_bytes: 900,
                precedence: 0,
                pattern: pattern(interval_b_us * 1_000),
                start_ns: start_ns + 500_000,
                stop_ns,
                police: None,
            },
        ];
        let plan = (with_fault || loss_pct > 0).then(|| {
            let mut plan = FaultPlan::new(RestorationPolicy {
                detection_delay_ns: 300_000,
                resignal_delay_ns: 300_000,
                backoff_factor: 2,
                max_retries: 4,
                hold_down_ns: 1_000_000,
                mode: RecoveryMode::Restoration,
            });
            let row_link = cp.topology().link_between(0, 1).expect("link 0-1");
            if with_fault {
                plan.link_down(start_ns + 2_000_000, row_link);
                plan.link_up(start_ns + 5_000_000, row_link);
            }
            if loss_pct > 0 {
                let col_link = cp.topology().link_between(0, cols).expect("link 0-cols");
                plan.random_loss(col_link, loss_pct as f64 / 100.0);
            }
            plan
        });

        let (baseline, seq) = run_once(
            &cp, &flows, plan.as_ref(), seed, 1, EngineKind::Barrier, ldp, horizon_ns,
        );
        prop_assert_eq!(seq.shards, 1);
        let seq_total = seq.total_events();
        prop_assert!(seq_total > 0, "scenario generated no events");

        for engine in [EngineKind::Barrier, EngineKind::Merge] {
            for shards in [1usize, 2, 4, 8] {
                if engine == EngineKind::Barrier && shards == 1 {
                    continue; // that's the baseline itself
                }
                let (json, stats) = run_once(
                    &cp, &flows, plan.as_ref(), seed, shards, engine, ldp, horizon_ns,
                );
                prop_assert_eq!(stats.kind, engine);
                prop_assert_eq!(
                    &baseline, &json,
                    "report diverged under {} at {} shards (effective {})",
                    engine.name(), shards, stats.shards
                );
                prop_assert_eq!(
                    stats.total_events(), seq_total,
                    "event count changed under {} at {} shards", engine.name(), shards
                );
                prop_assert_eq!(stats.shard_events.len(), stats.shards);
                prop_assert_eq!(
                    stats.global_events + stats.shard_events.iter().sum::<u64>(),
                    seq_total,
                    "per-shard counts do not sum to the sequential total under {} at {} shards",
                    engine.name(), shards
                );
            }
        }
    }
}
