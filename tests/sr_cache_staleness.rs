//! Flow-cache staleness across SR recompiles, pinned at system level.
//!
//! The `SoftwareFast` router memoizes label lookups in a per-forwarder
//! flow cache. An SR fault window forces the coordinator to recompile
//! source routes and download fresh configurations mid-run — exactly
//! when a warm cache could keep serving the dead route. Invalidation is
//! structural (reprogramming rebuilds the forwarder, so the cache dies
//! with it); these tests make a stale entry observable if that ever
//! regresses:
//!
//! - the cached fast path must stay byte-identical to the uncached
//!   linear reference through the fault, the recompile onto the
//!   southern detour, and the restoration back — a stale entry changes
//!   a forwarding decision and splits the reports;
//! - service must actually recover after the recompile (a stale
//!   ingress or transit entry keeps blackholing into the cut link);
//! - the cache must be demonstrably warm, so the identity is not
//!   vacuous.

use mpls_control::{ControlPlane, LspRequest, Topology};
use mpls_dataplane::ftn::Prefix;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{FaultPlan, QueueDiscipline, RestorationPolicy, RouterKind, SimReport, Simulation};
use mpls_packet::ipv4::parse_addr;
use mpls_router::SwTimingModel;
use mpls_sr::SrConfig;

/// Figure-1 plane with one LSP 0 -> 1 whose FEC is 192.168.1.0/24.
fn figure1_plane() -> ControlPlane {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    cp.establish_lsp(LspRequest::best_effort(
        0,
        1,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .expect("LSP signals");
    cp
}

/// Runs the figure-1 SR outage (northern link cut at 5 ms, back at
/// 40 ms) under the given router kind.
fn run_outage(kind: RouterKind) -> SimReport {
    let cp = figure1_plane();
    let link = cp.topology().link_between(2, 3).unwrap();
    let mut sim = Simulation::build(&cp, kind, QueueDiscipline::Fifo { capacity: 64 }, 7);
    sim.enable_sr(SrConfig::default());
    let mut plan = FaultPlan::new(RestorationPolicy::default());
    plan.outage(link, 5_000_000, 40_000_000);
    sim.set_fault_plan(plan);
    sim.add_flow(FlowSpec {
        name: "app".into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.1").unwrap(),
        dst_addr: parse_addr("192.168.1.5").unwrap(),
        payload_bytes: 256,
        precedence: 0,
        pattern: TrafficPattern::Cbr {
            interval_ns: 1_000_000,
        },
        start_ns: 0,
        stop_ns: 60_000_000,
        police: None,
    });
    sim.run(1_000_000_000)
}

#[test]
fn warm_flow_cache_never_serves_a_dead_source_route() {
    let timing = SwTimingModel::default();
    let linear = run_outage(RouterKind::SoftwareLinear { timing });
    let fast = run_outage(RouterKind::SoftwareFast {
        timing,
        cache: true,
    });

    // The identity must not be vacuous: the cache saw real traffic, and
    // the recompile actually retired a warm forwarder (its hits/misses
    // fold into the sticky counters either way).
    let hits: u64 = fast.routers.values().map(|r| r.cache_hits).sum();
    let misses: u64 = fast.routers.values().map(|r| r.cache_misses).sum();
    assert!(hits > 0, "the fault window must run on a warm cache");
    assert!(
        misses >= 2,
        "reprogramming must cold-start the cache (got {misses} misses)"
    );

    // Service recovers through the recompile: a stale cached entry at
    // the ingress or a transit node would keep feeding the cut link.
    let s = fast.flow("app").expect("flow present");
    assert!(s.link_dropped > 0, "detection window must blackhole");
    assert!(
        s.delivered > s.sent / 2,
        "most packets must ride the recompiled route ({}/{})",
        s.delivered,
        s.sent
    );
    assert_eq!(s.delivered + s.link_dropped, s.sent, "conservation");
    assert_eq!(fast.faults.len(), 1);
    assert!(fast.faults[0].restored_ns.is_some(), "recompile restores");

    // And the cached path is observably identical to the uncached
    // reference, byte for byte, through the whole fault window.
    assert_eq!(
        serde_json::to_string(&linear).unwrap(),
        serde_json::to_string(&fast).unwrap(),
        "software_fast diverged from software_linear across an SR recompile"
    );
}
