//! Determinism of the sharded engine across random scenarios: for any
//! topology, traffic mix and fault schedule, the serialized report is
//! byte-identical at 1, 2 and 4 shards, and the per-shard event counts
//! always sum to the sequential total — partitioning moves work between
//! threads, it never creates or destroys events.

use mpls_control::{ControlPlane, LinkSpec, LspRequest, RouterRole, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{
    EngineStats, FaultPlan, QueueDiscipline, RecoveryMode, RestorationPolicy, RouterKind,
    Simulation, TelemetryConfig,
};
use mpls_packet::ipv4::parse_addr;
use proptest::prelude::*;

/// A `rows x cols` grid with LERs in the two opposite corners and a
/// per-link delay spread derived from `delay_salt`, so shard cuts see
/// varying lookaheads.
fn grid_plane(rows: u32, cols: u32, base_delay_us: u64, delay_salt: u64) -> ControlPlane {
    let last = rows * cols - 1;
    let mut topo = Topology::new();
    for id in 0..=last {
        let role = if id == 0 || id == last {
            RouterRole::Ler
        } else {
            RouterRole::Lsr
        };
        topo.add_node(id, role, format!("n{id}"));
    }
    let mut add = |a: u32, b: u32| {
        let jitter = (a as u64 * 31 + b as u64 * 7 + delay_salt) % 40;
        topo.add_link(LinkSpec {
            a,
            b,
            cost: 1,
            bandwidth_bps: 200_000_000,
            delay_ns: (base_delay_us + jitter) * 1_000,
        });
    };
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                add(id, id + 1);
            }
            if r + 1 < rows {
                add(id, id + cols);
            }
        }
    }
    let mut cp = ControlPlane::new(topo);
    cp.attach_prefix(last, Prefix::new(parse_addr("192.168.1.0").unwrap(), 24));
    cp.attach_prefix(0, Prefix::new(parse_addr("10.1.0.0").unwrap(), 16));
    cp.establish_lsp(LspRequest::best_effort(
        0,
        last,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .expect("forward LSP");
    cp.establish_lsp(LspRequest::best_effort(
        last,
        0,
        Prefix::new(parse_addr("10.1.0.0").unwrap(), 16),
    ))
    .expect("reverse LSP");
    cp
}

#[allow(clippy::too_many_arguments)]
fn run_once(
    cp: &ControlPlane,
    flows: &[FlowSpec],
    plan: Option<&FaultPlan>,
    seed: u64,
    shards: usize,
    telemetry: bool,
    horizon_ns: u64,
) -> (String, EngineStats) {
    let mut sim = Simulation::build(
        cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 32 },
        seed,
    );
    sim.set_shards(shards);
    if let Some(plan) = plan {
        sim.set_fault_plan(plan.clone());
    }
    for f in flows {
        sim.add_flow(f.clone());
    }
    let report = if telemetry {
        sim.with_telemetry(TelemetryConfig {
            sample_interval_ns: 200_000,
            ..TelemetryConfig::default()
        })
        .run(horizon_ns)
    } else {
        sim.run(horizon_ns)
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    (json, report.engine)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_scenario_is_byte_identical_at_any_shard_count(
        seed in 0u64..10_000,
        rows in 2u32..4,
        cols in 2u32..5,
        base_delay_us in 5u64..40,
        delay_salt in 0u64..1000,
        interval_a_us in 20u64..200,
        interval_b_us in 20u64..200,
        poisson: bool,
        with_fault: bool,
        loss_pct in 0u32..10,
        telemetry: bool,
    ) {
        let cp = grid_plane(rows, cols, base_delay_us, delay_salt);
        let last = rows * cols - 1;
        let stop_ns = 8_000_000;
        let horizon_ns = 30_000_000;
        let pattern = |interval_ns| if poisson {
            TrafficPattern::Poisson { mean_interval_ns: interval_ns }
        } else {
            TrafficPattern::Cbr { interval_ns }
        };
        let flows = vec![
            FlowSpec {
                name: "fwd".into(),
                ingress: 0,
                src_addr: parse_addr("10.1.0.5").unwrap(),
                dst_addr: parse_addr("192.168.1.5").unwrap(),
                payload_bytes: 400,
                precedence: 5,
                pattern: pattern(interval_a_us * 1_000),
                start_ns: 0,
                stop_ns,
                police: None,
            },
            FlowSpec {
                name: "rev".into(),
                ingress: last,
                src_addr: parse_addr("192.168.1.5").unwrap(),
                dst_addr: parse_addr("10.1.0.5").unwrap(),
                payload_bytes: 900,
                precedence: 0,
                pattern: pattern(interval_b_us * 1_000),
                start_ns: 500_000,
                stop_ns,
                police: None,
            },
        ];
        // Fault the first-row link 0-1 (always present) mid-run; lose a
        // few percent of packets on the first column link if asked.
        let plan = (with_fault || loss_pct > 0).then(|| {
            let mut plan = FaultPlan::new(RestorationPolicy {
                detection_delay_ns: 300_000,
                resignal_delay_ns: 300_000,
                backoff_factor: 2,
                max_retries: 4,
                hold_down_ns: 1_000_000,
                mode: RecoveryMode::Restoration,
            });
            let row_link = cp.topology().link_between(0, 1).expect("link 0-1");
            if with_fault {
                plan.link_down(2_000_000, row_link);
                plan.link_up(5_000_000, row_link);
            }
            if loss_pct > 0 {
                let col_link = cp.topology().link_between(0, cols).expect("link 0-cols");
                plan.random_loss(col_link, loss_pct as f64 / 100.0);
            }
            plan
        });

        let (baseline, seq) = run_once(
            &cp, &flows, plan.as_ref(), seed, 1, telemetry, horizon_ns,
        );
        prop_assert_eq!(seq.shards, 1);
        let seq_total = seq.total_events();
        prop_assert!(seq_total > 0, "scenario generated no events");

        for shards in [2usize, 4] {
            let (json, engine) = run_once(
                &cp, &flows, plan.as_ref(), seed, shards, telemetry, horizon_ns,
            );
            prop_assert_eq!(
                &baseline, &json,
                "report diverged at {} shards (effective {})", shards, engine.shards
            );
            prop_assert_eq!(
                engine.total_events(), seq_total,
                "event count changed at {} shards", shards
            );
            prop_assert_eq!(engine.shard_events.len(), engine.shards);
            prop_assert_eq!(
                engine.global_events + engine.shard_events.iter().sum::<u64>(),
                seq_total,
                "per-shard counts do not sum to the sequential total"
            );
        }
    }
}
