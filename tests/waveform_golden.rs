//! Golden-trace snapshot tests: the paper's Fig. 14/15/16 waveforms,
//! byte-for-byte.
//!
//! Each figure replay is fully deterministic, so its ASCII rendering and
//! VCD dump are committed under `tests/golden/` and regenerated on every
//! run. Any drift in the modifier's cycle behavior, the trace recorder,
//! or the renderers shows up as a byte diff here.
//!
//! After an *intentional* waveform change, refresh the snapshots with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test waveform_golden
//! ```
//!
//! then review the diff like any other code change.

use mpls_core::figures::{figure14_level1, figure15_level2, figure16_discard, FigureRun};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// The committed ASCII artifact: run summary, full waveform, transition
/// log. Everything a reviewer needs to read the diff without a VCD
/// viewer.
fn render_ascii(figure: &str, run: &FigureRun) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== {figure} ===\n"));
    out.push_str(&format!("write phase: {} cycles\n", run.write_cycles));
    out.push_str(&format!(
        "lookup: {:?} in {} cycles\n\n",
        run.lookup.outcome, run.lookup.cycles
    ));
    out.push_str("--- waveform (█ = high, ▁ = low, · = unchanged bus) ---\n");
    out.push_str(&run.trace.render_ascii(0..run.trace.cycles()));
    out.push_str("\n--- signal transitions ---\n");
    out.push_str(&run.trace.render_transitions());
    out
}

fn render_vcd(run: &FigureRun) -> String {
    // 20 ns timescale: one cycle of the paper's 50 MHz Stratix clock.
    mpls_rtl::vcd::to_vcd(&run.trace, "label_stack_modifier", 20)
}

/// Byte-compares `content` against the committed snapshot, or rewrites
/// the snapshot when `UPDATE_GOLDEN=1`.
fn check_golden(file: &str, content: &str) {
    let path = golden_dir().join(file);
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, content).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n(run `UPDATE_GOLDEN=1 cargo test --test waveform_golden` \
             to create the snapshots)",
            path.display()
        )
    });
    assert!(
        golden == content,
        "{file} drifted from the committed golden trace.\n\
         If the change is intentional, refresh with \
         `UPDATE_GOLDEN=1 cargo test --test waveform_golden` and review the diff.\n\
         --- regenerated ---\n{content}\n--- committed ---\n{golden}"
    );
}

fn check_figure(figure: &str, run: &FigureRun) {
    check_golden(&format!("{figure}.ascii"), &render_ascii(figure, run));
    check_golden(&format!("{figure}.vcd"), &render_vcd(run));
}

#[test]
fn fig14_level1_waveform_matches_golden() {
    check_figure("fig14", &figure14_level1());
}

#[test]
fn fig15_level2_waveform_matches_golden() {
    check_figure("fig15", &figure15_level2());
}

#[test]
fn fig16_discard_waveform_matches_golden() {
    check_figure("fig16", &figure16_discard());
}

/// The three replays are deterministic run to run — the precondition for
/// byte-exact snapshots (catches any accidental nondeterminism creeping
/// into the modifier or trace recorder).
#[test]
fn figure_replays_are_deterministic() {
    for (name, gen) in [
        ("fig14", figure14_level1 as fn() -> FigureRun),
        ("fig15", figure15_level2),
        ("fig16", figure16_discard),
    ] {
        let a = gen();
        let b = gen();
        assert_eq!(
            render_ascii(name, &a),
            render_ascii(name, &b),
            "{name} ASCII rendering is nondeterministic"
        );
        assert_eq!(
            render_vcd(&a),
            render_vcd(&b),
            "{name} VCD dump is nondeterministic"
        );
    }
}
