//! Edge policing (the per-packet half of the QoS admission-control story):
//! a flow exceeding its committed rate loses the excess at the ingress
//! policer, and the core stays uncongested for everyone else.

use mpls_control::{ControlPlane, LspRequest, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::policer::PolicerSpec;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{QueueDiscipline, RouterKind, Simulation};
use mpls_packet::ipv4::parse_addr;

const RUN_NS: u64 = 100_000_000; // 100 ms

fn plane() -> ControlPlane {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    cp.establish_lsp(LspRequest::best_effort(
        0,
        1,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .unwrap();
    cp
}

fn flow(name: &str, dst: &str, interval_ns: u64, police: Option<PolicerSpec>) -> FlowSpec {
    FlowSpec {
        name: name.into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.1").unwrap(),
        dst_addr: parse_addr(dst).unwrap(),
        payload_bytes: 1446, // 1500 B on the wire
        precedence: 0,
        pattern: TrafficPattern::Cbr { interval_ns },
        start_ns: 0,
        stop_ns: RUN_NS,
        police,
    }
}

fn run(police: Option<PolicerSpec>) -> mpls_net::SimReport {
    let cp = plane();
    let mut sim = Simulation::build(
        &cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 32 },
        77,
    );
    // The offender: ~2.4 Gb/s offered onto 1 Gb/s links.
    sim.add_flow(flow("offender", "192.168.1.20", 5_000, police));
    // The victim: a modest 12 Mb/s flow sharing the path.
    sim.add_flow(flow("victim", "192.168.1.10", 1_000_000, None));
    sim.run(RUN_NS + 100_000_000)
}

#[test]
fn conforming_traffic_passes_untouched() {
    let cp = plane();
    let mut sim = Simulation::build(
        &cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 32 },
        77,
    );
    // 12 Mb/s flow policed at 50 Mb/s: nothing may be dropped.
    sim.add_flow(flow(
        "gentle",
        "192.168.1.10",
        1_000_000,
        Some(PolicerSpec {
            rate_bps: 50_000_000,
            burst_bytes: 10_000,
        }),
    ));
    let report = sim.run(RUN_NS * 3);
    let s = report.flow("gentle").unwrap();
    assert_eq!(s.policer_dropped, 0);
    assert_eq!(s.delivered, s.sent);
}

#[test]
fn policer_caps_the_offender_near_its_cir() {
    let policed = run(Some(PolicerSpec {
        rate_bps: 100_000_000, // 100 Mb/s CIR
        burst_bytes: 15_000,
    }));
    let s = policed.flow("offender").unwrap();
    assert!(s.policer_dropped > 0, "offender must be policed");
    // Delivered goodput within 10% of the committed rate.
    let goodput = s.throughput_bps();
    assert!(
        (90.0e6..=115.0e6).contains(&goodput),
        "goodput {goodput} outside CIR band"
    );
    // Conservation still holds.
    assert_eq!(
        s.sent,
        s.delivered + s.router_dropped + s.queue_dropped + s.policer_dropped
    );
}

#[test]
fn policing_the_offender_protects_the_victim() {
    let unpoliced = run(None);
    let policed = run(Some(PolicerSpec {
        rate_bps: 100_000_000,
        burst_bytes: 15_000,
    }));

    let victim_before = unpoliced.flow("victim").unwrap();
    let victim_after = policed.flow("victim").unwrap();

    // Without policing the shared queue drops or delays the victim.
    assert!(
        victim_before.loss_rate() > 0.0
            || victim_before.mean_delay_ns() > victim_after.mean_delay_ns(),
        "congestion should have hurt the victim (loss {} delay {} vs {})",
        victim_before.loss_rate(),
        victim_before.mean_delay_ns(),
        victim_after.mean_delay_ns(),
    );
    // With the offender policed, the victim is clean.
    assert_eq!(victim_after.loss_rate(), 0.0);
    assert!(victim_after.mean_delay_ns() < victim_before.mean_delay_ns());
}
