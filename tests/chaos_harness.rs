//! Tier-1 slice of the chaos harness: a handful of generated scenarios
//! must hold every invariant oracle, and the expanded fault-space
//! scenario features (node crashes, partitions, PDU chaos) must load
//! and run through the JSON schema end to end.

use mpls_chaos::{check, generate};
use mpls_cli::Scenario;

/// A short prefix of the CI corpus, green under every oracle. The full
/// 200-case sweep runs in the release-mode `chaos` binary (EXT-13).
#[test]
fn generated_cases_hold_all_invariants() {
    for idx in 0..8 {
        let case = generate(0xC4A0_5EED, idx);
        if let Err(v) = check(&case.scenario) {
            panic!("corpus case {idx} violated an invariant: {v}");
        }
    }
}

/// The whole expanded fault space expressed as one scenario document:
/// a node crash, a control partition, a PDU-chaos window and wire loss
/// together, under LDP with liberal retention — it must run, conserve
/// every packet, and survive the oracle suite.
#[test]
fn kitchen_sink_fault_scenario_passes_oracles() {
    let doc = r#"{
        "nodes": [
            {"id": 0, "role": "ler"}, {"id": 1, "role": "ler"},
            {"id": 2, "role": "lsr"}, {"id": 3, "role": "lsr"},
            {"id": 4, "role": "lsr"}, {"id": 5, "role": "lsr"}
        ],
        "links": [
            {"a": 0, "b": 2, "bandwidth_mbps": 1000, "delay_us": 300},
            {"a": 2, "b": 3, "bandwidth_mbps": 1000, "delay_us": 300},
            {"a": 3, "b": 1, "bandwidth_mbps": 1000, "delay_us": 300},
            {"a": 0, "b": 4, "bandwidth_mbps": 100, "delay_us": 1500, "cost": 3},
            {"a": 4, "b": 5, "bandwidth_mbps": 100, "delay_us": 1500, "cost": 3},
            {"a": 5, "b": 1, "bandwidth_mbps": 100, "delay_us": 1500, "cost": 3}
        ],
        "lsps": [{"ingress": 0, "egress": 1, "fec": "192.168.1.0/24"}],
        "flows": [{
            "name": "cbr", "ingress": 0,
            "src": "10.0.0.10", "dst": "192.168.1.10",
            "payload_bytes": 400,
            "pattern": {"kind": "cbr", "interval_us": 150},
            "start_ms": 8, "stop_ms": 40
        }],
        "control": "ldp",
        "ldp": {"hold_us": 4000, "stale_ttl_us": 6000, "jitter_seed": 3},
        "faults": {
            "events": [
                {"kind": "node_down", "at_ms": 12, "node": 2},
                {"kind": "node_up", "at_ms": 22, "node": 2},
                {"kind": "partition_start", "at_ms": 14, "a": 4, "b": 5},
                {"kind": "partition_end", "at_ms": 20, "a": 4, "b": 5}
            ],
            "pdu_chaos": [{
                "a": 3, "b": 1,
                "loss": 0.15, "duplicate": 0.1, "reorder": 0.1, "corrupt": 0.1,
                "from_ms": 10, "until_ms": 25
            }],
            "loss": [{"a": 0, "b": 2, "probability": 0.01}],
            "recovery": "restoration"
        },
        "seed": 23,
        "horizon_ms": 140
    }"#;
    let sc = Scenario::from_json(doc).expect("kitchen sink parses");
    if let Err(v) = check(&sc) {
        panic!("kitchen-sink scenario violated an invariant: {v}");
    }
    let report = sc.run().expect("runs");
    assert!(report.control.session_downs > 0, "chaos must bite");
    assert!(
        report.control.malformed_pdus > 0,
        "corruption must reach the decoder"
    );
    let s = report.flow("cbr").unwrap();
    assert!(s.delivered > 0);
}
