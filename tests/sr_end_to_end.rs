//! Segment routing end to end: source-routed delivery, metadata LSEs,
//! coordinator-side repair, and ECMP determinism.
//!
//! SR inverts the LDP state model: transit nodes carry only their own
//! node-SID binding (CONTINUE/NEXT), and the whole route rides in the
//! packet as a stack of SIDs assembled at the ingress. These tests
//! check the consequences at the system level:
//!
//! - a source-routed flow delivers end to end, with the entropy pair
//!   and (optionally) the MNA sub-stack riding below the SIDs and
//!   stripped before IP delivery;
//! - cutting a link on the compiled route blackholes only for the
//!   detection window — repair is a coordinator recompile, not a
//!   signaling wave — and the fault record closes;
//! - when loose-hop compression leaves multi-hop segments across an
//!   equal-cost fabric, transit ECMP keyed by the RFC 6790 entropy
//!   label picks byte-identical paths at every shard count and under
//!   both execution engines: the entropy label is the *only* hash
//!   input, so no per-shard state can leak into path choice.

use mpls_control::{ControlPlane, LspRequest, Topology};
use mpls_dataplane::ftn::Prefix;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{EngineKind, FaultPlan, QueueDiscipline, RestorationPolicy, RouterKind, Simulation};
use mpls_packet::ipv4::parse_addr;
use mpls_router::SwTimingModel;
use mpls_sr::SrConfig;
use proptest::prelude::*;

fn flow(name: &str, ingress: u32, src: &str, dst: &str, stop_ns: u64) -> FlowSpec {
    FlowSpec {
        name: name.into(),
        ingress,
        src_addr: parse_addr(src).unwrap(),
        dst_addr: parse_addr(dst).unwrap(),
        payload_bytes: 256,
        precedence: 0,
        pattern: TrafficPattern::Cbr {
            interval_ns: 1_000_000,
        },
        start_ns: 0,
        stop_ns,
        police: None,
    }
}

/// Figure-1 plane with one LSP 0 -> 1 whose FEC is 192.168.1.0/24.
fn figure1_plane() -> ControlPlane {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    cp.establish_lsp(LspRequest::best_effort(
        0,
        1,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .expect("LSP signals");
    cp
}

fn build_sr(cp: &ControlPlane, cfg: SrConfig, seed: u64) -> Simulation {
    let mut sim = Simulation::build(
        cp,
        RouterKind::SoftwareHash {
            timing: SwTimingModel::default(),
        },
        QueueDiscipline::Fifo { capacity: 64 },
        seed,
    );
    sim.enable_sr(cfg);
    sim
}

/// Fault-free delivery over a strict source route. The northern path
/// 0 -> 2 -> 3 -> 1 needs three node SIDs; with the default entropy
/// config the ingress pushes SIDs + ELI + EL = 5 entries, all popped
/// or stripped before the packet leaves node 1 as plain IP.
#[test]
fn source_route_delivers_and_strips_metadata() {
    let cp = figure1_plane();
    let mut sim = build_sr(&cp, SrConfig::default(), 7);
    sim.add_flow(flow("app", 0, "10.0.0.1", "192.168.1.5", 20_000_000));
    let report = sim.run(1_000_000_000);

    assert_eq!(report.control.mode, "sr");
    let s = report.flow("app").unwrap();
    assert!(s.sent > 0);
    assert_eq!(s.delivered, s.sent, "strict source route must be lossless");

    let ingress = &report.routers[&0];
    assert_eq!(ingress.peak_stack_depth, 5, "3 SIDs + ELI + EL");
    assert_eq!(ingress.rld_violations, 0);
    // Strict per-hop SIDs pin every segment to one link: ECMP never
    // engages even though the entropy pair is present.
    let ecmp: u64 = report.routers.values().map(|r| r.ecmp_decisions).sum();
    assert_eq!(ecmp, 0, "strict stacks leave no ECMP choice");
}

/// The MNA sub-stack (bSPL + opcode LSE + ancillary LSE) rides below
/// the SIDs without disturbing delivery, and deepens the stack by
/// exactly its three entries.
#[test]
fn mna_substack_is_transparent_to_delivery() {
    let cp = figure1_plane();
    let cfg = SrConfig {
        mna: true,
        ..SrConfig::default()
    };
    let mut sim = build_sr(&cp, cfg, 7);
    sim.add_flow(flow("app", 0, "10.0.0.1", "192.168.1.5", 20_000_000));
    let report = sim.run(1_000_000_000);

    let s = report.flow("app").unwrap();
    assert_eq!(s.delivered, s.sent);
    assert_eq!(
        report.routers[&0].peak_stack_depth, 8,
        "3 SIDs + 3 MNA + ELI + EL"
    );
}

/// An RLD programmed shallower than the entropy pair's position makes
/// the pair unreadable: forwarding falls back to the first equal-cost
/// next hop and counts an RLD violation instead of hashing. Delivery
/// must not suffer — degraded load balancing, not loss.
#[test]
fn shallow_rld_counts_violations_not_losses() {
    let cp = fat_tree_plane();
    let cfg = SrConfig {
        max_push_depth: 3,
        rld: 2,
        ..SrConfig::default()
    };
    let mut sim = build_sr(&cp, cfg, 11);
    sim.add_flow(flow("app", 20, "10.0.0.1", "192.168.7.5", 20_000_000));
    let report = sim.run(1_000_000_000);

    let s = report.flow("app").unwrap();
    assert_eq!(s.delivered, s.sent);
    let violations: u64 = report.routers.values().map(|r| r.rld_violations).sum();
    let ecmp: u64 = report.routers.values().map(|r| r.ecmp_decisions).sum();
    assert!(violations > 0, "rld=2 cannot reach the entropy pair");
    assert_eq!(ecmp, 0, "unreadable entropy must disable hashing");
}

/// Cutting the northern link mid-run: stale source routes blackhole
/// until the coordinator detects the fault, recompiles, and downloads
/// fresh configs — then traffic flows again via the southern path. The
/// outage closes with a restored timestamp and packet conservation
/// holds (everything sent is delivered or charged to the dead link).
#[test]
fn link_failure_recompiles_and_restores() {
    let cp = figure1_plane();
    let link = cp.topology().link_between(2, 3).unwrap();
    let mut sim = build_sr(&cp, SrConfig::default(), 7);
    let mut plan = FaultPlan::new(RestorationPolicy::default());
    plan.outage(link, 5_000_000, 40_000_000);
    sim.set_fault_plan(plan);
    sim.add_flow(flow("app", 0, "10.0.0.1", "192.168.1.5", 60_000_000));
    let report = sim.run(1_000_000_000);

    assert_eq!(report.faults.len(), 1);
    let rec = &report.faults[0];
    assert!(rec.detected_ns.is_some(), "fault must be detected");
    assert!(rec.restored_ns.is_some(), "recompile must restore service");

    let s = report.flow("app").unwrap();
    assert!(s.link_dropped > 0, "detection window must blackhole");
    assert!(
        s.delivered > s.sent / 2,
        "most packets ride the recompiled route ({}/{})",
        s.delivered,
        s.sent
    );
    assert_eq!(s.delivered + s.link_dropped, s.sent, "conservation");
}

/// A 4-ary fat tree with LERs under edge 0 (pod 0) and edge 7 (pod 3):
/// four equal-cost switch paths between them. One LSP each way.
fn fat_tree_plane() -> ControlPlane {
    let topo = Topology::fat_tree(4, 1, 1_000_000_000, 10_000);
    let (a, b) = (20, 27); // LERs, edge-major after 20 switches
    let mut cp = ControlPlane::new(topo);
    cp.attach_prefix(b, Prefix::new(parse_addr("192.168.7.0").unwrap(), 24));
    cp.attach_prefix(a, Prefix::new(parse_addr("10.1.0.0").unwrap(), 16));
    cp.establish_lsp(LspRequest::best_effort(
        a,
        b,
        Prefix::new(parse_addr("192.168.7.0").unwrap(), 24),
    ))
    .expect("forward LSP");
    cp.establish_lsp(LspRequest::best_effort(
        b,
        a,
        Prefix::new(parse_addr("10.1.0.0").unwrap(), 16),
    ))
    .expect("reverse LSP");
    cp
}

/// Loose-hop compression across the fat tree engages transit ECMP, and
/// different (src, dst) pairs spread across the equal-cost fan-out.
#[test]
fn loose_hops_hash_flows_across_the_fabric() {
    let cp = fat_tree_plane();
    let cfg = SrConfig {
        max_push_depth: 3,
        ..SrConfig::default()
    };
    let mut sim = build_sr(&cp, cfg, 11);
    for i in 0..8 {
        sim.add_flow(flow(
            &format!("f{i}"),
            20,
            &format!("10.1.0.{}", i + 1),
            &format!("192.168.7.{}", i + 1),
            20_000_000,
        ));
    }
    let report = sim.run(1_000_000_000);

    for i in 0..8 {
        let s = report.flow(&format!("f{i}")).unwrap();
        assert_eq!(s.delivered, s.sent, "flow f{i} must be lossless");
    }
    let ecmp: u64 = report.routers.values().map(|r| r.ecmp_decisions).sum();
    assert!(ecmp > 0, "loose hops across a Clos must exercise ECMP");
    // The hash actually spreads: more than one core switch forwarded.
    let busy_cores = (0..4u32)
        .filter(|c| report.routers[c].forwarded > 0)
        .count();
    assert!(busy_cores > 1, "entropy hashing must use several cores");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// ECMP path choice is a pure function of the entropy label: the
    /// serialized report — flow stats, per-router counters, telemetry —
    /// is byte-identical across shard counts {1, 2, 4} and both
    /// engines. Any per-shard RNG or wall-clock leakage into the hash
    /// would split these bytes apart.
    #[test]
    fn ecmp_choice_is_shard_and_engine_invariant(
        seed in 0u64..10_000,
        nflows in 2usize..6,
        addr_salt in 0u8..200,
    ) {
        let cp = fat_tree_plane();
        let cfg = SrConfig { max_push_depth: 3, ..SrConfig::default() };
        let run = |shards: usize, engine: EngineKind| {
            let mut sim = build_sr(&cp, cfg, seed);
            sim.set_shards(shards);
            sim.set_engine(engine);
            for i in 0..nflows {
                let o = addr_salt as usize + i;
                sim.add_flow(flow(
                    &format!("f{i}"),
                    20,
                    &format!("10.1.0.{o}"),
                    &format!("192.168.7.{o}"),
                    10_000_000,
                ));
            }
            let report = sim.run(500_000_000);
            let ecmp: u64 = report.routers.values().map(|r| r.ecmp_decisions).sum();
            (serde_json::to_string(&report).expect("report serializes"), ecmp)
        };
        let (baseline, ecmp) = run(1, EngineKind::Barrier);
        prop_assert!(ecmp > 0, "scenario must actually exercise ECMP");
        for shards in [1usize, 2, 4] {
            for engine in [EngineKind::Barrier, EngineKind::Merge] {
                let (json, _) = run(shards, engine);
                prop_assert_eq!(
                    &json, &baseline,
                    "{} shards / {:?} diverged", shards, engine
                );
            }
        }
    }
}
