//! Node crash and restart at the system level: a crashed router loses
//! all state (sessions, FIB), its links go dark, and recovery must be
//! earned — LDP re-forms sessions and relearns labels, protection rides
//! the standby path through the cold-FIB window, and every packet stays
//! accounted for at any shard count.

use mpls_control::{ControlPlane, LspRequest, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_ldp::LdpConfig;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{
    FaultPlan, QueueDiscipline, RecoveryMode, RestorationPolicy, RouterKind, SimReport, Simulation,
};
use mpls_packet::ipv4::parse_addr;

const CRASH_NS: u64 = 30_000_000;
const RESTART_NS: u64 = 50_000_000;

/// The paper's two-path plane: north 0-2-3-1 (fast), south 0-4-5-1
/// (slow). Node 2 is the north LSR whose crash severs the fast path.
fn plane(protected: bool) -> ControlPlane {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    let lsp = cp
        .establish_lsp(LspRequest::best_effort(
            0,
            1,
            Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
        ))
        .unwrap();
    if protected {
        cp.protect_lsp(lsp).unwrap();
    }
    cp
}

fn flow(name: &str, start_ns: u64, stop_ns: u64) -> FlowSpec {
    FlowSpec {
        name: name.into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.1").unwrap(),
        dst_addr: parse_addr("192.168.1.5").unwrap(),
        payload_bytes: 256,
        precedence: 0,
        pattern: TrafficPattern::Cbr {
            interval_ns: 200_000,
        },
        start_ns,
        stop_ns,
        police: None,
    }
}

fn crash_plan(mode: RecoveryMode) -> FaultPlan {
    let mut plan = FaultPlan::new(RestorationPolicy {
        detection_delay_ns: 1_000_000,
        resignal_delay_ns: 1_000_000,
        backoff_factor: 2,
        max_retries: 8,
        hold_down_ns: 2_000_000,
        mode,
    });
    plan.node_outage(2, CRASH_NS, RESTART_NS);
    plan
}

fn conserves(r: &SimReport, name: &str) -> u64 {
    let s = r.flow(name).unwrap();
    assert_eq!(
        s.sent,
        s.delivered
            + s.router_dropped
            + s.queue_dropped
            + s.policer_dropped
            + s.link_dropped
            + s.loss_dropped,
        "conservation broke for {name}"
    );
    s.sent
}

/// LDP: the crash tears sessions down at the survivors, the withdraw
/// wave reroutes onto the south path, and after restart the node
/// re-forms its sessions and relearns the fast path — traffic that
/// starts after reconvergence is delivered in full.
#[test]
fn ldp_sessions_reestablish_after_node_crash() {
    let cp = plane(false);
    let mut sim = Simulation::build(
        &cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 64 },
        17,
    );
    sim.enable_ldp(LdpConfig::default());
    sim.set_fault_plan(crash_plan(RecoveryMode::Restoration));
    // Before, across, and after the crash window.
    sim.add_flow(flow("early", 10_000_000, 25_000_000));
    sim.add_flow(flow("across", 25_000_000, 45_000_000));
    sim.add_flow(flow("late", 65_000_000, 90_000_000));
    let report = sim.run(120_000_000);

    assert_eq!(report.control.mode, "ldp");
    // figure1 has 6 links = 12 session ends at bring-up; the crash must
    // tear down both of node 2's sessions at the surviving ends and
    // re-establish all four ends after the restart.
    assert!(
        report.control.sessions_established >= 16,
        "sessions did not re-establish: {}",
        report.control.sessions_established
    );
    assert!(
        report.control.session_downs >= 2,
        "survivors never noticed the crash: {}",
        report.control.session_downs
    );

    for name in ["early", "across", "late"] {
        conserves(&report, name);
    }
    let early = report.flow("early").unwrap();
    assert_eq!(early.delivered, early.sent, "healthy window must be clean");
    let across = report.flow("across").unwrap();
    assert!(
        across.delivered > 0,
        "withdraw wave should reroute mid-crash traffic south"
    );
    assert!(
        across.delivered < across.sent,
        "the detection window must cost something"
    );
    let late = report.flow("late").unwrap();
    assert_eq!(
        late.delivered, late.sent,
        "post-restart traffic must be clean after reconvergence"
    );
}

/// Protection: with a standby LSP pre-signaled on the south path, the
/// crash costs only the detection window — traffic keeps flowing while
/// the crashed node's FIB is still cold, and the repair is hitless.
#[test]
fn protection_carries_traffic_through_cold_fib_window() {
    let cp = plane(true);
    let mut sim = Simulation::build(
        &cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 64 },
        17,
    );
    sim.set_fault_plan(crash_plan(RecoveryMode::Protection));
    sim.add_flow(flow("app", 0, 100_000_000));
    let report = sim.run(130_000_000);

    let sent = conserves(&report, "app");
    let s = report.flow("app").unwrap();
    // Losses are confined to the ~1 ms detection window (5 pkt/ms).
    assert!(
        s.link_dropped > 0,
        "the crash must cost the in-flight window"
    );
    assert!(
        s.delivered >= sent - 20,
        "protection should carry everything else: {} of {sent}",
        s.delivered
    );
    assert_eq!(report.faults.len(), 2, "one record per severed north link");
    assert!(
        report.faults.iter().any(|f| f.restored_ns.is_some()),
        "protection switch must restore service"
    );
}

/// The crash/restart machinery is coordinator-global, so the report must
/// stay byte-identical at any shard count.
#[test]
fn node_crash_report_is_shard_invariant() {
    let run = |shards: usize| -> String {
        let cp = plane(false);
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            17,
        );
        sim.enable_ldp(LdpConfig {
            stale_ttl_ns: 6_000_000,
            ..LdpConfig::default()
        });
        sim.set_shards(shards);
        sim.set_fault_plan(crash_plan(RecoveryMode::Restoration));
        sim.add_flow(flow("app", 5_000_000, 80_000_000));
        serde_json::to_string(&sim.run(120_000_000)).unwrap()
    };
    let sequential = run(1);
    assert_eq!(sequential, run(4), "4-shard crash run diverged");
}
