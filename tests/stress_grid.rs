//! Scale stress: a 5x5 LSR grid with four corner LERs, a full mesh of
//! LSPs between the LERs, and concurrent traffic on all of them — checks
//! that signaling, label allocation and the simulator hold up beyond toy
//! topologies.

use mpls_control::{ControlPlane, LspRequest, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{QueueDiscipline, RouterKind, Simulation};
use mpls_packet::ipv4::parse_addr;

const K: u32 = 5;

/// LER ids for a k-grid.
fn lers() -> [u32; 4] {
    [K * K, K * K + 1, K * K + 2, K * K + 3]
}

/// The /24 attached behind each LER.
fn prefix_of(ler_index: usize) -> Prefix {
    Prefix::new(
        parse_addr(&format!("192.168.{}.0", ler_index + 1)).unwrap(),
        24,
    )
}

fn full_mesh_plane() -> (ControlPlane, usize) {
    let topo = Topology::grid(K, 1_000_000_000, 200_000);
    let mut cp = ControlPlane::new(topo);
    let mut count = 0;
    for (i, &ingress) in lers().iter().enumerate() {
        for (j, &egress) in lers().iter().enumerate() {
            if i == j {
                continue;
            }
            cp.establish_lsp(LspRequest::best_effort(ingress, egress, prefix_of(j)))
                .unwrap_or_else(|e| panic!("LSP {ingress}->{egress}: {e:?}"));
            count += 1;
        }
    }
    (cp, count)
}

#[test]
fn full_mesh_signals_cleanly() {
    let (cp, count) = full_mesh_plane();
    assert_eq!(count, 12, "4 LERs, full mesh");
    assert_eq!(cp.lsp_ids().len(), 12);

    // Every LSP has a valid connected path and unique labels.
    let mut all_labels = std::collections::HashSet::new();
    for id in cp.lsp_ids() {
        let lsp = cp.lsp(id).unwrap();
        assert!(cp.topology().path_links(&lsp.path).is_some());
        for l in &lsp.hop_labels {
            assert!(all_labels.insert(l.value()), "label {l} reused");
        }
    }
}

#[test]
fn mesh_traffic_all_delivers() {
    let (cp, _) = full_mesh_plane();
    let mut sim = Simulation::build(
        &cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 128 },
        21,
    );
    // One flow per ordered LER pair.
    let mut names = Vec::new();
    for (i, &ingress) in lers().iter().enumerate() {
        for (j, _) in lers().iter().enumerate() {
            if i == j {
                continue;
            }
            let name = format!("f{i}{j}");
            sim.add_flow(FlowSpec {
                name: name.clone(),
                ingress,
                src_addr: parse_addr(&format!("10.0.{i}.1")).unwrap(),
                dst_addr: parse_addr(&format!("192.168.{}.5", j + 1)).unwrap(),
                payload_bytes: 256,
                precedence: 0,
                pattern: TrafficPattern::Cbr {
                    interval_ns: 500_000,
                },
                start_ns: 0,
                stop_ns: 20_000_000,
                police: None,
            });
            names.push(name);
        }
    }
    let report = sim.run(5_000_000_000);
    for name in &names {
        let s = report.flow(name).expect("flow exists");
        assert_eq!(s.sent, 40, "{name}");
        assert_eq!(s.delivered, 40, "{name} lost packets");
    }
    // All four LER routers delivered and forwarded.
    for (i, &ler) in lers().iter().enumerate() {
        let rs = &report.routers[&ler];
        assert!(rs.delivered > 0, "ler {i} delivered nothing");
        assert!(rs.forwarded > 0, "ler {i} forwarded nothing");
    }
    // No queue pressure at this modest load.
    assert_eq!(report.queue_drops, 0);
}

#[test]
fn grid_reroute_under_multiple_failures() {
    let (mut cp, _) = full_mesh_plane();
    // Fail every link on the top edge of the grid.
    let mut failed = Vec::new();
    for c in 0..K - 1 {
        let link = cp.topology().link_between(c, c + 1).unwrap();
        failed.push(link);
    }
    let mut affected = std::collections::HashSet::new();
    for &l in &failed {
        for id in cp.fail_link(l) {
            affected.insert(id);
        }
    }
    assert!(!affected.is_empty(), "top-edge failures must affect LSPs");

    // Every affected LSP reroutes successfully (the grid stays connected).
    for id in affected {
        let new_id = cp.reroute_lsp(id).expect("grid remains connected");
        let lsp = cp.lsp(new_id).unwrap();
        let links = cp.topology().path_links(&lsp.path).unwrap();
        for l in links {
            assert!(!failed.contains(&l), "rerouted path uses a failed link");
        }
    }
}
