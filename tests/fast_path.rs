//! System-level certification of the hash-FIB fast path: for the same
//! scenario, [`RouterKind::SoftwareFast`] (hash FIB + flow cache) must
//! serialize the *byte-identical* report that [`RouterKind::SoftwareLinear`]
//! does — cache on or off, at any shard count — including runs where the
//! forwarding state is rewritten mid-flight (fault-driven reroute,
//! LDP withdraw waves), which is exactly when a stale flow cache would
//! show up as diverging delivery counters.

use mpls_control::{ControlPlane, LinkSpec, LspRequest, RouterRole, Topology};
use mpls_dataplane::ftn::Prefix;
use mpls_ldp::LdpConfig;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{
    FaultPlan, QueueDiscipline, RecoveryMode, RestorationPolicy, RouterKind, SimReport, Simulation,
    TelemetryConfig,
};
use mpls_packet::ipv4::parse_addr;
use mpls_router::SwTimingModel;

/// A `rows x cols` grid with LERs in the opposite corners, one LSP each
/// way, and a prefix behind each LER.
fn grid_plane(rows: u32, cols: u32) -> ControlPlane {
    let last = rows * cols - 1;
    let mut topo = Topology::new();
    for id in 0..=last {
        let role = if id == 0 || id == last {
            RouterRole::Ler
        } else {
            RouterRole::Lsr
        };
        topo.add_node(id, role, format!("n{id}"));
    }
    let mut add = |a: u32, b: u32| {
        topo.add_link(LinkSpec {
            a,
            b,
            cost: 1 + ((a as u64 * 13 + b as u64 * 5) % 3) as u32,
            bandwidth_bps: 200_000_000,
            delay_ns: 20_000,
        });
    };
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                add(id, id + 1);
            }
            if r + 1 < rows {
                add(id, id + cols);
            }
        }
    }
    let mut cp = ControlPlane::new(topo);
    cp.attach_prefix(last, Prefix::new(parse_addr("192.168.1.0").unwrap(), 24));
    cp.attach_prefix(0, Prefix::new(parse_addr("10.1.0.0").unwrap(), 16));
    cp.establish_lsp(LspRequest::best_effort(
        0,
        last,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .expect("forward LSP");
    cp.establish_lsp(LspRequest::best_effort(
        last,
        0,
        Prefix::new(parse_addr("10.1.0.0").unwrap(), 16),
    ))
    .expect("reverse LSP");
    cp
}

fn flows(start_ns: u64, stop_ns: u64, last: u32) -> Vec<FlowSpec> {
    vec![
        FlowSpec {
            name: "fwd".into(),
            ingress: 0,
            src_addr: parse_addr("10.1.0.5").unwrap(),
            dst_addr: parse_addr("192.168.1.5").unwrap(),
            payload_bytes: 400,
            precedence: 5,
            pattern: TrafficPattern::Cbr {
                interval_ns: 100_000,
            },
            start_ns,
            stop_ns,
            police: None,
        },
        FlowSpec {
            name: "rev".into(),
            ingress: last,
            src_addr: parse_addr("192.168.1.5").unwrap(),
            dst_addr: parse_addr("10.1.0.5").unwrap(),
            payload_bytes: 900,
            precedence: 0,
            pattern: TrafficPattern::Poisson {
                mean_interval_ns: 150_000,
            },
            start_ns,
            stop_ns,
            police: None,
        },
    ]
}

/// Every software lookup configuration under test: the linear baseline,
/// the hash FIB bare, and the hash FIB with the per-ingress flow cache.
fn variants() -> Vec<(&'static str, RouterKind)> {
    let timing = SwTimingModel::default();
    vec![
        ("linear", RouterKind::SoftwareLinear { timing }),
        (
            "hash/cache-off",
            RouterKind::SoftwareFast {
                timing,
                cache: false,
            },
        ),
        (
            "hash/cache-on",
            RouterKind::SoftwareFast {
                timing,
                cache: true,
            },
        ),
    ]
}

/// Mid-run link failure with timed restoration: the recovery path
/// retires the broken LSP and reprograms every router — the flow cache
/// must drop its bindings with the old forwarders or the fast path
/// would keep steering packets into the cut after the linear baseline
/// has rerouted, and the reports would diverge.
#[test]
fn fault_reroute_reports_are_byte_identical_across_lookup_paths() {
    let cp = grid_plane(3, 3);
    let cut = cp.topology().link_between(0, 1).expect("link 0-1");
    let run = |kind: RouterKind, shards: usize| -> (String, SimReport) {
        let mut sim = Simulation::build(&cp, kind, QueueDiscipline::Fifo { capacity: 32 }, 9);
        sim.set_shards(shards);
        let mut plan = FaultPlan::new(RestorationPolicy {
            detection_delay_ns: 300_000,
            resignal_delay_ns: 300_000,
            backoff_factor: 2,
            max_retries: 4,
            hold_down_ns: 1_000_000,
            mode: RecoveryMode::Restoration,
        });
        plan.link_down(4_000_000, cut);
        plan.link_up(12_000_000, cut);
        sim.set_fault_plan(plan);
        for f in flows(0, 20_000_000, 8) {
            sim.add_flow(f);
        }
        let report = sim
            .with_telemetry(TelemetryConfig {
                sample_interval_ns: 500_000,
                ..TelemetryConfig::default()
            })
            .run(40_000_000);
        let json = serde_json::to_string(&report).expect("report serializes");
        (json, report)
    };

    let (baseline, report) = run(variants()[0].1, 1);
    let s = report.flow("fwd").unwrap();
    assert!(s.delivered > 0, "reroute never restored service");
    assert!(
        report.faults[0].packets_lost > 0,
        "the fault never bit, so the stale-binding window was not exercised"
    );

    for (name, kind) in variants() {
        for shards in [1usize, 2, 4] {
            let (json, _) = run(kind, shards);
            assert_eq!(
                baseline, json,
                "{name} at {shards} shard(s) diverged from the linear baseline"
            );
        }
    }
}

/// In-band LDP withdraw wave: a permanent cut is detected by hold
/// expiry, labels are withdrawn and re-signaled hop by hop, and every
/// dirty router is reprogrammed. A flow cache that survived the
/// withdraw would forward on the revoked binding and split the
/// delivery counters between the paths.
#[test]
fn ldp_withdraw_invalidates_cached_flows_identically() {
    let cp = grid_plane(3, 3);
    let cut = cp.topology().link_between(0, 1).expect("link 0-1");
    let run = |kind: RouterKind, shards: usize| -> (String, SimReport) {
        let mut sim = Simulation::build(&cp, kind, QueueDiscipline::Fifo { capacity: 32 }, 7);
        sim.set_shards(shards);
        sim.enable_ldp(LdpConfig::default());
        let mut plan = FaultPlan::default();
        plan.link_down(20_000_000, cut);
        sim.set_fault_plan(plan);
        for f in flows(10_000_000, 60_000_000, 8) {
            sim.add_flow(f);
        }
        let report = sim.run(90_000_000);
        let json = serde_json::to_string(&report).expect("report serializes");
        (json, report)
    };

    let (baseline, report) = run(variants()[0].1, 1);
    assert_eq!(report.control.mode, "ldp");
    let s = report.flow("fwd").unwrap();
    assert!(s.delivered > 0, "withdraw wave never reconverged");
    assert!(
        s.link_dropped > 0,
        "no packets hit the stale binding before the withdraw"
    );

    for (name, kind) in variants() {
        for shards in [1usize, 2, 4] {
            let (json, _) = run(kind, shards);
            assert_eq!(
                baseline, json,
                "{name} at {shards} shard(s) diverged from the linear baseline"
            );
        }
    }
}
