//! Differential testing: the cycle-accurate hardware label stack modifier
//! and the software forwarder must produce *identical observable
//! behaviour* for any configuration and any packet — same applied
//! operation, same resulting stack, same discard reason.
//!
//! This is the strongest evidence that the hardware architecture
//! faithfully implements MPLS semantics: the software plane is the
//! specification oracle, the hardware model is the implementation under
//! test (and vice versa).

use mpls_core::modifier::Outcome as HwOutcome;
use mpls_core::{DiscardReason, IbOperation, LabelStackModifier, Level, RouterType};
use mpls_dataplane::fib::FibLevel;
use mpls_dataplane::{
    Discard, HashTable, LabelOp, LinearTable, LookupStrategy, ProcessResult, SoftwareForwarder,
    SwRouterType,
};
use mpls_packet::{label::LabelStackEntry, CosBits, Label, LabelStack};
use proptest::prelude::*;

/// One table entry of a random program.
#[derive(Debug, Clone, Copy)]
struct Pair {
    level: u8, // 1..=3
    key: u64,
    new_label: u32,
    op: u8, // 0..=3 maps to Nop/Push/Pop/Swap
}

fn op_hw(op: u8) -> IbOperation {
    IbOperation::from_bits(op as u64)
}

fn op_sw(op: u8) -> LabelOp {
    match op & 3 {
        1 => LabelOp::Push,
        2 => LabelOp::Pop,
        3 => LabelOp::Swap,
        _ => LabelOp::Nop,
    }
}

fn hw_level(level: u8) -> Level {
    match level {
        1 => Level::L1,
        2 => Level::L2,
        _ => Level::L3,
    }
}

fn sw_level(level: u8) -> FibLevel {
    match level {
        1 => FibLevel::L1,
        2 => FibLevel::L2,
        _ => FibLevel::L3,
    }
}

fn discard_eq(hw: DiscardReason, sw: Discard) -> bool {
    matches!(
        (hw, sw),
        (DiscardReason::NoEntryFound, Discard::NoEntryFound)
            | (DiscardReason::TtlExpired, Discard::TtlExpired)
            | (
                DiscardReason::InconsistentOperation,
                Discard::InconsistentOperation
            )
    )
}

fn arb_pair() -> impl Strategy<Value = Pair> {
    (1u8..=3, 0u64..48, 16u32..2000, 0u8..=3).prop_map(|(level, key, new_label, op)| Pair {
        level,
        key,
        new_label,
        op,
    })
}

fn arb_stack_entries() -> impl Strategy<Value = Vec<(u32, u8, u8)>> {
    proptest::collection::vec((0u32..48, 0u8..=7, any::<u8>()), 0..=3)
}

/// Runs one random scenario on the hardware model and one software
/// strategy, asserting identical outcomes.
fn check_equivalence<S: LookupStrategy>(
    is_lsr: bool,
    pairs: &[Pair],
    stack_entries: &[(u32, u8, u8)],
    packet_id: u32,
    push_cos: u8,
    push_ttl: u8,
) -> Result<(), TestCaseError> {
    let rt_hw = if is_lsr {
        RouterType::Lsr
    } else {
        RouterType::Ler
    };
    let rt_sw = if is_lsr {
        SwRouterType::Lsr
    } else {
        SwRouterType::Ler
    };

    // Program both planes identically.
    let mut hw = LabelStackModifier::new(rt_hw);
    let mut sw: SoftwareForwarder<S> = SoftwareForwarder::new(rt_sw);
    for p in pairs {
        hw.write_pair(
            hw_level(p.level),
            p.key,
            Label::new(p.new_label).unwrap(),
            op_hw(p.op),
        );
        sw.bind(
            sw_level(p.level),
            p.key,
            Label::new(p.new_label).unwrap(),
            op_sw(p.op),
        );
    }

    // Identical input stacks.
    let mut sw_stack = LabelStack::new();
    for (l, c, t) in stack_entries {
        let e = LabelStackEntry::new(
            Label::new(*l).unwrap(),
            CosBits::new(*c).unwrap(),
            false,
            *t,
        );
        sw_stack.push(e).unwrap();
        hw.user_push(e);
    }
    prop_assert_eq!(hw.stack_snapshot(), sw_stack.clone());

    let cos = CosBits::new(push_cos).unwrap();
    let hw_result = hw.update_stack(packet_id, cos, push_ttl);
    let sw_result = sw.process(&mut sw_stack, packet_id, cos, push_ttl);

    match (hw_result.outcome, sw_result) {
        (HwOutcome::Updated { op: hop }, ProcessResult::Updated { op: sop }) => {
            prop_assert_eq!(hop.to_bits(), op_sw_bits(sop), "applied op differs");
            let hw_stack = hw.stack_snapshot();
            prop_assert_eq!(
                &hw_stack,
                &sw_stack,
                "stacks diverged: hw={} sw={}",
                hw_stack,
                sw_stack
            );
            hw_stack.validate().unwrap();
        }
        (HwOutcome::Discarded(hr), ProcessResult::Discarded(sr)) => {
            prop_assert!(
                discard_eq(hr, sr),
                "discard reasons differ: hw={hr:?} sw={sr:?}"
            );
            prop_assert_eq!(hw.stack_depth(), 0);
            prop_assert!(sw_stack.is_empty());
        }
        (h, s) => {
            return Err(TestCaseError::fail(format!(
                "outcome class differs: hw={h:?} sw={s:?}"
            )))
        }
    }
    Ok(())
}

fn op_sw_bits(op: LabelOp) -> u64 {
    match op {
        LabelOp::Nop => 0,
        LabelOp::Push => 1,
        LabelOp::Pop => 2,
        LabelOp::Swap => 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn hardware_matches_linear_software(
        is_lsr: bool,
        pairs in proptest::collection::vec(arb_pair(), 0..24),
        stack in arb_stack_entries(),
        packet_id in 0u32..48,
        push_cos in 0u8..=7,
        push_ttl: u8,
    ) {
        check_equivalence::<LinearTable>(is_lsr, &pairs, &stack, packet_id, push_cos, push_ttl)?;
    }

    #[test]
    fn hardware_matches_hash_software(
        is_lsr: bool,
        pairs in proptest::collection::vec(arb_pair(), 0..24),
        stack in arb_stack_entries(),
        packet_id in 0u32..48,
        push_cos in 0u8..=7,
        push_ttl: u8,
    ) {
        check_equivalence::<HashTable>(is_lsr, &pairs, &stack, packet_id, push_cos, push_ttl)?;
    }

    /// Repeated updates through the same pair of planes stay in lockstep
    /// (state carried across packets).
    #[test]
    fn planes_stay_in_lockstep_across_packets(
        pairs in proptest::collection::vec(arb_pair(), 1..16),
        packets in proptest::collection::vec((0u32..32, 2u8..), 1..8),
    ) {
        let mut hw = LabelStackModifier::new(RouterType::Lsr);
        let mut sw: SoftwareForwarder<LinearTable> = SoftwareForwarder::new(SwRouterType::Lsr);
        for p in &pairs {
            hw.write_pair(hw_level(p.level), p.key, Label::new(p.new_label).unwrap(), op_hw(p.op));
            sw.bind(sw_level(p.level), p.key, Label::new(p.new_label).unwrap(), op_sw(p.op));
        }
        for (label, ttl) in packets {
            // Fresh single-entry stack per packet, like a transit LSR.
            while hw.stack_depth() > 0 {
                hw.user_pop();
            }
            let e = LabelStackEntry::new(
                Label::new(label).unwrap(),
                CosBits::BEST_EFFORT,
                false,
                ttl,
            );
            hw.user_push(e);
            let mut sw_stack = LabelStack::new();
            sw_stack.push(e).unwrap();

            let h = hw.update_stack(0, CosBits::BEST_EFFORT, 0);
            let s = sw.process(&mut sw_stack, 0, CosBits::BEST_EFFORT, 0);
            match (h.outcome, s) {
                (HwOutcome::Updated { .. }, ProcessResult::Updated { .. }) => {
                    prop_assert_eq!(hw.stack_snapshot(), sw_stack);
                }
                (HwOutcome::Discarded(_), ProcessResult::Discarded(_)) => {}
                (a, b) => return Err(TestCaseError::fail(format!("diverged: {a:?} vs {b:?}"))),
            }
        }
    }
}
