//! Telemetry integration: on a known congested scenario, every instrument
//! the registry scrapes must reconcile with the simulator's own
//! end-of-run aggregates — queue-depth series against channel limits,
//! per-link counters against `LinkUsage`, per-flow counters and latency
//! histograms against `FlowStats`, and the exporters against both.
//!
//! The net crate's unit tests pin the plumbing; this test pins the
//! *accounting identity*: telemetry is a second, independent view of the
//! same run, so any divergence means an instrument lies.

use mpls_control::{ControlPlane, LspRequest, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::policer::PolicerSpec;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{
    telemetry_to_csv, telemetry_to_json, QueueDiscipline, RouterKind, SimReport, Simulation,
    TelemetryConfig,
};
use mpls_packet::ipv4::parse_addr;

const RUN_NS: u64 = 20_000_000; // 20 ms of traffic
const QUEUE_CAPACITY: usize = 8;

fn flow(name: &str, payload: usize, interval_ns: u64, police: Option<PolicerSpec>) -> FlowSpec {
    FlowSpec {
        name: name.into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.1").unwrap(),
        dst_addr: parse_addr("192.168.1.5").unwrap(),
        payload_bytes: payload,
        precedence: 0,
        pattern: TrafficPattern::Cbr { interval_ns },
        start_ns: 0,
        stop_ns: RUN_NS,
        police,
    }
}

/// A probe, an oversubscribing bulk flow (1458 B every 10 µs ≈ 1.2 Gb/s of
/// wire bytes onto a 1 Gb/s first hop: the 8-deep queue must overflow),
/// and a hard-policed flow, so drops of every accountable kind occur.
fn run_scenario() -> SimReport {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    cp.establish_lsp(LspRequest::best_effort(
        0,
        1,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .unwrap();
    let mut sim = Simulation::build(
        &cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo {
            capacity: QUEUE_CAPACITY,
        },
        7,
    );
    sim.add_flow(flow("probe", 256, 100_000, None));
    sim.add_flow(flow("bulk", 1458, 10_000, None));
    sim.add_flow(flow(
        "policed",
        512,
        50_000,
        Some(PolicerSpec {
            rate_bps: 1_000_000,
            burst_bytes: 600,
        }),
    ));
    sim.with_telemetry(TelemetryConfig {
        sample_interval_ns: 50_000,
        ..TelemetryConfig::default()
    })
    .run(RUN_NS + 500_000_000)
}

#[test]
fn telemetry_reconciles_with_simulation_aggregates() {
    let report = run_scenario();
    let tel = report.telemetry.as_ref().expect("telemetry enabled");

    // --- queue-depth series against the channel's hard limits ----------
    let depth = tel
        .series("link.0->2.queue_depth")
        .expect("first hop sampled");
    assert!(!depth.points.is_empty());
    let peak = depth.points.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    assert!(
        peak >= 2.0,
        "oversubscription must build a visible queue, peak {peak}"
    );
    // A channel holds at most `capacity` queued packets plus one on the
    // wire, and sample times never pass the end of the run.
    for &(t, v) in &depth.points {
        assert!(v >= 0.0 && v <= (QUEUE_CAPACITY + 1) as f64, "depth {v}");
        assert!(t <= report.elapsed_ns);
    }
    assert!(
        depth.points.windows(2).all(|w| w[0].0 < w[1].0),
        "sample timestamps strictly increase"
    );
    // Utilization is a fraction of wall time; the congested first hop
    // should be near saturation while traffic flows.
    let util = tel.series("link.0->2.utilization").unwrap();
    assert!(util.points.iter().all(|&(_, v)| (0.0..=1.0).contains(&v)));
    let util_peak = util.points.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    assert!(util_peak > 0.9, "congested hop idle? peak {util_peak}");

    // --- per-link counters against LinkUsage ---------------------------
    let mut counted_queue_drops = 0.0;
    for link in &report.links {
        let prefix = format!("link.{}->{}", link.from, link.to);
        assert_eq!(
            tel.counter(&format!("{prefix}.transmitted")),
            Some(link.transmitted as f64),
            "{prefix}"
        );
        assert_eq!(
            tel.counter(&format!("{prefix}.queue_drops")),
            Some(link.drops as f64),
            "{prefix}"
        );
        counted_queue_drops += link.drops as f64;
        let gauge = tel
            .gauge(&format!("{prefix}.mean_utilization"))
            .expect("utilization gauge");
        assert!(
            (gauge - link.utilization).abs() < 1e-9,
            "{prefix}: gauge {gauge} vs usage {}",
            link.utilization
        );
    }
    assert_eq!(counted_queue_drops, report.queue_drops as f64);
    assert!(report.queue_drops > 0, "scenario must exercise tail drops");

    // --- per-flow counters and histograms against FlowStats ------------
    for (spec, stats) in &report.flows {
        let name = &spec.name;
        assert_eq!(
            tel.counter(&format!("flow.{name}.sent")),
            Some(stats.sent as f64)
        );
        assert_eq!(
            tel.counter(&format!("flow.{name}.delivered")),
            Some(stats.delivered as f64)
        );
        let delay = tel
            .histogram(&format!("lsp.{name}.delay_ns"))
            .expect("delay histogram");
        assert_eq!(delay.total, stats.delivered);
        assert_eq!(delay.sum, stats.delay_sum_ns);
        if stats.delivered > 0 {
            assert_eq!(delay.min, Some(stats.delay_min_ns));
            assert_eq!(delay.max, Some(stats.delay_max_ns));
            let jitter = tel.histogram(&format!("lsp.{name}.jitter_ns")).unwrap();
            assert_eq!(jitter.total, stats.delivered - 1);
            assert_eq!(jitter.sum, stats.jitter_sum_ns);
        }
    }
    let policed = report.flow("policed").unwrap();
    assert!(policed.policer_dropped > 0, "policer must fire");
    assert_eq!(
        tel.counter("flow.policed.policer_exceed"),
        Some(policed.policer_dropped as f64)
    );
    assert_eq!(
        tel.counter("flow.policed.policer_conform"),
        Some((policed.sent - policed.policer_dropped) as f64)
    );

    // --- exporters carry the same data ---------------------------------
    let json = telemetry_to_json(tel);
    assert!(json.contains("link.0->2.queue_depth"));
    assert!(json.contains("lsp.probe.delay_ns"));
    let csv = telemetry_to_csv(tel);
    assert!(csv.lines().any(|l| l.contains("queue_depth")));
    assert!(csv.lines().any(|l| l.contains("flow.bulk.sent")));
}
