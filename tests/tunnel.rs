//! The paper's Fig. 3 scenario: hierarchical LSPs through a tunnel —
//! "The ability to support aggregate paths within a tunnel in an MPLS
//! network is supported through the use of multiple labels for each
//! packet" — exercised end to end over the cycle-accurate routers.
//!
//! Topology for this test (all 1 Gb/s, cost 1):
//!
//! ```text
//! LER10 --- LSR20 --- LSR21 --- LSR22 --- LER11
//!              \________tunnel________/
//! ```
//!
//! The tunnel runs LSR20 -> LSR22 (PHP inside); two LSPs from LER10 to
//! LER11 are routed through it, demonstrating aggregation (merge) at the
//! head and deaggregation (unmerge) at the tail.

use mpls_control::{ControlPlane, LspRequest, RouterRole, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_packet::ipv4::parse_addr;
use mpls_packet::{EtherType, EthernetFrame, Ipv4Header, MacAddr, MplsPacket};
use mpls_router::{Action, EmbeddedRouter, MplsForwarder};

fn line_topology() -> Topology {
    let mut t = Topology::new();
    t.add_node(10, RouterRole::Ler, "ler-a");
    t.add_node(11, RouterRole::Ler, "ler-b");
    t.add_node(20, RouterRole::Lsr, "lsr-head");
    t.add_node(21, RouterRole::Lsr, "lsr-mid");
    t.add_node(22, RouterRole::Lsr, "lsr-tail");
    for (a, b) in [(10, 20), (20, 21), (21, 22), (22, 11)] {
        t.add_link(mpls_control::LinkSpec {
            a,
            b,
            cost: 1,
            bandwidth_bps: 1_000_000_000,
            delay_ns: 100_000,
        });
    }
    t
}

fn packet_to(dst: &str) -> MplsPacket {
    MplsPacket::ipv4(
        EthernetFrame {
            dst: MacAddr::from_node(10, 0),
            src: MacAddr::from_node(99, 0),
            ethertype: EtherType::Ipv4,
        },
        Ipv4Header::new(
            parse_addr("10.0.0.1").unwrap(),
            parse_addr(dst).unwrap(),
            Ipv4Header::PROTO_UDP,
            64,
            32,
        ),
        bytes::Bytes::from_static(&[0x55; 32]),
    )
}

struct TunnelWorld {
    cp: ControlPlane,
    routers: Vec<(u32, EmbeddedRouter)>,
}

fn setup() -> TunnelWorld {
    let mut cp = ControlPlane::new(line_topology());
    let tunnel = cp
        .establish_tunnel(20, 22, 0, Some(vec![20, 21, 22]))
        .unwrap();
    // Two FECs share the tunnel.
    cp.establish_lsp_via_tunnel(
        LspRequest::best_effort(10, 11, Prefix::new(parse_addr("192.168.1.0").unwrap(), 24)),
        tunnel,
    )
    .unwrap();
    cp.establish_lsp_via_tunnel(
        LspRequest::best_effort(10, 11, Prefix::new(parse_addr("192.168.2.0").unwrap(), 24)),
        tunnel,
    )
    .unwrap();

    let routers = [10u32, 20, 21, 22, 11]
        .iter()
        .map(|&id| {
            let role = cp.topology().node(id).unwrap().role;
            (
                id,
                EmbeddedRouter::new(id, role, &cp.config_for(id), ClockSpec::STRATIX_50MHZ),
            )
        })
        .collect();
    TunnelWorld { cp, routers }
}

impl TunnelWorld {
    fn router(&mut self, id: u32) -> &mut EmbeddedRouter {
        &mut self.routers.iter_mut().find(|(i, _)| *i == id).unwrap().1
    }
}

#[test]
fn stack_depth_profile_through_the_tunnel() {
    let mut w = setup();

    // LER10: push inner label (depth 1).
    let Action::Forward { next, packet: p1 } = w.router(10).handle(packet_to("192.168.1.7")).action
    else {
        panic!("ingress must forward")
    };
    assert_eq!(next, 20);
    assert_eq!(p1.stack.depth(), 1, "inner label only");
    let inner_label = p1.stack.top().unwrap().label;

    // LSR20 (tunnel head): push the tunnel label (depth 2 - the merge).
    let Action::Forward { next, packet: p2 } = w.router(20).handle(p1).action else {
        panic!("head must forward")
    };
    assert_eq!(next, 21);
    assert_eq!(p2.stack.depth(), 2, "tunnel label above the inner label");
    assert_eq!(
        p2.stack.entries()[1].label,
        inner_label,
        "inner label preserved beneath the tunnel (the hardware push keeps it)"
    );

    // LSR21 (interior, penultimate of the tunnel): PHP pop (the unmerge).
    let Action::Forward { next, packet: p3 } = w.router(21).handle(p2).action else {
        panic!("interior must forward")
    };
    assert_eq!(next, 22);
    assert_eq!(
        p3.stack.depth(),
        1,
        "tunnel label popped at the penultimate"
    );
    assert_eq!(p3.stack.top().unwrap().label, inner_label);

    // LSR22 (tail): ordinary transit swap of the inner label.
    let Action::Forward { next, packet: p4 } = w.router(22).handle(p3).action else {
        panic!("tail must forward")
    };
    assert_eq!(next, 11);
    assert_eq!(p4.stack.depth(), 1);

    // LER11: pop and deliver.
    let Action::Deliver(p5) = w.router(11).handle(p4).action else {
        panic!("egress must deliver")
    };
    assert!(p5.stack.is_empty());
    assert_eq!(p5.eth.ethertype, EtherType::Ipv4);
}

#[test]
fn two_fecs_aggregate_into_one_tunnel_label() {
    let mut w = setup();
    let tunnel_entry = w.cp.tunnel(1).unwrap().entry_label;

    let mut tunnel_labels = Vec::new();
    for dst in ["192.168.1.7", "192.168.2.7"] {
        let Action::Forward { packet: p1, .. } = w.router(10).handle(packet_to(dst)).action else {
            panic!()
        };
        let Action::Forward { packet: p2, .. } = w.router(20).handle(p1).action else {
            panic!()
        };
        assert_eq!(p2.stack.depth(), 2);
        tunnel_labels.push(p2.stack.top().unwrap().label);
    }
    // Aggregation: both FECs travel under the same outer label.
    assert_eq!(tunnel_labels[0], tunnel_labels[1]);
    assert_eq!(tunnel_labels[0], tunnel_entry);
}

#[test]
fn deaggregated_flows_reach_distinct_deliveries() {
    let mut w = setup();
    for dst in ["192.168.1.7", "192.168.2.7"] {
        let mut packet = packet_to(dst);
        let mut at = 10u32;
        let delivered = loop {
            match w.router(at).handle(packet).action {
                Action::Forward { next, packet: p } => {
                    at = next;
                    packet = p;
                }
                Action::Deliver(p) => break p,
                Action::Discard(c) => panic!("discarded at {at}: {c}"),
            }
        };
        assert_eq!(delivered.ip.dst, parse_addr(dst).unwrap());
        assert!(delivered.stack.is_empty());
    }
    // The tail deaggregated: it swapped each inner label separately.
    assert_eq!(w.router(22).stats().forwarded, 2);
    assert_eq!(w.router(11).stats().delivered, 2);
}

#[test]
fn interior_lsr_uses_level3_bindings() {
    let w = setup();
    let cfg = w.cp.config_for(21);
    assert!(!cfg.bindings.is_empty());
    assert!(
        cfg.bindings.iter().all(|b| b.level == 3),
        "depth-2 arrivals consult level 3: {:?}",
        cfg.bindings
    );
}

#[test]
fn tunnel_traffic_survives_in_simulation() {
    use mpls_net::traffic::{FlowSpec, TrafficPattern};
    use mpls_net::{QueueDiscipline, RouterKind, Simulation};

    let w = setup();
    let mut sim = Simulation::build(
        &w.cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 64 },
        5,
    );
    for (i, dst) in ["192.168.1.7", "192.168.2.7"].iter().enumerate() {
        sim.add_flow(FlowSpec {
            name: format!("f{i}"),
            ingress: 10,
            src_addr: parse_addr("10.0.0.1").unwrap(),
            dst_addr: parse_addr(dst).unwrap(),
            payload_bytes: 256,
            precedence: 0,
            pattern: TrafficPattern::Cbr {
                interval_ns: 500_000,
            },
            start_ns: 0,
            stop_ns: 10_000_000,
            police: None,
        });
    }
    let report = sim.run(1_000_000_000);
    for name in ["f0", "f1"] {
        let s = report.flow(name).unwrap();
        assert_eq!(s.sent, 20);
        assert_eq!(s.delivered, 20, "{name} lost packets in the tunnel");
    }
}
