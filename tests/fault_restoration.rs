//! Acceptance tests for the runtime fault-injection subsystem: a mid-run
//! outage is detected after the configured delay, restoration/protection
//! brings traffic back, and every lost packet is attributed to the fault.

use mpls_control::{ControlPlane, LspRequest, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{
    FaultPlan, QueueDiscipline, RecoveryMode, RestorationPolicy, RouterKind, SimReport, Simulation,
};
use mpls_packet::ipv4::parse_addr;

const RUN_NS: u64 = 100_000_000; // 100 ms
const DOWN_NS: u64 = 30_000_000;
const UP_NS: u64 = 70_000_000;
const DETECTION_NS: u64 = 1_000_000;
const RESIGNAL_NS: u64 = 2_000_000;

fn probe() -> FlowSpec {
    FlowSpec {
        name: "probe".into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.1").unwrap(),
        dst_addr: parse_addr("192.168.1.5").unwrap(),
        payload_bytes: 256,
        precedence: 0,
        pattern: TrafficPattern::Cbr {
            interval_ns: 200_000, // 5k pkt/s
        },
        start_ns: 0,
        stop_ns: RUN_NS,
        police: None,
    }
}

fn run(mode: RecoveryMode) -> SimReport {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    let lsp = cp
        .establish_lsp(LspRequest::best_effort(
            0,
            1,
            Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
        ))
        .unwrap();
    if mode == RecoveryMode::Protection {
        cp.protect_lsp(lsp).unwrap();
    }
    let core = cp.topology().link_between(2, 3).unwrap();

    let mut sim = Simulation::build(
        &cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 64 },
        99,
    );
    let mut plan = FaultPlan::new(RestorationPolicy {
        detection_delay_ns: DETECTION_NS,
        resignal_delay_ns: RESIGNAL_NS,
        mode,
        ..RestorationPolicy::default()
    });
    plan.outage(core, DOWN_NS, UP_NS);
    sim.set_fault_plan(plan);
    sim.add_flow(probe());
    sim.run(RUN_NS + 50_000_000)
}

/// The window where loss is possible: outage start until restoration,
/// stretched by the northern path's ~1.5 ms pipeline depth (packets
/// already behind the cut at restoration time still die at the dead
/// link).
fn max_loss(restored_ns: u64) -> u64 {
    let pipeline_ns = 1_500_000;
    (restored_ns + pipeline_ns - DOWN_NS) / 200_000 + 1
}

#[test]
fn midrun_outage_restores_with_bounded_timed_loss() {
    let report = run(RecoveryMode::Restoration);
    let s = report.flow("probe").unwrap();

    assert_eq!(report.faults.len(), 1);
    let rec = &report.faults[0];
    assert_eq!(rec.down_ns, DOWN_NS);
    assert_eq!(rec.detected_ns, Some(DOWN_NS + DETECTION_NS));
    assert_eq!(rec.link_up_ns, Some(UP_NS));
    // Restoration = detection + one successful re-signal round.
    assert_eq!(rec.restored_ns, Some(DOWN_NS + DETECTION_NS + RESIGNAL_NS));
    let ttr = rec.time_to_restore_ns().unwrap();
    assert!(ttr > 0, "restoration takes nonzero time");
    assert_eq!(ttr, DETECTION_NS + RESIGNAL_NS);

    // Every loss is link-attributed, and confined to the outage window:
    // nothing sent after restoration (+ pipeline drain) is lost.
    assert!(s.link_dropped > 0);
    assert_eq!(s.sent, s.delivered + s.link_dropped, "no stray drop causes");
    assert_eq!(s.link_dropped, rec.packets_lost);
    assert!(
        rec.packets_lost <= max_loss(rec.restored_ns.unwrap()),
        "loss must stop once the LSP is restored: {} lost",
        rec.packets_lost
    );
}

#[test]
fn protection_strictly_beats_restoration() {
    let p = run(RecoveryMode::Protection);
    let r = run(RecoveryMode::Restoration);
    let p_rec = &p.faults[0];
    let r_rec = &r.faults[0];

    // Protection switches at detection; restoration pays an extra
    // signaling round trip of loss on top.
    assert_eq!(p_rec.restored_ns, Some(DOWN_NS + DETECTION_NS));
    assert!(
        p_rec.packets_lost < r_rec.packets_lost,
        "protection ({}) must lose strictly less than restoration ({})",
        p_rec.packets_lost,
        r_rec.packets_lost
    );
    assert!(p_rec.time_to_restore_ns().unwrap() < r_rec.time_to_restore_ns().unwrap());

    // Both deliver everything sent outside the loss window.
    for report in [&p, &r] {
        let s = report.flow("probe").unwrap();
        assert_eq!(s.sent, s.delivered + s.link_dropped);
    }
}

#[test]
fn unrecoverable_fault_stays_unrestored() {
    // Sole path 0-1; no alternate route, so every re-signal fails and
    // the record never restores.
    let mut topo = Topology::new();
    topo.add_node(0, mpls_control::RouterRole::Ler, "a");
    topo.add_node(1, mpls_control::RouterRole::Ler, "b");
    topo.add_link(mpls_control::LinkSpec {
        a: 0,
        b: 1,
        cost: 1,
        bandwidth_bps: 1_000_000_000,
        delay_ns: 500_000,
    });
    let mut cp = ControlPlane::new(topo);
    cp.establish_lsp(LspRequest::best_effort(
        0,
        1,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .unwrap();
    let only = cp.topology().link_between(0, 1).unwrap();

    let mut sim = Simulation::build(
        &cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 64 },
        7,
    );
    let mut plan = FaultPlan::new(RestorationPolicy {
        detection_delay_ns: DETECTION_NS,
        resignal_delay_ns: RESIGNAL_NS,
        max_retries: 2,
        mode: RecoveryMode::Restoration,
        ..RestorationPolicy::default()
    });
    plan.link_down(DOWN_NS, only);
    sim.set_fault_plan(plan);
    sim.add_flow(probe());
    let report = sim.run(RUN_NS + 50_000_000);

    let rec = &report.faults[0];
    assert_eq!(rec.detected_ns, Some(DOWN_NS + DETECTION_NS));
    assert_eq!(rec.restored_ns, None, "no alternate path to restore onto");
    assert_eq!(rec.link_up_ns, None);
    let s = report.flow("probe").unwrap();
    assert_eq!(s.delivered + s.link_dropped, s.sent);
    assert_eq!(rec.packets_lost, s.link_dropped);
}
