//! Table 6 conformance suite: the paper's closed-form cycle costs
//! (`mpls_core::table6`) asserted against the live cycle-accurate
//! modifier, sweeping every information-base level and stack depth.
//!
//! The seed's `crates/core/tests/cycle_accuracy.rs` pins individual rows;
//! this root-level suite is the drift net an RTL refactor has to clear:
//! search costs on L1/L2/L3 for every hit position, update costs at each
//! stack depth (which selects the level consulted), both discard paths,
//! and the §4 worst-case replay reconciled against the performance
//! counters the telemetry layer scrapes.

use mpls_core::modifier::Outcome;
use mpls_core::{
    table6, ClockSpec, DiscardReason, IbOperation, LabelStackModifier, Level, RouterType,
    LEVEL_CAPACITY,
};
use mpls_packet::{label::LabelStackEntry, CosBits, Label};

fn entry(label: u32, ttl: u8) -> LabelStackEntry {
    LabelStackEntry::new(Label::new(label).unwrap(), CosBits::BEST_EFFORT, false, ttl)
}

fn lbl(v: u32) -> Label {
    Label::new(v).unwrap()
}

/// Fills `level` with `n` pairs keyed `base..base+n` (written in order, so
/// key `base + k - 1` sits at 1-based search position `k`).
fn fill(m: &mut LabelStackModifier, level: Level, base: u64, n: u64, op: IbOperation) {
    for i in 0..n {
        let r = m.write_pair(level, base + i, lbl(500 + i as u32), op);
        assert_eq!(r.outcome, Outcome::Done);
        assert_eq!(r.cycles, table6::WRITE_PAIR);
    }
}

/// Table 6 rows "push/pop from the user", "write label pair", and "reset"
/// cost the same three cycles on both router types.
#[test]
fn user_operations_cost_three_cycles_on_both_router_types() {
    for ty in [RouterType::Ler, RouterType::Lsr] {
        let mut m = LabelStackModifier::new(ty);
        assert_eq!(m.reset().cycles, table6::RESET, "{ty:?} reset");
        assert_eq!(m.user_push(entry(7, 64)).cycles, table6::USER_PUSH);
        let pop = m.user_pop();
        assert_eq!(pop.cycles, table6::USER_POP);
        assert!(matches!(pop.outcome, Outcome::Popped(e) if e.label.value() == 7));
        assert_eq!(
            m.write_pair(Level::L2, 1, lbl(500), IbOperation::Swap)
                .cycles,
            table6::WRITE_PAIR
        );
    }
}

/// `search(n) = 3n + 5` and the early-exit hit cost `3k + 5` hold on every
/// level — L1 is packet-identifier keyed (ingress LER), L2 and L3 are
/// label keyed — for every hit position, not just spot values.
#[test]
fn search_costs_conform_on_every_level() {
    // (level, router type that consults it, key base).
    let cases = [
        (Level::L1, RouterType::Ler, 600u64),
        (Level::L2, RouterType::Lsr, 1),
        (Level::L3, RouterType::Lsr, 1),
    ];
    let n = 12u64;
    for (level, ty, base) in cases {
        // Empty level: the comparator finds nothing after the 5-cycle
        // search overhead.
        let mut empty = LabelStackModifier::new(ty);
        let r = empty.lookup(level, base);
        assert_eq!(r.cycles, table6::search(0), "{level:?} empty miss");
        assert_eq!(r.outcome, Outcome::LookupMiss);

        let mut m = LabelStackModifier::new(ty);
        fill(&mut m, level, base, n, IbOperation::Swap);
        for k in 1..=n {
            let r = m.lookup(level, base + k - 1);
            assert_eq!(r.cycles, table6::search_hit_at(k), "{level:?} hit at {k}");
            assert_eq!(
                r.outcome,
                Outcome::LookupHit {
                    label: lbl(500 + k as u32 - 1),
                    op: IbOperation::Swap
                }
            );
        }
        let r = m.lookup(level, base + n); // one past the stored range
        assert_eq!(r.cycles, table6::search(n), "{level:?} miss over {n}");
        assert_eq!(r.outcome, Outcome::LookupMiss);
    }
}

/// An update consults the level selected by the current stack depth
/// (0 → L1, 1 → L2, deeper → L3); the swap cost is the same
/// `search + 6` wherever the search lands.
#[test]
fn swap_cost_conforms_at_every_stack_depth() {
    let (n, k) = (8u64, 5u64);
    for depth in 1..=3usize {
        let level = Level::for_stack_depth(depth);
        let mut m = LabelStackModifier::new(RouterType::Lsr);
        fill(&mut m, level, 1, n, IbOperation::Swap);
        // Push `depth` entries; the top one carries the key that sits at
        // search position k.
        for d in 0..depth {
            let label = if d == depth - 1 {
                k as u32
            } else {
                100 + d as u32
            };
            m.user_push(entry(label, 64));
        }
        let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
        assert_eq!(
            r.cycles,
            table6::search_hit_at(k) + table6::SWAP_FROM_IB,
            "swap at depth {depth} ({level:?})"
        );
        assert_eq!(
            r.outcome,
            Outcome::Updated {
                op: IbOperation::Swap
            }
        );
        assert_eq!(m.stack_depth(), depth, "swap preserves depth");
    }
}

/// The remaining update rows: pop (`search + 6`), push onto a non-empty
/// stack (`search + 7`, the extra PUSH OLD cycle), and the ingress LER's
/// push onto an empty stack (`search + 6`).
#[test]
fn pop_and_push_from_info_base_conform() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    fill(&mut m, Level::L2, 1, 4, IbOperation::Pop);
    m.user_push(entry(3, 64));
    let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(r.cycles, table6::search_hit_at(3) + table6::POP_FROM_IB);
    assert_eq!(
        r.outcome,
        Outcome::Updated {
            op: IbOperation::Pop
        }
    );
    assert_eq!(m.stack_depth(), 0);

    let mut m = LabelStackModifier::new(RouterType::Lsr);
    fill(&mut m, Level::L2, 1, 4, IbOperation::Push);
    m.user_push(entry(2, 64));
    let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(r.cycles, table6::search_hit_at(2) + table6::PUSH_FROM_IB);
    assert_eq!(m.stack_depth(), 2);

    // Ingress LER, empty stack: L1 keyed by the packet identifier.
    let mut m = LabelStackModifier::new(RouterType::Ler);
    fill(&mut m, Level::L1, 600, 4, IbOperation::Push);
    let r = m.update_stack(601, CosBits::EXPEDITED, 64);
    assert_eq!(
        r.cycles,
        table6::search_hit_at(2) + table6::PUSH_FROM_IB_EMPTY
    );
    assert_eq!(
        r.outcome,
        Outcome::Updated {
            op: IbOperation::Push
        }
    );
    assert_eq!(m.stack_depth(), 1);
}

/// Both discard paths: a miss costs `search(n) + 2` for any table size,
/// and an expired TTL is caught in VERIFY INFO at `search_hit_at(k) + 5`
/// wherever the entry sits.
#[test]
fn discard_costs_conform() {
    for n in [0u64, 1, 8, 32] {
        let mut m = LabelStackModifier::new(RouterType::Lsr);
        fill(&mut m, Level::L2, 1, n, IbOperation::Swap);
        m.user_push(entry(999, 64)); // stored nowhere
        let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
        assert_eq!(r.cycles, table6::update_miss(n), "miss over n={n}");
        assert_eq!(r.outcome, Outcome::Discarded(DiscardReason::NoEntryFound));
    }
    for k in [1u64, 4, 8] {
        let mut m = LabelStackModifier::new(RouterType::Lsr);
        fill(&mut m, Level::L2, 1, 8, IbOperation::Swap);
        m.user_push(entry(k as u32, 1)); // TTL 1 decrements to zero
        let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
        assert_eq!(r.cycles, table6::update_verify_discard(k), "ttl at k={k}");
        assert_eq!(r.outcome, Outcome::Discarded(DiscardReason::TtlExpired));
    }
}

/// The §4 composite worst case, replayed live with performance counters
/// attached: reset, three user pushes, a completely filled level, and a
/// swap whose search scans all 1024 pairs — 6167 cycles, ~123.34 µs at
/// the paper's 50 MHz Stratix clock. The counter block (what telemetry
/// scrapes) must reconcile with both the closed form and the modifier's
/// own cycle counter.
#[test]
fn worst_case_replay_reconciles_closed_form_and_perf_counters() {
    let cap = LEVEL_CAPACITY as u64;
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.enable_perf();

    let mut total = m.reset().cycles;
    for l in [1u32, 2, cap as u32] {
        total += m.user_push(entry(l, 64)).cycles;
    }
    fill(&mut m, Level::L3, 1, cap, IbOperation::Swap);
    total += cap * table6::WRITE_PAIR;
    let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(
        r.outcome,
        Outcome::Updated {
            op: IbOperation::Swap
        }
    );
    total += r.cycles;

    assert_eq!(total, table6::worst_case_scenario());
    assert_eq!(total, 6167);
    assert_eq!(
        m.total_cycles(),
        total,
        "per-op cycles must partition the run"
    );

    let us = ClockSpec::STRATIX_50MHZ.cycles_to_us(total);
    assert!((us - 123.34).abs() < 0.01, "got {us} µs");

    let perf = m.perf().expect("perf counters attached");
    assert_eq!(perf.total_cycles(), total, "one perf tick per clock");
    assert_eq!(perf.search_hits, 1);
    assert_eq!(perf.search_misses, 0);
    assert_eq!(perf.search_depth.max(), Some(cap), "full-level scan");
}
