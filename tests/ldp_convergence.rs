//! LDP convergence against the centralized fixed point.
//!
//! The distributed control plane knows nothing the wire didn't tell it,
//! yet on a fault-free network it must end up with the same forwarding
//! fixed point the omniscient solver computes before t=0: for every
//! (ingress, FEC) pair, tracing a packet through the converged LDP
//! tables reaches the same egress at the same total link cost as
//! tracing it through the centralized tables. Labels are *expected* to
//! differ (each plane allocates from its own space) — the comparison is
//! semantic, not syntactic.
//!
//! A second group exercises the failure path: cutting a link mid-run
//! must produce a finite detection delay (session hold-timer expiry), a
//! finite reconvergence (withdraw wave, then reroute), restored
//! delivery, and loss accounting that still conserves every packet.
//! Finally, the whole protocol must be shard-invariant: control PDUs
//! are ordinary coordinator events, so the serialized report is
//! byte-identical at any shard count.

use mpls_control::{
    ControlPlane, Hop, LinkSpec, LspRequest, NodeConfig, NodeId, RouterRole, Topology,
};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_dataplane::LabelOp;
use mpls_ldp::LdpConfig;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{FaultPlan, QueueDiscipline, RouterKind, SimReport, Simulation, TelemetryConfig};
use mpls_packet::ipv4::parse_addr;
use mpls_packet::Label;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A `rows x cols` grid with LERs in the opposite corners, a prefix
/// attached behind each LER, one LSP each way, and link costs varied by
/// `cost_salt` so shortest paths are not all trivially equal.
fn grid_plane(rows: u32, cols: u32, cost_salt: u64) -> ControlPlane {
    let last = rows * cols - 1;
    let mut topo = Topology::new();
    for id in 0..=last {
        let role = if id == 0 || id == last {
            RouterRole::Ler
        } else {
            RouterRole::Lsr
        };
        topo.add_node(id, role, format!("n{id}"));
    }
    let mut add = |a: u32, b: u32| {
        topo.add_link(LinkSpec {
            a,
            b,
            cost: 1 + ((a as u64 * 13 + b as u64 * 5 + cost_salt) % 3) as u32,
            bandwidth_bps: 200_000_000,
            delay_ns: 20_000,
        });
    };
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                add(id, id + 1);
            }
            if r + 1 < rows {
                add(id, id + cols);
            }
        }
    }
    let mut cp = ControlPlane::new(topo);
    cp.attach_prefix(last, Prefix::new(parse_addr("192.168.1.0").unwrap(), 24));
    cp.attach_prefix(0, Prefix::new(parse_addr("10.1.0.0").unwrap(), 16));
    cp.establish_lsp(LspRequest::best_effort(
        0,
        last,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .expect("forward LSP");
    cp.establish_lsp(LspRequest::best_effort(
        last,
        0,
        Prefix::new(parse_addr("10.1.0.0").unwrap(), 16),
    ))
    .expect("reverse LSP");
    cp
}

fn build_ldp(cp: &ControlPlane, seed: u64) -> Simulation {
    let mut sim = Simulation::build(
        cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 32 },
        seed,
    );
    sim.enable_ldp(LdpConfig::default());
    sim
}

/// Traces an unlabeled packet for `dst` from `ingress` through per-node
/// forwarding tables: FEC classification pushes, level-2 bindings swap
/// or pop, the next-hop table steers. Returns the delivering node and
/// the total link cost of the walk, or `None` when the packet would be
/// dropped. Panics on a walk longer than the node count (a loop).
fn trace(
    configs: &BTreeMap<NodeId, NodeConfig>,
    topo: &Topology,
    ingress: NodeId,
    dst: u32,
) -> Option<(NodeId, u64)> {
    let link_cost = |a: NodeId, b: NodeId| -> u64 {
        let id = topo.link_between(a, b).expect("adjacent nodes");
        topo.links()[id as usize].cost as u64
    };
    let cfg = configs.get(&ingress)?;
    let fec = cfg
        .fecs
        .iter()
        .filter(|f| f.prefix.contains(dst))
        .max_by_key(|f| f.prefix.len)?;
    let mut node = ingress;
    let mut label: Option<Label> = Some(fec.push_label);
    let mut hop = cfg.next_hop_for(label)?;
    let mut cost = 0u64;
    for _ in 0..configs.len() {
        match hop {
            Hop::Local => return Some((node, cost)),
            Hop::Node(next) => {
                cost += link_cost(node, next);
                node = next;
                let cfg = configs.get(&node)?;
                match label {
                    Some(l) => {
                        let b = cfg
                            .bindings
                            .iter()
                            .find(|b| b.level == 2 && b.key == l.value() as u64)?;
                        match b.op {
                            LabelOp::Swap => {
                                label = Some(b.new_label);
                                hop = cfg.next_hop_for(label)?;
                            }
                            LabelOp::Pop => {
                                label = None;
                                hop = cfg.ip_route_for(dst)?;
                            }
                            _ => panic!("unexpected op {:?} at node {node}", b.op),
                        }
                    }
                    None => hop = cfg.ip_route_for(dst)?,
                }
            }
        }
    }
    panic!("forwarding loop tracing {dst:#x} from {ingress}");
}

/// The (ingress, egress, probe address) pairs of the two signaled LSPs.
fn probes(cp: &ControlPlane) -> Vec<(NodeId, NodeId, u32)> {
    let last = cp.topology().nodes().len() as u32 - 1;
    vec![
        (0, last, parse_addr("192.168.1.5").unwrap()),
        (last, 0, parse_addr("10.1.0.5").unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fault-free convergence: on random grids with random link costs,
    /// the LDP tables route every FEC to the same egress at the same
    /// total cost as the centralized solver.
    #[test]
    fn random_grids_converge_to_the_centralized_fixed_point(
        rows in 2u32..4,
        cols in 2u32..5,
        cost_salt in 0u64..1000,
        seed in 0u64..10_000,
    ) {
        let cp = grid_plane(rows, cols, cost_salt);
        let report = build_ldp(&cp, seed).run(30_000_000);
        prop_assert_eq!(report.control.mode, "ldp");
        prop_assert!(report.control.convergence_ns.is_some(), "never settled");
        prop_assert_eq!(report.control.session_downs, 0);
        prop_assert_eq!(report.control.pdus_lost, 0);

        let ldp_fibs = report.fibs.as_ref().expect("ldp run exposes FIBs");
        let central: BTreeMap<NodeId, NodeConfig> = cp
            .topology()
            .nodes()
            .iter()
            .map(|n| (n.id, cp.config_for(n.id)))
            .collect();
        for (ingress, egress, dst) in probes(&cp) {
            let (ldp_end, ldp_cost) = trace(ldp_fibs, cp.topology(), ingress, dst)
                .expect("ldp tables route the probe");
            let (c_end, c_cost) = trace(&central, cp.topology(), ingress, dst)
                .expect("centralized tables route the probe");
            prop_assert_eq!(ldp_end, egress, "ldp delivered to the wrong node");
            prop_assert_eq!(c_end, egress);
            prop_assert_eq!(
                ldp_cost, c_cost,
                "path cost diverged for {}->{}", ingress, egress
            );
        }
    }
}

#[test]
fn link_fault_detects_reconverges_and_conserves_losses() {
    let cp = grid_plane(3, 3, 0);
    let mut sim = build_ldp(&cp, 7);
    // Cut the ingress corner's row link for good: the protocol must
    // detect by hold expiry and reroute down the column.
    let cut = cp.topology().link_between(0, 1).unwrap();
    let mut plan = FaultPlan::default();
    plan.link_down(20_000_000, cut);
    sim.set_fault_plan(plan);
    let flow = FlowSpec {
        name: "fwd".into(),
        ingress: 0,
        src_addr: parse_addr("10.1.0.5").unwrap(),
        dst_addr: parse_addr("192.168.1.5").unwrap(),
        payload_bytes: 400,
        precedence: 0,
        pattern: TrafficPattern::Cbr {
            interval_ns: 100_000,
        },
        start_ns: 10_000_000,
        stop_ns: 60_000_000,
        police: None,
    };
    sim.add_flow(flow);
    let report = sim.run(90_000_000);

    assert_eq!(report.faults.len(), 1);
    let rec = &report.faults[0];
    let hold = LdpConfig::default().hold_ns;
    let det = rec.detected_ns.expect("session expiry detected the cut");
    assert!(det > rec.down_ns, "detection cannot precede the failure");
    assert!(
        det <= rec.down_ns + 2 * hold,
        "detection took {} ns, expected within two hold times",
        det - rec.down_ns
    );
    let restored = rec.restored_ns.expect("withdraw wave reconverged");
    assert!(restored >= det);
    assert!(
        restored < 40_000_000,
        "reconvergence took {} ns",
        restored - rec.down_ns
    );

    // Service actually resumed: packets emitted after restoration ride
    // the new path, so losses are bounded by the outage window.
    let s = report.flow("fwd").unwrap();
    assert!(s.delivered > 0);
    assert!(s.link_dropped > 0, "stale tables blackholed into the cut");
    let outage_packets = (restored - rec.down_ns) / 100_000 + 2;
    assert!(
        (s.link_dropped + s.router_dropped) <= outage_packets,
        "losses ({} + {}) exceed the outage window ({outage_packets} packets)",
        s.link_dropped,
        s.router_dropped,
    );

    // Conservation: every packet is delivered or attributed to a cause,
    // per flow and in the per-cause totals.
    assert_eq!(
        s.sent,
        s.delivered + s.link_dropped + s.router_dropped + s.queue_dropped + s.loss_dropped
    );
    assert_eq!(report.link_drops, s.link_dropped);
    assert_eq!(rec.packets_lost, s.link_dropped);
}

/// A 2x2 grid engineered so every hello lands *exactly* on the
/// receiver's next tick: 1 Tbps links make each PDU serialize in 1 ns,
/// and the propagation delay is `hello_interval - 1`, so a hello sent
/// at tick `T` arrives at `T + 1 + (h - 1) = T + h` — the very instant
/// the next `LdpTick` fires.
fn collision_plane() -> ControlPlane {
    let mut topo = Topology::new();
    for id in 0..4u32 {
        let role = if id == 0 || id == 3 {
            RouterRole::Ler
        } else {
            RouterRole::Lsr
        };
        topo.add_node(id, role, format!("n{id}"));
    }
    for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
        topo.add_link(LinkSpec {
            a,
            b,
            cost: 1,
            bandwidth_bps: 1_000_000_000_000,
            delay_ns: 999_999,
        });
    }
    let mut cp = ControlPlane::new(topo);
    cp.attach_prefix(3, Prefix::new(parse_addr("192.168.1.0").unwrap(), 24));
    cp.establish_lsp(LspRequest::best_effort(
        0,
        3,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .expect("LSP");
    cp
}

/// Equal-timestamp tie-break, end to end: with the collision topology
/// above and a hold time *shorter* than the tick-to-tick silence, every
/// hold check races an in-flight hello carrying the refresh. The event
/// queue ranks global deliveries before timers ("the wire beats the
/// clock"), so sessions must never flap — and the winner must not
/// depend on the shard count.
#[test]
fn keepalive_at_exact_hold_expiry_keeps_the_session_on_any_shard_count() {
    let cp = collision_plane();
    let run = |shards: usize| -> String {
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 32 },
            11,
        );
        // Silence observed by a tick that beats the colliding hello
        // would be `hello_interval - 1` ns; a hold of one less makes
        // that a session death. Only delivery-before-timer survives.
        sim.enable_ldp(LdpConfig {
            hello_interval_ns: 1_000_000,
            hold_ns: 999_998,
            ..LdpConfig::default()
        });
        sim.set_shards(shards);
        sim.add_flow(FlowSpec {
            name: "fwd".into(),
            ingress: 0,
            src_addr: parse_addr("10.1.0.5").unwrap(),
            dst_addr: parse_addr("192.168.1.5").unwrap(),
            payload_bytes: 200,
            precedence: 0,
            pattern: TrafficPattern::Cbr {
                interval_ns: 500_000,
            },
            start_ns: 10_000_000,
            stop_ns: 15_000_000,
            police: None,
        });
        let report: SimReport = sim.run(25_000_000);
        assert_eq!(report.control.mode, "ldp");
        assert!(report.control.sessions_established > 0, "bring-up failed");
        assert_eq!(
            report.control.session_downs, 0,
            "a hold timer beat a same-instant keepalive at {shards} shard(s)"
        );
        assert!(report.control.convergence_ns.is_some());
        let s = report.flow("fwd").unwrap();
        assert!(s.delivered > 0, "converged tables must carry traffic");
        serde_json::to_string(&report).expect("report serializes")
    };
    let baseline = run(1);
    for shards in [2, 4] {
        assert_eq!(
            baseline,
            run(shards),
            "tie-break outcome diverged at {shards} shards"
        );
    }
}

#[test]
fn ldp_runs_are_byte_identical_across_shard_counts() {
    let cp = grid_plane(3, 4, 3);
    let run = |shards: usize| -> (usize, String) {
        let mut sim = build_ldp(&cp, 42);
        sim.set_shards(shards);
        let cut = cp.topology().link_between(0, 1).unwrap();
        let mut plan = FaultPlan::default();
        plan.outage(cut, 20_000_000, 40_000_000);
        sim.set_fault_plan(plan);
        sim.add_flow(FlowSpec {
            name: "fwd".into(),
            ingress: 0,
            src_addr: parse_addr("10.1.0.5").unwrap(),
            dst_addr: parse_addr("192.168.1.5").unwrap(),
            payload_bytes: 400,
            precedence: 0,
            pattern: TrafficPattern::Poisson {
                mean_interval_ns: 150_000,
            },
            start_ns: 10_000_000,
            stop_ns: 50_000_000,
            police: None,
        });
        let sim = sim.with_telemetry(TelemetryConfig {
            sample_interval_ns: 250_000,
            ..TelemetryConfig::default()
        });
        let report: SimReport = sim.run(70_000_000);
        (
            report.engine.shards,
            serde_json::to_string(&report).expect("report serializes"),
        )
    };
    let (n1, baseline) = run(1);
    assert_eq!(n1, 1);
    for shards in [2, 4] {
        let (n, json) = run(shards);
        assert!(n > 1, "grid supports {shards} shards");
        assert_eq!(baseline, json, "{shards}-shard ldp run diverged");
    }
}
