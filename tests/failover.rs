//! Link failure, blackholing, and restoration at the system level.

use mpls_control::{ControlPlane, LspRequest, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{QueueDiscipline, RouterKind, SimReport, Simulation};
use mpls_packet::ipv4::parse_addr;

fn traffic() -> FlowSpec {
    FlowSpec {
        name: "app".into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.1").unwrap(),
        dst_addr: parse_addr("192.168.1.5").unwrap(),
        payload_bytes: 256,
        precedence: 0,
        pattern: TrafficPattern::Cbr {
            interval_ns: 1_000_000,
        },
        start_ns: 0,
        stop_ns: 20_000_000,
        police: None,
    }
}

fn run(cp: &ControlPlane) -> SimReport {
    let mut sim = Simulation::build(
        cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 64 },
        3,
    );
    sim.add_flow(traffic());
    sim.run(1_000_000_000)
}

#[test]
fn failure_blackholes_then_reroute_restores() {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    let id = cp
        .establish_lsp(LspRequest::best_effort(
            0,
            1,
            Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
        ))
        .unwrap();

    // Healthy: lossless over the northern path.
    let before = run(&cp);
    let s = before.flow("app").unwrap();
    assert_eq!(s.delivered, s.sent);
    let fast_delay = s.mean_delay_ns();

    // Failure: the stale forwarding state steers into the dead link,
    // which the simulation builds in the down state and counts against.
    let link = cp.topology().link_between(2, 3).unwrap();
    assert_eq!(cp.fail_link(link), vec![id]);
    let during = run(&cp);
    let s = during.flow("app").unwrap();
    assert_eq!(s.delivered, 0, "stale path must blackhole");
    assert_eq!(s.link_dropped, s.sent);

    // Restoration: reroute onto the southern path; lossless but slower.
    let new_id = cp.reroute_lsp(id).unwrap();
    assert_eq!(cp.lsp(new_id).unwrap().path, vec![0, 4, 5, 1]);
    let after = run(&cp);
    let s = after.flow("app").unwrap();
    assert_eq!(s.delivered, s.sent);
    assert!(
        s.mean_delay_ns() > 2.0 * fast_delay,
        "southern path is much slower ({} vs {})",
        s.mean_delay_ns(),
        fast_delay
    );

    // Repair: the link returns; a fresh LSP prefers the north again.
    cp.restore_link(link);
    let repaired = cp.reroute_lsp(new_id).unwrap();
    assert_eq!(cp.lsp(repaired).unwrap().path, vec![0, 2, 3, 1]);
    let healed = run(&cp);
    let s = healed.flow("app").unwrap();
    assert_eq!(s.delivered, s.sent);
    assert!((s.mean_delay_ns() - fast_delay).abs() < fast_delay * 0.1);
}
