//! Conservation and robustness properties of the network simulator:
//! every emitted packet is accounted for exactly once (delivered,
//! router-dropped or queue-dropped) once the network drains, across
//! random traffic mixes, queue disciplines and router kinds.

use mpls_control::{ControlPlane, LspRequest, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{QueueDiscipline, RouterKind, Simulation};
use mpls_packet::ipv4::parse_addr;
use mpls_router::SwTimingModel;
use proptest::prelude::*;

fn plane() -> ControlPlane {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    cp.establish_lsp(LspRequest::best_effort(
        0,
        1,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .unwrap();
    cp.establish_lsp(LspRequest::best_effort(
        1,
        0,
        Prefix::new(parse_addr("10.1.0.0").unwrap(), 16),
    ))
    .unwrap();
    cp
}

fn flow(
    name: String,
    ingress: u32,
    dst: &str,
    interval_ns: u64,
    payload: usize,
    prec: u8,
    stop_ns: u64,
) -> FlowSpec {
    FlowSpec {
        name,
        ingress,
        src_addr: parse_addr("10.9.9.9").unwrap(),
        dst_addr: parse_addr(dst).unwrap(),
        payload_bytes: payload,
        precedence: prec,
        pattern: TrafficPattern::Cbr { interval_ns },
        start_ns: 0,
        stop_ns,
        police: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// sent == delivered + router_dropped + queue_dropped after drain.
    #[test]
    fn packet_conservation(
        seed in 0u64..1000,
        interval_a in 5_000u64..1_000_000,
        interval_b in 5_000u64..1_000_000,
        payload in 16usize..1400,
        fifo: bool,
        embedded: bool,
        cap in 1usize..32,
    ) {
        let cp = plane();
        let kind = if embedded {
            RouterKind::Embedded { clock: ClockSpec::STRATIX_50MHZ }
        } else {
            RouterKind::SoftwareHash { timing: SwTimingModel::default() }
        };
        let discipline = if fifo {
            QueueDiscipline::Fifo { capacity: cap }
        } else {
            QueueDiscipline::CosPriority { per_class: cap }
        };
        let mut sim = Simulation::build(&cp, kind, discipline, seed);
        let stop = 20_000_000; // 20 ms of traffic
        sim.add_flow(flow("east".into(), 0, "192.168.1.5", interval_a, payload, 5, stop));
        sim.add_flow(flow("west".into(), 1, "10.1.0.5", interval_b, payload, 0, stop));
        // a flow with no route: everything router-drops
        sim.add_flow(flow("void".into(), 0, "172.16.0.1", interval_a, payload, 0, stop));

        // Generous horizon so in-flight packets drain.
        let report = sim.run(10_000_000_000);
        for (spec, s) in &report.flows {
            prop_assert_eq!(
                s.sent,
                s.delivered + s.router_dropped + s.queue_dropped + s.policer_dropped,
                "flow {} leaks packets", spec.name
            );
            prop_assert!(s.sent > 0);
        }
        let void = report.flow("void").unwrap();
        prop_assert_eq!(void.delivered, 0);

        // Delay sanity: anything delivered took at least the propagation
        // of the shortest path (3 x 0.5 ms north or 3 x 2 ms south).
        let east = report.flow("east").unwrap();
        if east.delivered > 0 {
            prop_assert!(east.delay_min_ns >= 1_500_000);
        }
    }

    /// CoS priority never makes the high class worse than FIFO under the
    /// same seed and load.
    #[test]
    fn priority_never_hurts_the_priority_class(
        seed in 0u64..200,
    ) {
        let cp = plane();
        let run = |discipline| {
            let mut sim = Simulation::build(
                &cp,
                RouterKind::Embedded { clock: ClockSpec::STRATIX_50MHZ },
                discipline,
                seed,
            );
            // Saturating bulk plus sparse priority traffic.
            sim.add_flow(flow("prio".into(), 0, "192.168.1.10", 2_000_000, 146, 5, 50_000_000));
            sim.add_flow(flow("bulk".into(), 0, "192.168.1.20", 11_000, 1446, 0, 50_000_000));
            sim.run(10_000_000_000)
        };
        let fifo = run(QueueDiscipline::Fifo { capacity: 32 });
        let prio = run(QueueDiscipline::CosPriority { per_class: 32 });
        let f = fifo.flow("prio").unwrap();
        let p = prio.flow("prio").unwrap();
        prop_assert!(p.loss_rate() <= f.loss_rate() + 1e-9);
        if f.delivered > 0 && p.delivered > 0 {
            prop_assert!(p.mean_delay_ns() <= f.mean_delay_ns() + 1.0);
        }
    }
}

#[test]
fn zero_traffic_runs_clean() {
    let cp = plane();
    let sim = Simulation::build(
        &cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 8 },
        0,
    );
    let report = sim.run(1_000_000);
    assert!(report.flows.is_empty());
    assert_eq!(report.queue_drops, 0);
}
