//! Packet conservation under arbitrary fault schedules: however the
//! links flap and whatever the recovery mode, every emitted packet ends
//! up in exactly one of the six accounting buckets once the network
//! drains.

use mpls_control::{ControlPlane, LspRequest, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{
    FaultPlan, QueueDiscipline, RecoveryMode, RestorationPolicy, RouterKind, Simulation,
};
use mpls_packet::ipv4::parse_addr;
use proptest::prelude::*;

fn plane(protected: bool) -> ControlPlane {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    let lsp = cp
        .establish_lsp(LspRequest::best_effort(
            0,
            1,
            Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
        ))
        .unwrap();
    if protected {
        cp.protect_lsp(lsp).unwrap();
    }
    cp
}

fn probe(interval_ns: u64, stop_ns: u64) -> FlowSpec {
    FlowSpec {
        name: "probe".into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.1").unwrap(),
        dst_addr: parse_addr("192.168.1.5").unwrap(),
        payload_bytes: 256,
        precedence: 0,
        pattern: TrafficPattern::Cbr { interval_ns },
        start_ns: 0,
        stop_ns,
        police: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// sent == delivered + router + queue + policer + link + loss drops,
    /// for random outage windows, flap seeds, wire-loss rates and
    /// recovery modes.
    #[test]
    fn conservation_holds_under_arbitrary_faults(
        seed in 0u64..1000,
        interval_ns in 50_000u64..500_000,
        down_ms in 1u64..40,
        outage_ms in 1u64..40,
        which_link in 0usize..3,
        mode_pick in 0u8..3,
        loss_milli in 0u64..500,
        detection_us in 100u64..5_000,
        flap: bool,
    ) {
        let mode = match mode_pick {
            0 => RecoveryMode::None,
            1 => RecoveryMode::Restoration,
            _ => RecoveryMode::Protection,
        };
        let cp = plane(mode == RecoveryMode::Protection);
        let topo = cp.topology();
        // Fail one of the three northern links the LSP crosses.
        let link = [
            topo.link_between(0, 2).unwrap(),
            topo.link_between(2, 3).unwrap(),
            topo.link_between(3, 1).unwrap(),
        ][which_link];
        let south = topo.link_between(4, 5).unwrap();

        let mut plan = FaultPlan::new(RestorationPolicy {
            detection_delay_ns: detection_us * 1_000,
            resignal_delay_ns: 1_000_000,
            mode,
            ..RestorationPolicy::default()
        });
        let down_ns = down_ms * 1_000_000;
        plan.outage(link, down_ns, down_ns + outage_ms * 1_000_000);
        if flap {
            // A second, overlapping flap storm on the southern detour.
            plan.random_flaps(south, seed, 80_000_000, 10_000_000, 3_000_000);
        }
        if loss_milli > 0 {
            plan.random_loss(link, loss_milli as f64 / 1000.0);
        }

        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded { clock: ClockSpec::STRATIX_50MHZ },
            QueueDiscipline::Fifo { capacity: 32 },
            seed,
        );
        sim.set_fault_plan(plan);
        sim.add_flow(probe(interval_ns, 80_000_000));

        // Generous horizon so retries, hold-downs and drains all settle.
        let report = sim.run(10_000_000_000);
        let s = report.flow("probe").unwrap();
        prop_assert!(s.sent > 0);
        prop_assert_eq!(
            s.sent,
            s.delivered
                + s.router_dropped
                + s.queue_dropped
                + s.policer_dropped
                + s.link_dropped
                + s.loss_dropped,
            "conservation violated: {:?}", s.drop_causes
        );
        // The per-cause breakdown covers exactly the drops it claims to.
        prop_assert_eq!(
            s.drop_causes.total(),
            s.router_dropped + s.link_dropped + s.loss_dropped
        );
        // Fault records never claim more loss than the flow saw.
        let attributed: u64 = report.faults.iter().map(|f| f.packets_lost).sum();
        prop_assert!(attributed <= s.link_dropped);
    }
}
