//! Quickstart: drive the embedded label stack modifier directly.
//!
//! Programs the information base the way the software routing
//! functionality would, then runs packets through the hardware model and
//! shows the exact clock-cycle cost of every operation.
//!
//! Run: `cargo run --example quickstart`

use mpls_core::modifier::Outcome;
use mpls_core::{ClockSpec, IbOperation, LabelStackModifier, Level, RouterType};
use mpls_packet::{label::LabelStackEntry, CosBits, Label};

fn main() {
    let clock = ClockSpec::STRATIX_50MHZ;

    // --- An ingress LER ----------------------------------------------------
    println!("== ingress LER ==");
    let mut ler = LabelStackModifier::new(RouterType::Ler);

    // Routing functionality stores a level-1 pair: packets identified by
    // destination 192.168.1.5 (0xc0a80105) get label 500 pushed.
    let r = ler.write_pair(
        Level::L1,
        0xc0a80105,
        Label::new(500).unwrap(),
        IbOperation::Push,
    );
    println!(
        "write pair (packet-id 0xc0a80105 -> push 500): {} cycles",
        r.cycles
    );

    // A packet arrives from the layer-2 network: empty stack, packet
    // identifier = IPv4 destination, TTL/CoS from the control path.
    let r = ler.update_stack(0xc0a80105, CosBits::EXPEDITED, 64);
    println!(
        "update stack: {:?} in {} cycles ({:.2} µs at 50 MHz)",
        r.outcome,
        r.cycles,
        clock.cycles_to_us(r.cycles)
    );
    println!("stack after ingress: {}", ler.stack_snapshot());

    // --- A core LSR ---------------------------------------------------------
    println!("\n== core LSR ==");
    let mut lsr = LabelStackModifier::new(RouterType::Lsr);
    lsr.write_pair(Level::L2, 500, Label::new(600).unwrap(), IbOperation::Swap);

    // The LSR receives the labeled packet: the ingress packet processing
    // module loads the stack...
    let entry = LabelStackEntry::new(Label::new(500).unwrap(), CosBits::EXPEDITED, false, 64);
    let load = lsr.user_push(entry);
    // ...the modifier swaps...
    let update = lsr.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(
        update.outcome,
        Outcome::Updated {
            op: IbOperation::Swap
        }
    );
    // ...and the egress packet processing module drains it.
    let unload = lsr.user_pop();
    let Outcome::Popped(out) = unload.outcome else {
        unreachable!()
    };
    println!("swapped entry: {out}");
    let total = load.cycles + update.cycles + unload.cycles;
    println!(
        "per-packet cost: load {} + update {} + unload {} = {} cycles ({:.2} µs)",
        load.cycles,
        update.cycles,
        unload.cycles,
        total,
        clock.cycles_to_us(total)
    );

    // --- Discard paths -------------------------------------------------------
    println!("\n== discard paths ==");
    let mut lsr = LabelStackModifier::new(RouterType::Lsr);
    lsr.user_push(entry);
    let r = lsr.update_stack(0, CosBits::BEST_EFFORT, 0);
    println!("unknown label: {:?} after {} cycles", r.outcome, r.cycles);

    lsr.write_pair(Level::L2, 500, Label::new(600).unwrap(), IbOperation::Swap);
    lsr.user_push(LabelStackEntry::new(
        Label::new(500).unwrap(),
        CosBits::BEST_EFFORT,
        false,
        1, // expires on decrement
    ));
    let r = lsr.update_stack(0, CosBits::BEST_EFFORT, 0);
    println!("expired TTL:   {:?} after {} cycles", r.outcome, r.cycles);
    assert_eq!(lsr.stack_depth(), 0, "discard resets the label stack");
}
