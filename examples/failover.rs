//! Link failure and LSP restoration: the control plane reroutes a
//! traffic-engineered path around a failed core link, and traffic
//! resumes on the new path.
//!
//! Run: `cargo run --example failover`

use mpls_control::{ControlPlane, LspRequest, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{QueueDiscipline, RouterKind, Simulation};
use mpls_packet::ipv4::parse_addr;

fn traffic() -> FlowSpec {
    FlowSpec {
        name: "app".into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.1").unwrap(),
        dst_addr: parse_addr("192.168.1.5").unwrap(),
        payload_bytes: 512,
        precedence: 0,
        pattern: TrafficPattern::Cbr {
            interval_ns: 1_000_000,
        },
        start_ns: 0,
        stop_ns: 50_000_000,
        police: None,
    }
}

fn run_traffic(cp: &ControlPlane, label: &str) {
    let mut sim = Simulation::build(
        cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 64 },
        9,
    );
    sim.add_flow(traffic());
    let report = sim.run(1_000_000_000);
    let s = report.flow("app").unwrap();
    println!(
        "{label}: {}/{} delivered, mean delay {:.2} ms",
        s.delivered,
        s.sent,
        s.mean_delay_ns() / 1e6
    );
}

fn main() {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    let id = cp
        .establish_lsp(LspRequest::best_effort(
            0,
            1,
            Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
        ))
        .unwrap();
    println!(
        "LSP {id} established on the fast northern path: {:?}",
        cp.lsp(id).unwrap().path
    );
    run_traffic(&cp, "before failure ");

    // The core link LSR2-LSR3 fails.
    let link = cp.topology().link_between(2, 3).unwrap();
    let affected = cp.fail_link(link);
    println!("\nlink 2-3 failed; affected LSPs: {affected:?}");

    // Routers programmed with the broken path now blackhole the flow.
    run_traffic(&cp, "after failure  ");

    // The head end re-signals around the failure.
    let new_id = cp.reroute_lsp(id).expect("southern path available");
    println!(
        "\nrerouted as LSP {new_id} via the southern path: {:?}",
        cp.lsp(new_id).unwrap().path
    );
    run_traffic(&cp, "after reroute  ");

    println!("\nNote the delay increase after reroute: the southern links have");
    println!("2 ms propagation each versus 0.5 ms in the north — restoration");
    println!("trades latency for connectivity.");
}
