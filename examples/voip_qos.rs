//! VoIP under congestion — the paper's §1 motivation as a runnable demo.
//!
//! A VoIP trunk and a saturating bulk flow share an MPLS core. Three
//! configurations are simulated: plain FIFO, CoS priority queueing, and a
//! traffic-engineered explicit path for the VoIP LSP.
//!
//! Run: `cargo run --release --example voip_qos`

use mpls_control::{ControlPlane, LspRequest, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{QueueDiscipline, RouterKind, Simulation};
use mpls_packet::ipv4::parse_addr;
use mpls_packet::CosBits;

const RUN_NS: u64 = 100_000_000; // 100 ms

fn scenario(te: bool) -> ControlPlane {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    cp.establish_lsp(LspRequest::best_effort(
        0,
        1,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .unwrap();
    let mut voip =
        LspRequest::best_effort(0, 1, Prefix::new(parse_addr("192.168.1.10").unwrap(), 32));
    voip.cos = CosBits::EXPEDITED;
    if te {
        voip.explicit_route = Some(vec![0, 4, 5, 1]); // southern detour
    }
    cp.establish_lsp(voip).unwrap();
    cp
}

fn run(te: bool, discipline: QueueDiscipline) -> (f64, f64, f64) {
    let cp = scenario(te);
    let mut sim = Simulation::build(
        &cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        discipline,
        2026,
    );
    sim.add_flow(FlowSpec {
        name: "voip".into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.10").unwrap(),
        dst_addr: parse_addr("192.168.1.10").unwrap(),
        payload_bytes: 146,
        precedence: 5,
        pattern: TrafficPattern::Cbr {
            interval_ns: 2_000_000,
        },
        start_ns: 0,
        stop_ns: RUN_NS,
        police: None,
    });
    sim.add_flow(FlowSpec {
        name: "bulk".into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.20").unwrap(),
        dst_addr: parse_addr("192.168.1.20").unwrap(),
        payload_bytes: 1446,
        precedence: 0,
        pattern: TrafficPattern::Cbr {
            interval_ns: 11_000,
        },
        start_ns: 0,
        stop_ns: RUN_NS,
        police: None,
    });
    let report = sim.run(RUN_NS + 50_000_000);
    let v = report.flow("voip").unwrap();
    (
        v.mean_delay_ns() / 1000.0,
        v.mean_jitter_ns() / 1000.0,
        v.loss_rate() * 100.0,
    )
}

fn main() {
    println!("VoIP quality while a bulk flow saturates the fast core path");
    println!("(200-byte VoIP packets every 2 ms vs ~1.1 Gb/s of 1500-byte bulk)\n");
    println!(
        "{:<16} {:>12} {:>12} {:>9}",
        "configuration", "delay (µs)", "jitter (µs)", "loss (%)"
    );

    let (d, j, l) = run(false, QueueDiscipline::Fifo { capacity: 64 });
    println!("{:<16} {d:>12.1} {j:>12.2} {l:>9.1}", "fifo");

    let (d, j, l) = run(false, QueueDiscipline::CosPriority { per_class: 64 });
    println!("{:<16} {d:>12.1} {j:>12.2} {l:>9.1}", "cos-priority");

    let (d, j, l) = run(true, QueueDiscipline::Fifo { capacity: 64 });
    println!("{:<16} {d:>12.1} {j:>12.2} {l:>9.1}", "te-explicit-path");

    println!("\nCoS priority rescues VoIP on the shared path; the TE detour trades");
    println!("propagation delay for freedom from queueing entirely.");
}
