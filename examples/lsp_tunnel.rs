//! The Fig. 3 tunnel scenario: two LSPs aggregated through one tunnel,
//! traced hop by hop with the packet's label stack printed at each step.
//!
//! Run: `cargo run --example lsp_tunnel`

use mpls_control::{ControlPlane, LinkSpec, LspRequest, RouterRole, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_packet::ipv4::parse_addr;
use mpls_packet::{EtherType, EthernetFrame, Ipv4Header, MacAddr, MplsPacket};
use mpls_router::{Action, EmbeddedRouter, MplsForwarder};
use std::collections::HashMap;

fn main() {
    // LER10 - LSR20 - LSR21 - LSR22 - LER11, tunnel LSR20 -> LSR22.
    let mut topo = Topology::new();
    topo.add_node(10, RouterRole::Ler, "ler-a");
    topo.add_node(11, RouterRole::Ler, "ler-b");
    topo.add_node(20, RouterRole::Lsr, "lsr-head");
    topo.add_node(21, RouterRole::Lsr, "lsr-mid");
    topo.add_node(22, RouterRole::Lsr, "lsr-tail");
    for (a, b) in [(10, 20), (20, 21), (21, 22), (22, 11)] {
        topo.add_link(LinkSpec {
            a,
            b,
            cost: 1,
            bandwidth_bps: 1_000_000_000,
            delay_ns: 100_000,
        });
    }

    let mut cp = ControlPlane::new(topo);
    let tunnel = cp
        .establish_tunnel(20, 22, 0, Some(vec![20, 21, 22]))
        .expect("tunnel establishes");
    println!(
        "tunnel {tunnel}: head 20 -> tail 22, entry label {}",
        cp.tunnel(tunnel).unwrap().entry_label
    );

    for prefix in ["192.168.1.0", "192.168.2.0"] {
        let id = cp
            .establish_lsp_via_tunnel(
                LspRequest::best_effort(10, 11, Prefix::new(parse_addr(prefix).unwrap(), 24)),
                tunnel,
            )
            .expect("LSP establishes");
        let lsp = cp.lsp(id).unwrap();
        println!(
            "LSP {id} for {prefix}/24: logical path {:?}, labels {:?}",
            lsp.path,
            lsp.hop_labels.iter().map(|l| l.value()).collect::<Vec<_>>()
        );
    }

    // Instantiate cycle-accurate routers.
    let mut routers: HashMap<u32, EmbeddedRouter> = [10u32, 20, 21, 22, 11]
        .iter()
        .map(|&id| {
            let role = cp.topology().node(id).unwrap().role;
            (
                id,
                EmbeddedRouter::new(id, role, &cp.config_for(id), ClockSpec::STRATIX_50MHZ),
            )
        })
        .collect();

    for dst in ["192.168.1.7", "192.168.2.7"] {
        println!("\n=== packet to {dst} ===");
        let mut packet = MplsPacket::ipv4(
            EthernetFrame {
                dst: MacAddr::from_node(10, 0),
                src: MacAddr::from_node(99, 0),
                ethertype: EtherType::Ipv4,
            },
            Ipv4Header::new(
                parse_addr("10.0.0.1").unwrap(),
                parse_addr(dst).unwrap(),
                Ipv4Header::PROTO_UDP,
                64,
                32,
            ),
            bytes::Bytes::from_static(&[0u8; 32]),
        );
        let mut at = 10u32;
        loop {
            let name = cp.topology().node(at).unwrap().name.clone();
            let out = routers.get_mut(&at).unwrap().handle(packet);
            match out.action {
                Action::Forward { next, packet: p } => {
                    println!(
                        "{name:>9}: forward to {next}  stack={}  ({} ns in the data plane)",
                        p.stack, out.latency_ns
                    );
                    at = next;
                    packet = p;
                }
                Action::Deliver(p) => {
                    println!(
                        "{name:>9}: deliver to the layer-2 network  stack={} ",
                        p.stack
                    );
                    break;
                }
                Action::Discard(cause) => {
                    println!("{name:>9}: DISCARD ({cause})");
                    break;
                }
            }
        }
    }

    println!("\nBoth FECs merged into one tunnel label at the head and were");
    println!("deaggregated at the tail -- the Fig. 3 merge/unmerge in action.");
}
