//! Vendored shim for the `rayon` crate. Implements the one pattern the
//! workspace uses — `slice.par_iter().map(f).collect()` — on top of
//! `std::thread::scope`, chunking the input across the machine's cores.
//! Ordering of results matches the sequential iterator exactly.

/// Borrowing parallel iteration over a collection.
pub trait IntoParallelRefIterator<'data> {
    /// Borrowed item type.
    type Item: 'data;
    /// The iterator produced.
    type Iter;

    /// A parallel iterator over `&self`'s items.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

/// A parallel iterator over a slice.
pub struct ParIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

/// The result of [`ParIter::map`]; consumed by [`ParMap::collect`].
pub struct ParMap<'data, T, F> {
    slice: &'data [T],
    f: F,
}

impl<'data, T: Sync, F> ParMap<'data, T, F> {
    /// Runs the map across threads and collects results in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.slice.len();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        if threads <= 1 || n <= 1 {
            return self.slice.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let f = &self.f;
        std::thread::scope(|scope| {
            for (items, outs) in self.slice.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (slot, item) in outs.iter_mut().zip(items) {
                        *slot = Some(f(item));
                    }
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("worker filled slot"))
            .collect()
    }
}

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order_and_values() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_small_and_empty_inputs() {
        let empty: Vec<u32> = vec![];
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }
}
