//! Vendored shim for the `rayon` crate. Implements the two patterns the
//! workspace uses — `slice.par_iter().map(f).collect()` and
//! `slice.par_iter_mut().for_each(f)` — on top of `std::thread::scope`,
//! chunking the input across the machine's cores. Ordering of results
//! matches the sequential iterator exactly.

/// Borrowing parallel iteration over a collection.
pub trait IntoParallelRefIterator<'data> {
    /// Borrowed item type.
    type Item: 'data;
    /// The iterator produced.
    type Iter;

    /// A parallel iterator over `&self`'s items.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

/// A parallel iterator over a slice.
pub struct ParIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

/// The result of [`ParIter::map`]; consumed by [`ParMap::collect`].
pub struct ParMap<'data, T, F> {
    slice: &'data [T],
    f: F,
}

impl<'data, T: Sync, F> ParMap<'data, T, F> {
    /// Runs the map across threads and collects results in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.slice.len();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        if threads <= 1 || n <= 1 {
            return self.slice.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let f = &self.f;
        std::thread::scope(|scope| {
            for (items, outs) in self.slice.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (slot, item) in outs.iter_mut().zip(items) {
                        *slot = Some(f(item));
                    }
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("worker filled slot"))
            .collect()
    }
}

/// Mutably borrowing parallel iteration over a collection.
pub trait IntoParallelRefMutIterator<'data> {
    /// Borrowed item type.
    type Item: 'data;
    /// The iterator produced.
    type Iter;

    /// A parallel iterator over `&mut self`'s items.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Iter = ParIterMut<'data, T>;

    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        ParIterMut { slice: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Iter = ParIterMut<'data, T>;

    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        ParIterMut { slice: self }
    }
}

/// A parallel iterator over mutable slice items.
pub struct ParIterMut<'data, T> {
    slice: &'data mut [T],
}

impl<T: Send> ParIterMut<'_, T> {
    /// Applies `f` to every item, splitting the slice across threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let n = self.slice.len();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        if threads <= 1 || n <= 1 {
            for item in self.slice {
                f(item);
            }
            return;
        }
        let chunk = n.div_ceil(threads);
        let f = &f;
        std::thread::scope(|scope| {
            for items in self.slice.chunks_mut(chunk) {
                scope.spawn(move || {
                    for item in items {
                        f(item);
                    }
                });
            }
        });
    }
}

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order_and_values() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_touches_every_item_in_place() {
        let mut xs: Vec<u64> = (0..1000).collect();
        xs.par_iter_mut().for_each(|x| *x *= 3);
        assert_eq!(xs, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
        let mut empty: Vec<u32> = vec![];
        empty.par_iter_mut().for_each(|x| *x += 1);
        let mut one = [9u32];
        one.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(one, [10]);
    }

    #[test]
    fn works_on_small_and_empty_inputs() {
        let empty: Vec<u32> = vec![];
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }
}
