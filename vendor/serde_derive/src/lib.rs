//! Vendored shim for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! implemented directly over `proc_macro::TokenStream` (no syn/quote in
//! this offline build environment). The generated impls target the
//! `Value`-based traits in the vendored `serde` shim.
//!
//! Supported shapes: non-generic structs (named, tuple, unit) and enums
//! (unit, newtype/tuple, struct variants). Supported attributes:
//! `#[serde(default)]`, `#[serde(default = "path")]`, `#[serde(skip)]`,
//! `#[serde(transparent)]`, `#[serde(deny_unknown_fields)]`, and
//! internally tagged enums via `#[serde(tag = "...", rename_all =
//! "snake_case")]`. That is exactly the attribute surface this workspace
//! uses; anything else produces a compile error rather than silently
//! wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------

#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    deny_unknown: bool,
    tag: Option<String>,
    rename_all: Option<String>,
}

#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    /// `None`: required; `Some(None)`: `Default::default()`;
    /// `Some(Some(path))`: call `path()`.
    default: Option<Option<String>>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: ContainerAttrs,
    body: Body,
}

// ---------------------------------------------------------------------
// Token cursor
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, got {other:?}")),
        }
    }

    /// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
    fn skip_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skips tokens until a top-level `,` (consumed) or end of stream.
    /// Angle brackets nest (`HashMap<NodeId, RouterStats>` is one type).
    fn skip_until_comma(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    ',' if angle == 0 => {
                        self.pos += 1;
                        return;
                    }
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Attribute parsing
// ---------------------------------------------------------------------

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

enum AttrTarget<'a> {
    Container(&'a mut ContainerAttrs),
    Field(&'a mut FieldAttrs),
}

/// Consumes leading `#[...]` attributes, folding `#[serde(...)]` into
/// the target and ignoring everything else (docs, repr, derive, ...).
fn collect_attrs(cur: &mut Cursor, mut target: AttrTarget) -> Result<(), String> {
    loop {
        let is_attr = matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#');
        if !is_attr {
            return Ok(());
        }
        cur.next();
        let group = match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => return Err(format!("malformed attribute, got {other:?}")),
        };
        let mut inner = Cursor::new(group.stream());
        if !inner.eat_ident("serde") {
            continue;
        }
        let args = match inner.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
            other => return Err(format!("malformed serde attribute, got {other:?}")),
        };
        let mut args = Cursor::new(args.stream());
        while !args.at_end() {
            let key = args.expect_ident()?;
            let value = if args.eat_punct('=') {
                match args.next() {
                    Some(TokenTree::Literal(l)) => Some(strip_quotes(&l.to_string())),
                    other => {
                        return Err(format!("expected literal after `{key} =`, got {other:?}"))
                    }
                }
            } else {
                None
            };
            args.eat_punct(',');
            match (&mut target, key.as_str(), value) {
                (AttrTarget::Container(c), "transparent", None) => c.transparent = true,
                (AttrTarget::Container(c), "deny_unknown_fields", None) => c.deny_unknown = true,
                (AttrTarget::Container(c), "tag", Some(v)) => c.tag = Some(v),
                (AttrTarget::Container(c), "rename_all", Some(v)) => c.rename_all = Some(v),
                (AttrTarget::Field(f), "skip", None) => f.skip = true,
                (AttrTarget::Field(f), "default", v) => f.default = Some(v),
                (_, other, _) => {
                    return Err(format!(
                        "unsupported serde attribute `{other}` in shim derive"
                    ))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Item parsing
// ---------------------------------------------------------------------

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let mut attrs = FieldAttrs::default();
        collect_attrs(&mut cur, AttrTarget::Field(&mut attrs))?;
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        let name = cur.expect_ident()?;
        if !cur.eat_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        cur.skip_until_comma();
        fields.push(Field { name, attrs });
    }
    Ok(fields)
}

fn parse_tuple_fields(stream: TokenStream) -> Result<usize, String> {
    let mut cur = Cursor::new(stream);
    let mut count = 0;
    while !cur.at_end() {
        let mut attrs = FieldAttrs::default();
        collect_attrs(&mut cur, AttrTarget::Field(&mut attrs))?;
        if cur.at_end() {
            break;
        }
        if attrs.skip || attrs.default.is_some() {
            return Err("serde field attributes on tuple fields are not supported".into());
        }
        cur.skip_visibility();
        cur.skip_until_comma();
        count += 1;
    }
    Ok(count)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cur.at_end() {
        // Variant-level serde attributes are unused in this workspace;
        // doc comments etc. still need skipping.
        let mut ignored = FieldAttrs::default();
        collect_attrs(&mut cur, AttrTarget::Field(&mut ignored))?;
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident()?;
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                cur.next();
                Fields::Named(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                cur.next();
                Fields::Tuple(parse_tuple_fields(g)?)
            }
            _ => Fields::Unit,
        };
        if cur.eat_punct('=') {
            // Explicit discriminant (e.g. `Ipv4 = 0x0800`): skip it.
            cur.skip_until_comma();
        } else {
            cur.eat_punct(',');
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    let mut attrs = ContainerAttrs::default();
    collect_attrs(&mut cur, AttrTarget::Container(&mut attrs))?;
    cur.skip_visibility();
    let kind = cur.expect_ident()?;
    let name = cur.expect_ident()?;
    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "shim derive does not support generic type `{name}`"
        ));
    }
    let body = match kind.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(parse_tuple_fields(g.stream())?))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            other => return Err(format!("unexpected struct body {other:?}")),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item { name, attrs, body })
}

// ---------------------------------------------------------------------
// Code generation helpers
// ---------------------------------------------------------------------

fn rename_variant(attrs: &ContainerAttrs, name: &str) -> String {
    match attrs.rename_all.as_deref() {
        Some("snake_case") => {
            let mut out = String::new();
            for (i, c) in name.chars().enumerate() {
                if c.is_ascii_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.push(c.to_ascii_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        Some("lowercase") => name.to_ascii_lowercase(),
        Some(other) => panic!("unsupported rename_all rule `{other}` in shim derive"),
        None => name.to_string(),
    }
}

/// `__m.push(("name", field.to_value()));` lines for named fields.
fn ser_named_pushes(fields: &[Field], access: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        out.push_str(&format!(
            "__m.push((\"{n}\".to_string(), ::serde::Serialize::to_value({a}{n})));\n",
            n = f.name,
            a = access,
        ));
    }
    out
}

/// A struct-literal body rebuilding named fields from map entries bound
/// to `__m` (a `&[(String, Value)]`).
fn de_named_body(type_path: &str, fields: &[Field]) -> String {
    let mut out = format!("{type_path} {{\n");
    for f in fields {
        let n = &f.name;
        if f.attrs.skip {
            out.push_str(&format!("{n}: ::std::default::Default::default(),\n"));
            continue;
        }
        let missing = match &f.attrs.default {
            Some(None) => "::std::default::Default::default()".to_string(),
            Some(Some(path)) => format!("{path}()"),
            None => format!(
                "return ::std::result::Result::Err(::serde::Error::custom(\
                 \"{type_path}: missing field `{n}`\"))"
            ),
        };
        out.push_str(&format!(
            "{n}: match ::serde::Value::get_entry(__m, \"{n}\") {{\n\
             ::std::option::Option::Some(__fv) => ::serde::Deserialize::from_value(__fv)?,\n\
             ::std::option::Option::None => {missing},\n\
             }},\n"
        ));
    }
    out.push('}');
    out
}

fn deny_unknown_check(name: &str, fields: &[Field], extra_allowed: Option<&str>) -> String {
    let mut arms: Vec<String> = fields
        .iter()
        .filter(|f| !f.attrs.skip)
        .map(|f| format!("\"{}\"", f.name))
        .collect();
    if let Some(key) = extra_allowed {
        arms.push(format!("\"{key}\""));
    }
    let pattern = if arms.is_empty() {
        "\"\"".to_string()
    } else {
        arms.join(" | ")
    };
    format!(
        "for (__k, _) in __m.iter() {{\n\
         match __k.as_str() {{\n\
         {pattern} => {{}}\n\
         __other => return ::std::result::Result::Err(::serde::Error::custom(\
         format!(\"{name}: unknown field `{{}}`\", __other))),\n\
         }}\n\
         }}\n"
    )
}

fn tuple_bindings(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("__f{i}")).collect()
}

// ---------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> Result<String, String> {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            if item.attrs.transparent {
                let inner = fields
                    .iter()
                    .find(|f| !f.attrs.skip)
                    .ok_or("transparent struct needs a field")?;
                format!("::serde::Serialize::to_value(&self.{})", inner.name)
            } else {
                format!(
                    "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n{}::serde::Value::Map(__m)",
                    ser_named_pushes(fields, "&self.")
                )
            }
        }
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let tag = rename_variant(&item.attrs, vname);
                let arm = if let Some(tag_key) = &item.attrs.tag {
                    // Internally tagged: flatten fields beside the tag.
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Map(vec![(\"{tag_key}\".to_string(), \
                             ::serde::Value::Str(\"{tag}\".to_string()))]),\n"
                        ),
                        Fields::Named(fields) => {
                            let names: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            format!(
                                "{name}::{vname} {{ {bind} }} => {{\n\
                                 let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                                 ::std::vec::Vec::new();\n\
                                 __m.push((\"{tag_key}\".to_string(), \
                                 ::serde::Value::Str(\"{tag}\".to_string())));\n\
                                 {pushes}::serde::Value::Map(__m)\n}},\n",
                                bind = names.join(", "),
                                pushes = ser_named_pushes(fields, ""),
                            )
                        }
                        Fields::Tuple(_) => {
                            return Err(format!(
                                "internally tagged tuple variant `{vname}` is unsupported"
                            ))
                        }
                    }
                } else {
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{tag}\".to_string()),\n"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Map(vec![(\"{tag}\".to_string(), \
                             ::serde::Serialize::to_value(__f0))]),\n"
                        ),
                        Fields::Tuple(n) => {
                            let binds = tuple_bindings(*n);
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({bind}) => ::serde::Value::Map(vec![(\"{tag}\".to_string(), \
                                 ::serde::Value::Seq(vec![{items}]))]),\n",
                                bind = binds.join(", "),
                                items = items.join(", "),
                            )
                        }
                        Fields::Named(fields) => {
                            let names: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            format!(
                                "{name}::{vname} {{ {bind} }} => {{\n\
                                 let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                                 ::std::vec::Vec::new();\n\
                                 {pushes}\
                                 ::serde::Value::Map(vec![(\"{tag}\".to_string(), ::serde::Value::Map(__m))])\n\
                                 }},\n",
                                bind = names.join(", "),
                                pushes = ser_named_pushes(fields, ""),
                            )
                        }
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}")
        }
    };
    Ok(format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    ))
}

// ---------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> Result<String, String> {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            if item.attrs.transparent {
                let inner = fields
                    .iter()
                    .find(|f| !f.attrs.skip)
                    .ok_or("transparent struct needs a field")?;
                format!(
                    "::std::result::Result::Ok({name} {{ {f}: ::serde::Deserialize::from_value(__v)? }})",
                    f = inner.name
                )
            } else {
                let deny = if item.attrs.deny_unknown {
                    deny_unknown_check(name, fields, None)
                } else {
                    String::new()
                };
                format!(
                    "let __m = __v.as_map().ok_or_else(|| \
                     ::serde::Error::custom(\"{name}: expected object\"))?;\n\
                     {deny}\
                     ::std::result::Result::Ok({body})",
                    body = de_named_body(name, fields)
                )
            }
        }
        Body::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.as_seq().ok_or_else(|| \
                 ::serde::Error::custom(\"{name}: expected array\"))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\
                 \"{name}: wrong tuple length\"));\n}}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Body::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            if let Some(tag_key) = &item.attrs.tag {
                let mut arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    let tag = rename_variant(&item.attrs, vname);
                    let arm = match &v.fields {
                        Fields::Unit => {
                            format!("\"{tag}\" => ::std::result::Result::Ok({name}::{vname}),\n")
                        }
                        Fields::Named(fields) => format!(
                            "\"{tag}\" => ::std::result::Result::Ok({body}),\n",
                            body = de_named_body(&format!("{name}::{vname}"), fields)
                        ),
                        Fields::Tuple(_) => {
                            return Err(format!(
                                "internally tagged tuple variant `{vname}` is unsupported"
                            ))
                        }
                    };
                    arms.push_str(&arm);
                }
                format!(
                    "let __m = __v.as_map().ok_or_else(|| \
                     ::serde::Error::custom(\"{name}: expected object\"))?;\n\
                     let __tag = ::serde::Value::get_entry(__m, \"{tag_key}\")\
                     .and_then(::serde::Value::as_str)\
                     .ok_or_else(|| ::serde::Error::custom(\"{name}: missing `{tag_key}` tag\"))?;\n\
                     match __tag {{\n{arms}\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"{name}: unknown variant `{{}}`\", __other))),\n}}"
                )
            } else {
                let mut str_arms = String::new();
                let mut map_arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    let tag = rename_variant(&item.attrs, vname);
                    match &v.fields {
                        Fields::Unit => str_arms.push_str(&format!(
                            "\"{tag}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        )),
                        Fields::Tuple(1) => map_arms.push_str(&format!(
                            "\"{tag}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?)),\n"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            map_arms.push_str(&format!(
                                "\"{tag}\" => {{\n\
                                 let __items = __inner.as_seq().ok_or_else(|| \
                                 ::serde::Error::custom(\"{name}::{vname}: expected array\"))?;\n\
                                 if __items.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"{name}::{vname}: wrong tuple length\"));\n}}\n\
                                 ::std::result::Result::Ok({name}::{vname}({items}))\n}},\n",
                                items = items.join(", ")
                            ));
                        }
                        Fields::Named(fields) => map_arms.push_str(&format!(
                            "\"{tag}\" => {{\n\
                             let __m = __inner.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\"{name}::{vname}: expected object\"))?;\n\
                             ::std::result::Result::Ok({body})\n}},\n",
                            body = de_named_body(&format!("{name}::{vname}"), fields)
                        )),
                    }
                }
                format!(
                    "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n{str_arms}\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"{name}: unknown variant `{{}}`\", __other))),\n}},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                     let (__k, __inner) = &__entries[0];\n\
                     match __k.as_str() {{\n{map_arms}\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"{name}: unknown variant `{{}}`\", __other))),\n}}\n}},\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                     \"{name}: expected variant string or single-key object\")),\n}}"
                )
            }
        }
    };
    Ok(format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    ))
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

fn run(input: TokenStream, gen: fn(&Item) -> Result<String, String>) -> TokenStream {
    let code = parse_item(input).and_then(|item| gen(&item));
    match code {
        Ok(code) => code
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("shim derive emitted bad code: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    run(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    run(input, gen_deserialize)
}
