//! Vendored shim for `serde_json`: a recursive-descent JSON parser and a
//! pretty printer over the vendored `serde::Value` data model.

use serde::{Deserialize, Serialize, Value};

/// Parse or data-model error, with a line/column for parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = Parser::new(text).parse_document()?;
    Ok(T::from_value(&value)?)
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

// ---------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            // Keep integral floats readable ("5.0" not "5").
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&format!("{f}"));
        }
    } else {
        // JSON has no NaN/Infinity; match serde_json's lossy "null".
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: impl std::fmt::Display) -> Error {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = consumed.iter().filter(|&&b| b == b'\n').count() + 1;
        let col = consumed
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|p| self.pos - p)
            .unwrap_or(self.pos + 1);
        Error::new(format!("{msg} at line {line} column {col}"))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing characters"));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.error(format!("unexpected character `{}`", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.skip_ws();
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.error("expected string"));
        }
        self.pos += 1;
        let mut out = Vec::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|_| self.error("invalid UTF-8"));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0C),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's config files; reject them.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                }
                Some(&b) => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.error("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| self.error("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.error("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v: Value = Parser::new(r#"{"a": [1, -2, 3.5, "x", true, null], "b": {}}"#)
            .parse_document()
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_seq().unwrap()[0], Value::U64(1));
        assert_eq!(v.get("a").unwrap().as_seq().unwrap()[1], Value::I64(-2));
        assert_eq!(v.get("a").unwrap().as_seq().unwrap()[2], Value::F64(3.5));
        assert_eq!(v.get("b"), Some(&Value::Map(vec![])));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Parser::new("{").parse_document().is_err());
        assert!(Parser::new("[1,]").parse_document().is_err());
        assert!(Parser::new("{} extra").parse_document().is_err());
        assert!(Parser::new(r#"{"a" 1}"#).parse_document().is_err());
    }

    #[test]
    fn pretty_round_trip() {
        let v = Value::Map(vec![
            ("name".to_string(), Value::Str("flap\"y\"".to_string())),
            (
                "xs".to_string(),
                Value::Seq(vec![Value::U64(1), Value::U64(2)]),
            ),
            ("rate".to_string(), Value::F64(0.25)),
        ]);
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let compact = to_string(&v).unwrap();
        let back2: Value = from_str(&compact).unwrap();
        assert_eq!(back2, v);
    }
}
