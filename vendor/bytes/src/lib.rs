//! Vendored shim for the `bytes` crate: an immutable, cheaply clonable
//! byte buffer backed by `Arc<[u8]>`. Covers only the surface this
//! workspace uses (`from`, `from_static`, `copy_from_slice`, deref to
//! `[u8]`, equality, serde).

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    inner: Inner,
}

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes {
            inner: Inner::Static(&[]),
        }
    }

    /// Wraps a `'static` slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            inner: Inner::Static(bytes),
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: Inner::Shared(Arc::from(data)),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared(s) => s,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            inner: Inner::Shared(Arc::from(v.into_boxed_slice())),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl serde::Serialize for Bytes {
    fn to_value(&self) -> serde::Value {
        serde::Value::Seq(
            self.as_slice()
                .iter()
                .map(|&b| serde::Value::U64(b as u64))
                .collect(),
        )
    }
}

impl serde::Deserialize for Bytes {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let bytes: Vec<u8> = serde::Deserialize::from_value(v)?;
        Ok(Bytes::from(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_compares() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], &[1, 2, 3]);
        let c = a.clone();
        assert_eq!(c, b);
        let s = Bytes::from_static(&[9]);
        assert_eq!(s.len(), 1);
    }
}
