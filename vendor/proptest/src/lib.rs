//! Vendored shim for the `proptest` crate.
//!
//! Implements the strategy/`proptest!` surface this workspace uses:
//! integer range strategies (half-open, inclusive, open-ended), tuples,
//! `any::<T>()`, `Just`, `prop_map`, `prop_oneof!`,
//! `proptest::collection::vec`, `ProptestConfig::with_cases`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest: failing cases are *not* shrunk — the
//! panic message reports the exact inputs of the failing case instead —
//! and case generation is seeded from the test's name, so runs are fully
//! deterministic.
#![allow(clippy::type_complexity)]

use rand::{Rng, RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Per-test deterministic random source.
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// A generator seeded from the test's name (FNV-1a).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(rand::rngs::StdRng::seed_from_u64(h))
    }

    /// 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.0.random_range(0..n)
    }

    fn below_usize(&mut self, n: usize) -> usize {
        self.0.random_range(0..n)
    }
}

/// Runner configuration; only the case count is modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches real proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f` of each drawn value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i128 - self.start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The canonical strategy for `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` draws arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! tuple_strategies {
    ($(( $($name:ident . $idx:tt),+ );)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Uniform choice between boxed alternatives (see `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Boxes one alternative for [`Union::new`].
    pub fn arm(strategy: impl Strategy<Value = V> + 'static) -> Box<dyn Fn(&mut TestRng) -> V> {
        Box::new(move |rng| strategy.sample(rng))
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below_usize(self.arms.len());
        (self.arms[i])(rng)
    }
}

/// Length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// A strategy for `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// A failed (or rejected) test case, for helper functions that return
/// `Result<(), TestCaseError>` and are called with `?` inside
/// `proptest!` bodies.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A hard failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// A rejected case; the shim treats rejection as failure.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(format!("rejected: {}", msg.into()))
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<TestCaseError> for String {
    fn from(e: TestCaseError) -> String {
        e.0
    }
}

/// Shorthand for a `proptest!`-compatible helper result.
pub type TestCaseResult = Result<(), TestCaseError>;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $arm:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::Union::arm($arm) ),+ ])
    };
}

/// Property assertion: fails the current case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)
            )));
        }
    };
}

/// Property equality assertion: fails the current case (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({:?} vs {:?})",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({:?} vs {:?}): {}",
                stringify!($left), stringify!($right), __l, __r, format!($($fmt)*)
            )));
        }
    }};
}

/// Property inequality assertion: fails the current case (no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both {:?})",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Declares property tests. Each contained `fn` becomes a `#[test]`
/// running `config.cases` random cases of its parameter strategies.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __desc = ::std::string::String::new();
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $crate::__proptest_bind! { (__rng) (__desc) $($params)* }
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "proptest {}: case {}/{} failed: {}\n  inputs: {}",
                        stringify!($name), __case + 1, __cfg.cases, __msg, __desc
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ( ($rng:ident) ($desc:ident) ) => {};
    ( ($rng:ident) ($desc:ident) $p:ident in $strat:expr ) => {
        $crate::__proptest_bind! { ($rng) ($desc) $p in $strat, }
    };
    ( ($rng:ident) ($desc:ident) $p:ident in $strat:expr, $($rest:tt)* ) => {
        let $p = $crate::Strategy::sample(&($strat), &mut $rng);
        $desc.push_str(&format!("{} = {:?}; ", stringify!($p), &$p));
        $crate::__proptest_bind! { ($rng) ($desc) $($rest)* }
    };
    ( ($rng:ident) ($desc:ident) $p:ident : $ty:ty ) => {
        $crate::__proptest_bind! { ($rng) ($desc) $p : $ty, }
    };
    ( ($rng:ident) ($desc:ident) $p:ident : $ty:ty, $($rest:tt)* ) => {
        let $p: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $desc.push_str(&format!("{} = {:?}; ", stringify!($p), &$p));
        $crate::__proptest_bind! { ($rng) ($desc) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0u8..=4, z in 250u8.., b: bool) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!(z >= 250);
            // Tautology on purpose: exercises bool generation + the macro.
            #[allow(clippy::overly_complex_bool_expr)]
            {
                prop_assert!(b || !b);
            }
        }

        #[test]
        fn maps_and_tuples(v in crate::collection::vec((1u32..5, any::<bool>()), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (n, _) in &v {
                prop_assert!((1..5).contains(n));
            }
        }

        #[test]
        fn oneof_and_map(cmd in prop_oneof![
            Just(0u32),
            (1u32..10).prop_map(|x| x * 100),
        ]) {
            prop_assert!(cmd == 0 || (100..1000).contains(&cmd));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
