//! Vendored shim for the `serde` crate.
//!
//! Instead of serde's zero-copy visitor architecture, this shim routes
//! everything through an owned [`Value`] tree (the JSON data model):
//! [`Serialize`] renders a type into a `Value`, [`Deserialize`] rebuilds
//! a type from one. `serde_json` (also vendored) converts between
//! `Value` and JSON text. The derive macros in `serde_derive` generate
//! impls of these traits for the attribute subset this workspace uses
//! (`default`, `skip`, `transparent`, `deny_unknown_fields`,
//! `tag`/`rename_all` internal tagging).

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: JSON's value space, with map entries in
/// insertion order so emitted documents are stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of a sequence value.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string slice of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// First entry for `key` in a map's entry list.
    pub fn get_entry<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Map-style lookup on a `Value::Map`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| Self::get_entry(m, key))
    }
}

/// Error raised while rebuilding a type from a [`Value`] (or parsing
/// JSON text in `serde_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying `msg`.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from the data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!("expected {expected}, got {got:?}")))
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => return type_err(stringify!($t), other),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{} out of range for {}", raw, stringify!($t))))
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    Value::F64(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                        f as i64
                    }
                    ref other => return type_err(stringify!($t), other),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{} out of range for {}", raw, stringify!($t))))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            ref other => type_err("f64", other),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => type_err("bool", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string; used only for configuration constants
    /// (e.g. device names) that live for the whole run anyway.
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => type_err("string", other),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom("expected single-char string"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_seq().ok_or_else(|| Error::custom("expected array"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {got}")))
    }
}

macro_rules! tuple_impls {
    ($(( $($name:ident . $idx:tt),+ ) -> $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_seq().ok_or_else(|| Error::custom("expected tuple array"))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected tuple of length {}, got {}", $len, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A.0) -> 1;
    (A.0, B.1) -> 2;
    (A.0, B.1, C.2) -> 3;
    (A.0, B.1, C.2, D.3) -> 4;
    (A.0, B.1, C.2, D.3, E.4) -> 5;
}

/// Types usable as map keys (JSON object keys are strings).
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! int_key_impls {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| {
                    Error::custom(format!("invalid {} map key {:?}", stringify!($t), key))
                })
            }
        }
    )*};
}

int_key_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K, V, S> Serialize for HashMap<K, V, S>
where
    K: MapKey,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v.as_map().ok_or_else(|| Error::custom("expected object"))?;
        entries
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K, V> Serialize for BTreeMap<K, V>
where
    K: MapKey,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: MapKey + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v.as_map().ok_or_else(|| Error::custom("expected object"))?;
        entries
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u8> = vec![1, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1u8, 2, 3, 4, 5, 6];
        assert_eq!(<[u8; 6]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
        let pair = (3u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn maps_use_string_keys() {
        let mut m = HashMap::new();
        m.insert(4u32, 9u64);
        let v = m.to_value();
        assert_eq!(v.get("4"), Some(&Value::U64(9)));
        let back: HashMap<u32, u64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn out_of_range_is_an_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
    }
}
