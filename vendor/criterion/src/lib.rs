//! Vendored shim for the `criterion` crate: a minimal wall-clock harness
//! with criterion's API shape (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `iter`, `iter_batched`). It prints a mean
//! ns/iteration per benchmark instead of criterion's full statistical
//! analysis — good enough to run the workspace's benches offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&label, &mut wrapped);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark's identifier: a function name plus a parameter label.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// An id with only a parameter component.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// How much setup output to batch per measurement (API compatibility
/// only; the shim measures one batch at a time regardless).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Measures closures handed to it by a benchmark function.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

const TARGET_TIME: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 1_000_000;

impl Bencher {
    /// Times `f` repeatedly until the measurement window closes.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Short warmup to populate caches and lazy statics.
        for _ in 0..3 {
            black_box(f());
        }
        let start = Instant::now();
        while start.elapsed() < TARGET_TIME && self.iters_done < MAX_ITERS {
            let t0 = Instant::now();
            black_box(f());
            self.elapsed += t0.elapsed();
            self.iters_done += 1;
        }
    }

    /// Times `routine` on fresh values from `setup`; setup time is not
    /// charged to the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..3 {
            black_box(routine(setup()));
        }
        let start = Instant::now();
        while start.elapsed() < TARGET_TIME && self.iters_done < MAX_ITERS {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters_done += 1;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters_done == 0 {
        println!("{label:<48} (no measurements)");
    } else {
        let ns = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
        println!(
            "{label:<48} {ns:>12.1} ns/iter ({} iterations)",
            b.iters_done
        );
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 3)
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
