//! Vendored shim for the `rand` crate (0.9-style API). Provides a
//! deterministic seeded generator (`rngs::StdRng`), the `SeedableRng` and
//! `Rng` traits, and uniform range sampling via `Rng::random_range` for
//! the integer and float ranges this workspace draws from.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high quality
//! and fully reproducible from a `u64` seed, which is all the simulator
//! needs (it never asks for cryptographic randomness).

/// Core source of randomness: 64 random bits at a time.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A uniform sample of a type with a natural uniform distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types with a canonical uniform distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a generator can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, span)` (`span > 0`).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Sample 128 bits and reduce; the modulo bias over a 128-bit draw is
    // below 2^-64 for every span this workspace uses.
    let hi = rng.next_u64() as u128;
    let lo = rng.next_u64() as u128;
    ((hi << 64) | lo) % span
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let u: f64 = f64::sample(rng);
        self.start + (u as f32) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as DefaultStdRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: u64 = rng.random_range(5..17);
            assert!((5..17).contains(&x));
            let y: u8 = rng.random_range(0u8..=3);
            assert!(y <= 3);
            let f: f64 = rng.random_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
            let s: usize = rng.random_range(1usize..32);
            assert!((1..32).contains(&s));
        }
    }

    #[test]
    fn float_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
