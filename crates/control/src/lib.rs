#![warn(missing_docs)]
//! The MPLS control plane — the "routing functionality" the paper assigns
//! to software (§3: "The routing functionality is assumed to be software
//! based"; §2 lists label path creation and label distribution as its
//! jobs).
//!
//! The paper declares the protocols themselves (LDP, RSVP-TE, CR-LDP)
//! out of scope, so this crate models their *outcome*, not their wire
//! encodings:
//!
//! * [`topology`] — the network graph of Fig. 1: LERs at the edge, LSRs in
//!   the core, links with cost, capacity and propagation delay.
//! * [`cspf`] — constrained shortest-path computation (the traffic-
//!   engineering ingredient: explicit paths avoiding congested links).
//! * [`label_alloc`] — per-node downstream label allocation.
//! * [`signaling`] — ordered LSP establishment with bandwidth admission
//!   control (the CR-LDP/RSVP-TE role), hierarchical tunnels (Fig. 3) and
//!   generation of the per-node forwarding configuration that programs
//!   either the hardware information base or the software FIB.

pub mod config;
pub mod cspf;
pub mod label_alloc;
pub mod signaling;
pub mod spt;
pub mod topology;

pub use config::{
    BindingEntry, EcmpEntry, FecEntry, Hop, IpRoute, NextHopEntry, NodeConfig, SrPolicyEntry,
};
pub use cspf::{Constraint, PathError};
pub use label_alloc::LabelAllocator;
pub use signaling::{ControlPlane, LspId, LspRequest, SignalError, TunnelId};
pub use spt::SptTree;
pub use topology::{LinkId, LinkSpec, NodeId, NodeSpec, RouterRole, Topology};
