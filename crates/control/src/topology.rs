//! The network graph of the paper's Fig. 1: LERs on the edge, LSRs in the
//! core, bidirectional links with cost, capacity and propagation delay.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Node identifier.
pub type NodeId = u32;

/// Link identifier (index into the link table; each spec describes both
/// directions).
pub type LinkId = u32;

/// The role a node plays in the MPLS network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouterRole {
    /// Label Edge Router — attaches layer-2 networks, may push onto empty
    /// stacks.
    Ler,
    /// Label Switch Router — core transit only.
    Lsr,
}

/// A node declaration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Identifier, unique within the topology.
    pub id: NodeId,
    /// Role.
    pub role: RouterRole,
    /// Human-readable name for reports.
    pub name: String,
}

/// A bidirectional link declaration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Routing metric (lower is preferred).
    pub cost: u32,
    /// Capacity in bits per second (each direction).
    pub bandwidth_bps: u64,
    /// One-way propagation delay in nanoseconds.
    pub delay_ns: u64,
}

/// The network graph.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
    links: Vec<LinkSpec>,
    node_index: HashMap<NodeId, usize>,
    /// adjacency: node -> [(neighbor, link id)]
    adj: HashMap<NodeId, Vec<(NodeId, LinkId)>>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node. Panics on duplicate ids — topology construction errors
    /// are programming errors in experiment setup.
    pub fn add_node(&mut self, id: NodeId, role: RouterRole, name: impl Into<String>) -> NodeId {
        assert!(!self.node_index.contains_key(&id), "duplicate node id {id}");
        self.node_index.insert(id, self.nodes.len());
        self.nodes.push(NodeSpec {
            id,
            role,
            name: name.into(),
        });
        self.adj.entry(id).or_default();
        id
    }

    /// Adds a bidirectional link and returns its id.
    pub fn add_link(&mut self, spec: LinkSpec) -> LinkId {
        assert!(
            self.node_index.contains_key(&spec.a),
            "unknown node {}",
            spec.a
        );
        assert!(
            self.node_index.contains_key(&spec.b),
            "unknown node {}",
            spec.b
        );
        assert_ne!(spec.a, spec.b, "self-links are not allowed");
        let id = self.links.len() as LinkId;
        self.links.push(spec);
        self.adj.get_mut(&spec.a).unwrap().push((spec.b, id));
        self.adj.get_mut(&spec.b).unwrap().push((spec.a, id));
        id
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> Option<&NodeSpec> {
        self.node_index.get(&id).map(|&i| &self.nodes[i])
    }

    /// Link lookup.
    pub fn link(&self, id: LinkId) -> Option<&LinkSpec> {
        self.links.get(id as usize)
    }

    /// Dense index of a node in [`Self::nodes`] — the array key the
    /// shortest-path-tree cache stores distances under.
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.node_index.get(&id).copied()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Neighbors of `id` with the connecting link.
    pub fn neighbors(&self, id: NodeId) -> &[(NodeId, LinkId)] {
        self.adj.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The link connecting two adjacent nodes, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.neighbors(a)
            .iter()
            .find(|(n, _)| *n == b)
            .map(|&(_, l)| l)
    }

    /// Validates that `path` is a connected node sequence; returns the
    /// traversed link ids.
    pub fn path_links(&self, path: &[NodeId]) -> Option<Vec<LinkId>> {
        path.windows(2)
            .map(|w| self.link_between(w[0], w[1]))
            .collect()
    }

    /// Renders the topology in Graphviz DOT format: LERs as boxes, LSRs
    /// as circles, links labelled with cost and capacity.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("graph mpls {\n  layout=neato;\n");
        for n in &self.nodes {
            let shape = match n.role {
                RouterRole::Ler => "box",
                RouterRole::Lsr => "ellipse",
            };
            let _ = writeln!(out, "  n{} [label=\"{}\", shape={shape}];", n.id, n.name);
        }
        for l in &self.links {
            let _ = writeln!(
                out,
                "  n{} -- n{} [label=\"c{} {}M\"];",
                l.a,
                l.b,
                l.cost,
                l.bandwidth_bps / 1_000_000
            );
        }
        out.push_str("}\n");
        out
    }

    /// Builds a `k x k` grid of LSRs with one LER grafted onto each
    /// corner — a scalable stress topology. Node ids: LSR at (r, c) is
    /// `r * k + c`; the four LERs are `k*k .. k*k+3` attached clockwise
    /// from the top-left corner.
    pub fn grid(k: u32, bandwidth_bps: u64, delay_ns: u64) -> Topology {
        assert!(k >= 2, "grid needs k >= 2");
        let mut t = Topology::new();
        for r in 0..k {
            for c in 0..k {
                t.add_node(r * k + c, RouterRole::Lsr, format!("lsr-{r}-{c}"));
            }
        }
        let link = |a, b| LinkSpec {
            a,
            b,
            cost: 1,
            bandwidth_bps,
            delay_ns,
        };
        for r in 0..k {
            for c in 0..k {
                let id = r * k + c;
                if c + 1 < k {
                    t.add_link(link(id, id + 1));
                }
                if r + 1 < k {
                    t.add_link(link(id, id + k));
                }
            }
        }
        let corners = [0, k - 1, k * k - 1, k * (k - 1)];
        for (i, &corner) in corners.iter().enumerate() {
            let ler = k * k + i as u32;
            t.add_node(ler, RouterRole::Ler, format!("ler-{i}"));
            t.add_link(link(ler, corner));
        }
        t
    }

    /// Builds a `k`-ary fat tree — the canonical folded-Clos datacenter
    /// fabric — with `lers_per_edge` LERs grafted under every edge
    /// switch as traffic endpoints.
    ///
    /// `k` must be even and ≥ 2. The switch fabric is `(k/2)²` core,
    /// `k` pods of `k/2` aggregation and `k/2` edge switches each (all
    /// LSRs); every edge switch connects to every aggregation switch in
    /// its pod, and aggregation switch `a` of each pod connects to core
    /// switches `a·k/2 .. (a+1)·k/2`. All links cost 1.
    ///
    /// Node ids are dense and layered: cores first, then aggregations
    /// (pod-major), then edges (pod-major), then LERs (edge-major) —
    /// `k = 16`, `lers_per_edge = 6` yields 64 + 128 + 128 + 768 = 1088
    /// nodes.
    pub fn fat_tree(k: u32, lers_per_edge: u32, bandwidth_bps: u64, delay_ns: u64) -> Topology {
        assert!(k >= 2 && k.is_multiple_of(2), "fat tree needs even k >= 2");
        let half = k / 2;
        let ncore = half * half;
        let nagg = k * half;
        let nedge = k * half;
        let mut t = Topology::new();
        for c in 0..ncore {
            t.add_node(c, RouterRole::Lsr, format!("core-{c}"));
        }
        for p in 0..k {
            for a in 0..half {
                t.add_node(
                    ncore + p * half + a,
                    RouterRole::Lsr,
                    format!("agg-{p}-{a}"),
                );
            }
        }
        for p in 0..k {
            for e in 0..half {
                t.add_node(
                    ncore + nagg + p * half + e,
                    RouterRole::Lsr,
                    format!("edge-{p}-{e}"),
                );
            }
        }
        let link = |a, b| LinkSpec {
            a,
            b,
            cost: 1,
            bandwidth_bps,
            delay_ns,
        };
        for p in 0..k {
            for a in 0..half {
                let agg = ncore + p * half + a;
                for c in 0..half {
                    t.add_link(link(agg, a * half + c));
                }
                for e in 0..half {
                    t.add_link(link(ncore + nagg + p * half + e, agg));
                }
            }
        }
        for e in 0..nedge {
            for j in 0..lers_per_edge {
                let ler = ncore + nagg + nedge + e * lers_per_edge + j;
                t.add_node(ler, RouterRole::Ler, format!("ler-{e}-{j}"));
                t.add_link(link(ler, ncore + nagg + e));
            }
        }
        t
    }

    /// Builds a two-level ring hierarchy — a metro/backbone shape: a
    /// backbone ring of `rings` gateway LSRs, each anchoring a local
    /// access ring of `ring_size` LERs. All links cost 1.
    ///
    /// Node ids: gateway `g` is `g`; member `j` of `g`'s local ring is
    /// `rings + g·ring_size + j`. Each local ring runs gateway →
    /// member 0 → … → member `ring_size-1` → gateway. `rings = 32`,
    /// `ring_size = 32` yields 32 · 33 = 1056 nodes.
    pub fn ring_of_rings(
        rings: u32,
        ring_size: u32,
        bandwidth_bps: u64,
        delay_ns: u64,
    ) -> Topology {
        assert!(rings >= 3, "backbone needs >= 3 rings");
        assert!(ring_size >= 2, "local rings need >= 2 members");
        let mut t = Topology::new();
        for g in 0..rings {
            t.add_node(g, RouterRole::Lsr, format!("gw-{g}"));
        }
        let link = |a, b| LinkSpec {
            a,
            b,
            cost: 1,
            bandwidth_bps,
            delay_ns,
        };
        for g in 0..rings {
            t.add_link(link(g, (g + 1) % rings));
        }
        for g in 0..rings {
            let member = |j| rings + g * ring_size + j;
            for j in 0..ring_size {
                t.add_node(member(j), RouterRole::Ler, format!("acc-{g}-{j}"));
            }
            t.add_link(link(g, member(0)));
            for j in 0..ring_size - 1 {
                t.add_link(link(member(j), member(j + 1)));
            }
            t.add_link(link(member(ring_size - 1), g));
        }
        t
    }

    /// Builds the classic evaluation topology used throughout the
    /// examples and benchmarks: two LERs bridging layer-2 networks across
    /// a four-LSR core with a fast three-hop path and a slow two-hop
    /// alternative, mirroring Fig. 1.
    ///
    /// ```text
    ///            LSR2 --- LSR3
    ///           /             \
    /// LER0 --- +               + --- LER1
    ///           \             /
    ///            LSR4 --- LSR5        (higher cost, lower capacity)
    /// ```
    pub fn figure1_example() -> Topology {
        let mut t = Topology::new();
        t.add_node(0, RouterRole::Ler, "ler-west");
        t.add_node(1, RouterRole::Ler, "ler-east");
        t.add_node(2, RouterRole::Lsr, "lsr-north-a");
        t.add_node(3, RouterRole::Lsr, "lsr-north-b");
        t.add_node(4, RouterRole::Lsr, "lsr-south-a");
        t.add_node(5, RouterRole::Lsr, "lsr-south-b");
        let fast = |a, b| LinkSpec {
            a,
            b,
            cost: 1,
            bandwidth_bps: 1_000_000_000,
            delay_ns: 500_000,
        };
        let slow = |a, b| LinkSpec {
            a,
            b,
            cost: 3,
            bandwidth_bps: 100_000_000,
            delay_ns: 2_000_000,
        };
        t.add_link(fast(0, 2));
        t.add_link(fast(2, 3));
        t.add_link(fast(3, 1));
        t.add_link(slow(0, 4));
        t.add_link(slow(4, 5));
        t.add_link(slow(5, 1));
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let t = Topology::figure1_example();
        assert_eq!(t.nodes().len(), 6);
        assert_eq!(t.links().len(), 6);
        assert_eq!(t.node(0).unwrap().role, RouterRole::Ler);
        assert_eq!(t.node(2).unwrap().role, RouterRole::Lsr);
        assert_eq!(t.neighbors(0).len(), 2);
        assert!(t.link_between(0, 2).is_some());
        assert!(t.link_between(0, 3).is_none());
    }

    #[test]
    fn path_links_validates_connectivity() {
        let t = Topology::figure1_example();
        assert_eq!(t.path_links(&[0, 2, 3, 1]).unwrap().len(), 3);
        assert!(t.path_links(&[0, 3]).is_none());
        assert_eq!(t.path_links(&[0]).unwrap().len(), 0);
    }

    #[test]
    fn dot_export_mentions_every_node_and_link() {
        let t = Topology::figure1_example();
        let dot = t.to_dot();
        assert!(dot.starts_with("graph mpls {"));
        for n in t.nodes() {
            assert!(dot.contains(&format!("n{}", n.id)));
            assert!(dot.contains(&n.name));
        }
        assert_eq!(dot.matches(" -- ").count(), t.links().len());
        assert!(dot.contains("shape=box"), "LERs are boxes");
        assert!(dot.contains("shape=ellipse"), "LSRs are ellipses");
    }

    #[test]
    fn grid_topology_shape() {
        let t = Topology::grid(3, 1_000_000_000, 1000);
        // 9 LSRs + 4 LERs.
        assert_eq!(t.nodes().len(), 13);
        // 2*k*(k-1) grid links + 4 LER links.
        assert_eq!(t.links().len(), 12 + 4);
        // Corners have degree 3 (two grid neighbors + the LER).
        assert_eq!(t.neighbors(0).len(), 3);
        // Center has degree 4.
        assert_eq!(t.neighbors(4).len(), 4);
        // LERs have degree 1.
        assert_eq!(t.neighbors(9).len(), 1);
        assert_eq!(t.node(9).unwrap().role, RouterRole::Ler);
    }

    #[test]
    #[should_panic(expected = "grid needs k >= 2")]
    fn tiny_grid_panics() {
        Topology::grid(1, 1, 1);
    }

    #[test]
    fn fat_tree_shape() {
        let k = 4u32;
        let t = Topology::fat_tree(k, 2, 1_000_000_000, 1000);
        // (k/2)^2 core + k*k/2 agg + k*k/2 edge + 2 LERs per edge.
        assert_eq!(t.nodes().len(), 4 + 8 + 8 + 16);
        // Links: agg-core k*(k/2)*(k/2) + edge-agg k*(k/2)*(k/2) + LER.
        assert_eq!(t.links().len(), 16 + 16 + 16);
        // Core: one agg per pod (k). Agg: k/2 cores + k/2 edges (k).
        // Edge: k/2 aggs + its LERs. LERs hang off edges singly.
        for n in t.nodes() {
            match n.role {
                RouterRole::Lsr => {
                    let expected = if n.id < 4 + 8 { k } else { k / 2 + 2 };
                    assert_eq!(t.neighbors(n.id).len() as u32, expected, "node {}", n.id);
                }
                RouterRole::Ler => assert_eq!(t.neighbors(n.id).len(), 1),
            }
        }
        // Edge switches of one pod share every agg switch of that pod.
        assert!(t.link_between(12, 4).is_some(), "edge-0-0 to agg-0-0");
        assert!(t.link_between(12, 5).is_some(), "edge-0-0 to agg-0-1");
    }

    #[test]
    fn ring_of_rings_shape() {
        let t = Topology::ring_of_rings(4, 3, 1_000_000_000, 1000);
        assert_eq!(t.nodes().len(), 4 * (1 + 3));
        // Backbone 4 + per ring (1 + (ring_size-1) + 1) = 4 + 4*4.
        assert_eq!(t.links().len(), 4 + 4 * 4);
        for g in 0..4 {
            // Two backbone neighbors plus both local ring attachment points.
            assert_eq!(t.neighbors(g).len(), 4, "gateway {g}");
            assert_eq!(t.node(g).unwrap().role, RouterRole::Lsr);
        }
        for n in t.nodes().iter().filter(|n| n.id >= 4) {
            assert_eq!(n.role, RouterRole::Ler);
            assert_eq!(t.neighbors(n.id).len(), 2, "ring members sit in a cycle");
        }
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_node_panics() {
        let mut t = Topology::new();
        t.add_node(1, RouterRole::Ler, "a");
        t.add_node(1, RouterRole::Ler, "b");
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut t = Topology::new();
        t.add_node(1, RouterRole::Ler, "a");
        t.add_link(LinkSpec {
            a: 1,
            b: 1,
            cost: 1,
            bandwidth_bps: 1,
            delay_ns: 1,
        });
    }
}
