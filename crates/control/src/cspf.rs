//! Constrained shortest-path-first computation.
//!
//! "TE is best facilitated by explicit path specification" (paper §1);
//! CSPF is how RSVP-TE/CR-LDP heads compute those explicit paths: plain
//! Dijkstra over the routing metric, pruning links that violate the
//! constraints (insufficient unreserved bandwidth, administratively
//! excluded nodes/links).

use crate::topology::{LinkId, NodeId, Topology};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Path-computation constraints.
#[derive(Debug, Clone, Default)]
pub struct Constraint {
    /// Minimum unreserved bandwidth each traversed link must offer.
    pub min_bandwidth_bps: u64,
    /// Links that must not be used.
    pub exclude_links: HashSet<LinkId>,
    /// Nodes that must not be traversed (endpoints exempt).
    pub exclude_nodes: HashSet<NodeId>,
}

/// Why no path was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathError {
    /// Source or destination does not exist.
    UnknownNode(NodeId),
    /// The constraint set disconnects the endpoints.
    NoPath,
}

/// Computes the minimum-cost path from `from` to `to` subject to
/// `constraint`, where a link's unreserved bandwidth is supplied by
/// `available` (the signaling layer's reservation ledger). Returns the
/// node sequence including both endpoints.
pub fn shortest_path(
    topo: &Topology,
    from: NodeId,
    to: NodeId,
    constraint: &Constraint,
    available: &dyn Fn(LinkId) -> u64,
) -> Result<Vec<NodeId>, PathError> {
    if topo.node(from).is_none() {
        return Err(PathError::UnknownNode(from));
    }
    if topo.node(to).is_none() {
        return Err(PathError::UnknownNode(to));
    }
    if from == to {
        return Ok(vec![from]);
    }

    let mut dist: HashMap<NodeId, u64> = HashMap::new();
    let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(from, 0);
    heap.push(Reverse((0u64, from)));

    while let Some(Reverse((d, node))) = heap.pop() {
        if node == to {
            break;
        }
        if d > dist.get(&node).copied().unwrap_or(u64::MAX) {
            continue;
        }
        for &(next, link) in topo.neighbors(node) {
            if constraint.exclude_links.contains(&link) {
                continue;
            }
            if next != to && next != from && constraint.exclude_nodes.contains(&next) {
                continue;
            }
            let spec = topo.link(link).expect("adjacency references valid link");
            if available(link) < constraint.min_bandwidth_bps {
                continue;
            }
            let nd = d + spec.cost as u64;
            if nd < dist.get(&next).copied().unwrap_or(u64::MAX) {
                dist.insert(next, nd);
                prev.insert(next, node);
                heap.push(Reverse((nd, next)));
            }
        }
    }

    if !prev.contains_key(&to) {
        return Err(PathError::NoPath);
    }
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        cur = prev[&cur];
        path.push(cur);
    }
    path.reverse();
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn full_bw(topo: &Topology) -> impl Fn(LinkId) -> u64 + '_ {
        |l| topo.link(l).map(|s| s.bandwidth_bps).unwrap_or(0)
    }

    #[test]
    fn picks_cheapest_path() {
        let t = Topology::figure1_example();
        let p = shortest_path(&t, 0, 1, &Constraint::default(), &full_bw(&t)).unwrap();
        assert_eq!(p, vec![0, 2, 3, 1], "north path has cost 3 vs south 9");
    }

    #[test]
    fn trivial_path_to_self() {
        let t = Topology::figure1_example();
        let p = shortest_path(&t, 3, 3, &Constraint::default(), &full_bw(&t)).unwrap();
        assert_eq!(p, vec![3]);
    }

    #[test]
    fn bandwidth_constraint_diverts_to_south() {
        let t = Topology::figure1_example();
        // Ask for more than the north path offers once 950 Mb/s is gone.
        let c = Constraint {
            min_bandwidth_bps: 200_000_000,
            ..Default::default()
        };
        // Pretend the north links have only 10 Mb/s unreserved.
        let avail = |l: LinkId| {
            let s = t.link(l).unwrap();
            if s.cost == 1 {
                10_000_000
            } else {
                s.bandwidth_bps
            }
        };
        // South links offer only 100 Mb/s capacity, so a 200 Mb/s request
        // fits nowhere.
        assert_eq!(shortest_path(&t, 0, 1, &c, &avail), Err(PathError::NoPath));
        // A 50 Mb/s request fits the south path.
        let c = Constraint {
            min_bandwidth_bps: 50_000_000,
            ..Default::default()
        };
        let p = shortest_path(&t, 0, 1, &c, &avail).unwrap();
        assert_eq!(p, vec![0, 4, 5, 1]);
    }

    #[test]
    fn node_exclusion_reroutes() {
        let t = Topology::figure1_example();
        let mut c = Constraint::default();
        c.exclude_nodes.insert(2);
        let p = shortest_path(&t, 0, 1, &c, &full_bw(&t)).unwrap();
        assert_eq!(p, vec![0, 4, 5, 1]);
    }

    #[test]
    fn link_exclusion_reroutes() {
        let t = Topology::figure1_example();
        let mut c = Constraint::default();
        c.exclude_links.insert(t.link_between(2, 3).unwrap());
        let p = shortest_path(&t, 0, 1, &c, &full_bw(&t)).unwrap();
        assert_eq!(p, vec![0, 4, 5, 1]);
    }

    #[test]
    fn disconnected_is_no_path() {
        let mut t = Topology::figure1_example();
        t.add_node(99, crate::topology::RouterRole::Lsr, "island");
        assert_eq!(
            shortest_path(&t, 0, 99, &Constraint::default(), &full_bw(&t)),
            Err(PathError::NoPath)
        );
        assert_eq!(
            shortest_path(&t, 0, 100, &Constraint::default(), &full_bw(&t)),
            Err(PathError::UnknownNode(100))
        );
    }
}
