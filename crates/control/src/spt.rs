//! Incrementally maintained shortest-path trees for delta CSPF.
//!
//! Signaling N LSPs from the same head end repeats the same Dijkstra N
//! times; at a million LSPs that is O(LSPs × graph) and dominates
//! bring-up. [`SptTree`] computes the full shortest-path tree for one
//! source once and then *repairs* it under link failures and
//! restorations, touching only the affected subtree — so steady-state
//! path queries are O(path length) and a topology delta costs
//! O(affected region), not O(graph) per signaled LSP.
//!
//! # The canonical-parent invariant
//!
//! [`crate::cspf::shortest_path`] runs Dijkstra with strict (`<`)
//! relaxation from a heap ordered by `(dist, node id)`. With all link
//! costs ≥ 1 every tight parent of a node pops strictly before the node
//! itself, so the parent that *first* relaxes `v` to its final distance
//! — the one `prev[v]` keeps — is exactly
//!
//! ```text
//! prev[v] = argmin over tight parents u of (dist[u], u)
//! ```
//!
//! an order-independent rule. `SptTree` maintains that same canonical
//! parent through every delta, which is what makes the tree's paths
//! byte-identical to a fresh `shortest_path` call at every moment (the
//! property the delta-vs-full proptest pins). Zero-cost links would
//! break the "tight parents pop first" argument, so the signaling layer
//! only engages the cache when every link cost is ≥ 1.

use crate::topology::{LinkId, NodeId, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel for "no parent" (the source, or an unreachable node).
const NO_NODE: NodeId = NodeId::MAX;

/// A shortest-path tree from one source, repairable under link deltas.
///
/// Distances and parents are stored per topology node index (dense
/// arrays, not maps — at 1000+ nodes the tree is the hot structure of
/// million-LSP bring-up).
#[derive(Debug, Clone)]
pub struct SptTree {
    src: NodeId,
    /// Distance from the source by node index; `u64::MAX` = unreachable.
    dist: Vec<u64>,
    /// Canonical parent by node index; `NO_NODE` for the source and
    /// unreachable nodes.
    prev: Vec<NodeId>,
}

impl SptTree {
    /// Builds the full tree from `src`. `usable` gates links (the
    /// signaling layer passes "not currently failed").
    pub fn build(topo: &Topology, src: NodeId, usable: &dyn Fn(LinkId) -> bool) -> Self {
        let n = topo.nodes().len();
        let mut tree = Self {
            src,
            dist: vec![u64::MAX; n],
            prev: vec![NO_NODE; n],
        };
        let Some(s) = topo.index_of(src) else {
            return tree;
        };
        tree.dist[s] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0u64, src)));
        tree.propagate(topo, usable, &mut heap);
        tree
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.src
    }

    /// Distance to `to`, if reachable.
    pub fn cost(&self, topo: &Topology, to: NodeId) -> Option<u64> {
        let i = topo.index_of(to)?;
        (self.dist[i] != u64::MAX).then_some(self.dist[i])
    }

    /// The shortest path source → `to` (inclusive), exactly the node
    /// sequence `shortest_path` would return. `None` when unreachable.
    pub fn path(&self, topo: &Topology, to: NodeId) -> Option<Vec<NodeId>> {
        let ti = topo.index_of(to)?;
        if self.dist[ti] == u64::MAX {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != self.src {
            let i = topo.index_of(cur)?;
            cur = self.prev[i];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Repairs the tree after `link` became unusable (`usable` must
    /// already report it as such). Only the subtree hanging off the
    /// broken tree edge is recomputed; non-tree edges are a no-op — a
    /// failed strict relaxation never set a `prev`, so removing one
    /// cannot change any distance.
    pub fn link_down(&mut self, topo: &Topology, link: LinkId, usable: &dyn Fn(LinkId) -> bool) {
        let Some(spec) = topo.link(link) else { return };
        // At most one direction is a tree edge (the tree is acyclic),
        // but re-check after the first repair for safety.
        for (u, v) in [(spec.a, spec.b), (spec.b, spec.a)] {
            let (Some(_), Some(vi)) = (topo.index_of(u), topo.index_of(v)) else {
                continue;
            };
            if self.prev[vi] != u {
                continue;
            }
            // Does v still achieve its distance over some usable edge
            // (e.g. a parallel link, or another tight parent)?
            if self.best_incoming(topo, usable, v) == self.dist[vi] {
                self.prev[vi] = self.canonical_prev(topo, usable, v);
                continue;
            }
            // v's distance must grow: rebuild the affected subtree from
            // its boundary. Nodes outside the subtree keep their tree
            // paths (which avoid the broken edge by definition), so
            // their distances — and canonical parents — are stable.
            let affected = self.subtree_of(topo, vi);
            for &i in &affected {
                self.dist[i] = u64::MAX;
                self.prev[i] = NO_NODE;
            }
            let mut heap = BinaryHeap::new();
            for &i in &affected {
                let node = topo.nodes()[i].id;
                let best = self.best_incoming(topo, usable, node);
                if best < self.dist[i] {
                    self.dist[i] = best;
                    heap.push(Reverse((best, node)));
                }
            }
            self.propagate(topo, usable, &mut heap);
        }
    }

    /// Repairs the tree after `link` became usable again. Improvements
    /// seed from the link's endpoints and propagate only as far as they
    /// keep winning.
    pub fn link_up(&mut self, topo: &Topology, link: LinkId, usable: &dyn Fn(LinkId) -> bool) {
        let Some(spec) = topo.link(link) else { return };
        if !usable(link) {
            return;
        }
        let w = spec.cost as u64;
        let mut heap = BinaryHeap::new();
        for (u, v) in [(spec.a, spec.b), (spec.b, spec.a)] {
            let (Some(ui), Some(vi)) = (topo.index_of(u), topo.index_of(v)) else {
                continue;
            };
            if self.dist[ui] == u64::MAX {
                continue;
            }
            let nd = self.dist[ui] + w;
            if nd < self.dist[vi] {
                self.dist[vi] = nd;
                self.prev[vi] = u;
                heap.push(Reverse((nd, v)));
            } else if nd == self.dist[vi] {
                // Distance unchanged: only the canonical parent can move.
                self.prev[vi] = self.canonical_prev(topo, usable, v);
            }
        }
        self.propagate(topo, usable, &mut heap);
    }

    /// Dijkstra propagation from whatever is seeded in `heap`. When a
    /// node pops at its final distance its canonical parent is
    /// recomputed by scanning its (by then final) neighbors; nodes whose
    /// distance never changes but whose tight-parent set gains a member
    /// get the equal-distance fix-up inline.
    fn propagate(
        &mut self,
        topo: &Topology,
        usable: &dyn Fn(LinkId) -> bool,
        heap: &mut BinaryHeap<Reverse<(u64, NodeId)>>,
    ) {
        while let Some(Reverse((d, node))) = heap.pop() {
            let ni = topo.index_of(node).expect("heap holds known nodes");
            if d > self.dist[ni] {
                continue;
            }
            // Every neighbor with a smaller distance is final by the
            // heap's pop order, so the canonical parent is decidable now.
            self.prev[ni] = self.canonical_prev(topo, usable, node);
            for &(next, link) in topo.neighbors(node) {
                if !usable(link) {
                    continue;
                }
                let w = topo.link(link).expect("valid adjacency").cost as u64;
                let nd = d + w;
                let xi = topo.index_of(next).expect("valid adjacency");
                if nd < self.dist[xi] {
                    self.dist[xi] = nd;
                    self.prev[xi] = node;
                    heap.push(Reverse((nd, next)));
                } else if nd == self.dist[xi] {
                    let cur = self.prev[xi];
                    if cur != NO_NODE {
                        let ci = topo.index_of(cur).expect("parents are known nodes");
                        if (d, node) < (self.dist[ci], cur) {
                            self.prev[xi] = node;
                        }
                    }
                }
            }
        }
    }

    /// The best achievable distance of `node` over its usable incoming
    /// edges (`u64::MAX` when none).
    fn best_incoming(&self, topo: &Topology, usable: &dyn Fn(LinkId) -> bool, node: NodeId) -> u64 {
        if node == self.src {
            return 0;
        }
        let mut best = u64::MAX;
        for &(from, link) in topo.neighbors(node) {
            if !usable(link) {
                continue;
            }
            let fi = topo.index_of(from).expect("valid adjacency");
            if self.dist[fi] == u64::MAX {
                continue;
            }
            let w = topo.link(link).expect("valid adjacency").cost as u64;
            best = best.min(self.dist[fi] + w);
        }
        best
    }

    /// `argmin over tight parents u of (dist[u], u)` — the canonical
    /// parent rule (see module docs). `NO_NODE` for the source and
    /// unreachable nodes.
    fn canonical_prev(
        &self,
        topo: &Topology,
        usable: &dyn Fn(LinkId) -> bool,
        node: NodeId,
    ) -> NodeId {
        let ni = topo.index_of(node).expect("known node");
        let d = self.dist[ni];
        if d == 0 || d == u64::MAX {
            return NO_NODE;
        }
        let mut best = (u64::MAX, NO_NODE);
        for &(from, link) in topo.neighbors(node) {
            if !usable(link) {
                continue;
            }
            let fi = topo.index_of(from).expect("valid adjacency");
            let fd = self.dist[fi];
            if fd == u64::MAX {
                continue;
            }
            let w = topo.link(link).expect("valid adjacency").cost as u64;
            if fd + w == d && (fd, from) < best {
                best = (fd, from);
            }
        }
        best.1
    }

    /// Node indices of the tree subtree rooted at index `root`
    /// (inclusive), found by one pass grouping nodes under their parent.
    fn subtree_of(&self, topo: &Topology, root: usize) -> Vec<usize> {
        let n = self.prev.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &p) in self.prev.iter().enumerate() {
            if p != NO_NODE {
                let pi = topo.index_of(p).expect("parents are known nodes");
                children[pi].push(i);
            }
        }
        let mut out = vec![root];
        let mut k = 0;
        while k < out.len() {
            let cur = out[k];
            k += 1;
            out.extend_from_slice(&children[cur]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cspf::{shortest_path, Constraint};
    use crate::topology::{LinkSpec, RouterRole, Topology};
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn reference(
        topo: &Topology,
        from: NodeId,
        to: NodeId,
        failed: &HashSet<LinkId>,
    ) -> Option<Vec<NodeId>> {
        let constraint = Constraint {
            exclude_links: failed.clone(),
            ..Default::default()
        };
        shortest_path(topo, from, to, &constraint, &|_| u64::MAX).ok()
    }

    fn line3() -> Topology {
        let mut t = Topology::new();
        for i in 0..3 {
            t.add_node(i, RouterRole::Lsr, format!("n{i}"));
        }
        for (a, b) in [(0, 1), (1, 2)] {
            t.add_link(LinkSpec {
                a,
                b,
                cost: 1,
                bandwidth_bps: 1,
                delay_ns: 1,
            });
        }
        t
    }

    #[test]
    fn matches_full_dijkstra_on_figure1() {
        let topo = Topology::figure1_example();
        let none = HashSet::new();
        let tree = SptTree::build(&topo, 0, &|_| true);
        for n in topo.nodes() {
            assert_eq!(tree.path(&topo, n.id), reference(&topo, 0, n.id, &none));
        }
    }

    #[test]
    fn link_down_and_up_repair_to_the_full_answer() {
        let topo = Topology::figure1_example();
        let mut failed = HashSet::new();
        let mut tree = SptTree::build(&topo, 0, &|_| true);
        // Cut the north path's middle link (2-3), then restore it.
        let cut = topo.link_between(2, 3).unwrap();
        failed.insert(cut);
        tree.link_down(&topo, cut, &|l| !failed.contains(&l));
        assert_eq!(tree.path(&topo, 1), Some(vec![0, 4, 5, 1]));
        failed.remove(&cut);
        tree.link_up(&topo, cut, &|l| !failed.contains(&l));
        assert_eq!(tree.path(&topo, 1), Some(vec![0, 2, 3, 1]));
    }

    #[test]
    fn disconnection_is_reported_as_unreachable() {
        let topo = line3();
        let mut failed = HashSet::new();
        let mut tree = SptTree::build(&topo, 0, &|_| true);
        failed.insert(1); // link 1-2
        tree.link_down(&topo, 1, &|l| !failed.contains(&l));
        assert_eq!(tree.path(&topo, 2), None);
        assert_eq!(tree.cost(&topo, 2), None);
        assert_eq!(tree.path(&topo, 1), Some(vec![0, 1]));
    }

    #[test]
    fn trivial_paths() {
        let topo = line3();
        let tree = SptTree::build(&topo, 1, &|_| true);
        assert_eq!(tree.path(&topo, 1), Some(vec![1]));
        assert_eq!(tree.cost(&topo, 1), Some(0));
        assert_eq!(tree.path(&topo, 99), None);
    }

    /// Random graph + random fail/restore sequence: after every delta the
    /// repaired tree answers every pair exactly like a fresh
    /// `shortest_path` — the invariant the signaling cache relies on.
    fn random_topo(n: u32, extra: &[(u32, u32, u32)]) -> Topology {
        let mut t = Topology::new();
        for i in 0..n {
            t.add_node(i, RouterRole::Lsr, format!("n{i}"));
        }
        // A ring keeps the base graph connected; extra chords add tie-rich
        // alternative paths.
        for i in 0..n {
            t.add_link(LinkSpec {
                a: i,
                b: (i + 1) % n,
                cost: 1,
                bandwidth_bps: 1,
                delay_ns: 1,
            });
        }
        for &(a, b, cost) in extra {
            let (a, b) = (a % n, b % n);
            if a != b {
                t.add_link(LinkSpec {
                    a,
                    b,
                    cost: cost.clamp(1, 4),
                    bandwidth_bps: 1,
                    delay_ns: 1,
                });
            }
        }
        t
    }

    proptest! {
        #[test]
        fn delta_tree_agrees_with_full_shortest_path(
            n in 4u32..12,
            extra in proptest::collection::vec((0u32..12, 0u32..12, 1u32..4), 0..10),
            deltas in proptest::collection::vec((0u32..32, 0u32..2), 1..12,),
            src in 0u32..12,
        ) {
            let topo = random_topo(n, &extra);
            let src = src % n;
            let mut failed: HashSet<LinkId> = HashSet::new();
            let mut tree = SptTree::build(&topo, src, &|_| true);
            for (pick, down) in deltas {
                let link = pick % topo.links().len() as u32;
                let down = down == 1;
                if down {
                    if failed.insert(link) {
                        tree.link_down(&topo, link, &|l| !failed.contains(&l));
                    }
                } else if failed.remove(&link) {
                    tree.link_up(&topo, link, &|l| !failed.contains(&l));
                }
                for node in topo.nodes() {
                    let want = reference(&topo, src, node.id, &failed);
                    prop_assert_eq!(
                        tree.path(&topo, node.id),
                        want,
                        "src {} to {} after {:?}",
                        src, node.id, failed
                    );
                }
            }
        }
    }
}
