//! LSP establishment, bandwidth admission control and hierarchical
//! tunnels.
//!
//! Models the outcome of ordered downstream-on-demand label distribution
//! (LDP/CR-LDP): the egress end of a path allocates the label it wants to
//! receive, labels propagate upstream, and every node on the path gets
//! forwarding state. Bandwidth reservations implement the admission-
//! control half of the integrated-services QoS story (§1, §2).
//!
//! # Tunnels and the hardware push operation
//!
//! The hardware push re-pushes the removed top entry *unchanged* beneath
//! the new label (paper Fig. 9: `PUSH OLD`, `PUSH NEW`), so a label that
//! enters a tunnel emerges from it with the same value. Two consequences,
//! both encoded here:
//!
//! * tunnels run penultimate-hop popping internally, so the tunnel tail
//!   receives the inner label on top and handles it as an ordinary
//!   transit hop;
//! * label values must be unique network-wide (not merely per node) for
//!   nested LSPs, so the control plane allocates from one shared space by
//!   default — strictly more conservative than per-platform spaces, never
//!   incorrect.

use crate::config::{BindingEntry, FecEntry, Hop, IpRoute, NextHopEntry, NodeConfig};
use crate::cspf::{shortest_path, Constraint, PathError};
use crate::label_alloc::LabelAllocator;
use crate::spt::SptTree;
use crate::topology::{LinkId, NodeId, RouterRole, Topology};
use mpls_dataplane::ftn::Prefix;
use mpls_dataplane::LabelOp;
use mpls_packet::{CosBits, Label};
use std::collections::{BTreeSet, HashMap};

/// LSP identifier.
pub type LspId = u32;
/// Tunnel identifier.
pub type TunnelId = u32;

/// Virtual node id used as the shared label space (see the module docs).
const GLOBAL_SPACE: NodeId = NodeId::MAX;

/// A request to establish an LSP between two LERs.
#[derive(Debug, Clone)]
pub struct LspRequest {
    /// Ingress LER.
    pub ingress: NodeId,
    /// Egress LER.
    pub egress: NodeId,
    /// The FEC: packets to this prefix ride the LSP.
    pub fec: Prefix,
    /// CoS stamped on the pushed label.
    pub cos: CosBits,
    /// Bandwidth to reserve on every traversed link (0 = best effort).
    pub bandwidth_bps: u64,
    /// Pin the path explicitly (CR-LDP/RSVP-TE explicit route); `None`
    /// lets CSPF choose.
    pub explicit_route: Option<Vec<NodeId>>,
    /// Penultimate-hop popping: the last LSR pops and the egress receives
    /// plain IP.
    pub php: bool,
}

impl LspRequest {
    /// A best-effort request with CSPF routing and no PHP.
    pub fn best_effort(ingress: NodeId, egress: NodeId, fec: Prefix) -> Self {
        Self {
            ingress,
            egress,
            fec,
            cos: CosBits::BEST_EFFORT,
            bandwidth_bps: 0,
            explicit_route: None,
            php: false,
        }
    }
}

/// Why signaling failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignalError {
    /// Path computation failed.
    Path(PathError),
    /// A link on the requested route lacks unreserved bandwidth.
    InsufficientBandwidth {
        /// The saturated link.
        link: LinkId,
    },
    /// Ingress/egress of an LSP must be LERs.
    NotALer(NodeId),
    /// The explicit route is not a connected path with the right
    /// endpoints.
    BadExplicitRoute,
    /// No such tunnel.
    UnknownTunnel(TunnelId),
    /// A tunnel needs at least one interior LSR.
    TunnelTooShort,
    /// The label space ran out.
    LabelSpaceExhausted,
    /// No such LSP.
    UnknownLsp(LspId),
    /// An explicit route traverses a failed link.
    LinkFailed(LinkId),
}

/// A fully signaled LSP: its logical path, per-hop labels, and the
/// forwarding state it contributed.
#[derive(Debug, Clone)]
pub struct SignaledLsp {
    /// Identifier.
    pub id: LspId,
    /// The request that created it.
    pub request: LspRequest,
    /// Logical node path (a tunnel collapses to the head–tail adjacency).
    pub path: Vec<NodeId>,
    /// `hop_labels[i]` travels on the logical hop `path[i] -> path[i+1]`.
    pub hop_labels: Vec<Label>,
    /// Physical links reserved.
    pub reserved_links: Vec<LinkId>,
    bindings: Vec<BindingEntry>,
    next_hops: Vec<NextHopEntry>,
    fecs: Vec<FecEntry>,
    ip_routes: Vec<IpRoute>,
    /// Pre-signaled but not steering traffic: transit state is installed,
    /// ingress classification is withheld until activation (see
    /// [`ControlPlane::protect_lsp`]).
    standby: bool,
}

impl SignaledLsp {
    /// True while this LSP is a pre-signaled standby backup.
    pub fn is_standby(&self) -> bool {
        self.standby
    }
}

/// A signaled hierarchical tunnel (an LSP between two core nodes carrying
/// other LSPs — paper Fig. 3).
#[derive(Debug, Clone)]
pub struct Tunnel {
    /// Identifier.
    pub id: TunnelId,
    /// Tunnel head (performs the push).
    pub head: NodeId,
    /// Tunnel tail (receives the inner label after interior PHP).
    pub tail: NodeId,
    /// Physical path including head and tail.
    pub path: Vec<NodeId>,
    /// Label pushed at the head (the first interior hop's label).
    pub entry_label: Label,
    /// Per-hop labels along the interior.
    pub hop_labels: Vec<Label>,
    /// Physical links reserved.
    pub reserved_links: Vec<LinkId>,
    bindings: Vec<BindingEntry>,
    next_hops: Vec<NextHopEntry>,
}

/// The tunnel facts `build_lsp_state` needs at the head of an LSP that
/// rides a tunnel — resolved once by the caller so state generation
/// never scans the tunnel table.
#[derive(Debug, Clone, Copy)]
struct TunnelHop {
    head: NodeId,
    tail: NodeId,
    /// The tunnel's penultimate node (performs the interior PHP pop).
    penultimate: NodeId,
    entry_label: Label,
}

/// The control plane: owns the topology, the label space, the bandwidth
/// ledger and all signaled state.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    topo: Topology,
    alloc: LabelAllocator,
    reserved: HashMap<LinkId, u64>,
    lsps: HashMap<LspId, SignaledLsp>,
    tunnels: HashMap<TunnelId, Tunnel>,
    attached: Vec<IpRoute>,
    failed_links: std::collections::HashSet<LinkId>,
    /// Primary LSP -> its pre-signaled standby backup.
    backups: HashMap<LspId, LspId>,
    next_lsp: LspId,
    next_tunnel: TunnelId,
    /// Delta-CSPF cache: one incrementally repaired shortest-path tree
    /// per head end that has signaled an unconstrained request. Repaired
    /// in place on `fail_link`/`restore_link`.
    spt_cache: HashMap<NodeId, SptTree>,
    /// The canonical-parent equivalence behind the cache requires every
    /// link cost ≥ 1 (see [`crate::spt`]); computed once — the topology
    /// is immutable after construction.
    spt_cacheable: bool,
    /// Node -> ids of LSPs with state at that node, ascending. Makes
    /// `config_for` O(state at node) instead of O(all LSPs).
    lsps_by_node: HashMap<NodeId, Vec<LspId>>,
    /// Node -> ids of tunnels with state at that node, ascending.
    tunnels_by_node: HashMap<NodeId, Vec<TunnelId>>,
}

impl ControlPlane {
    /// Creates a control plane over `topo`.
    pub fn new(topo: Topology) -> Self {
        let spt_cacheable = topo.links().iter().all(|l| l.cost >= 1);
        Self {
            topo,
            alloc: LabelAllocator::new(),
            reserved: HashMap::new(),
            lsps: HashMap::new(),
            tunnels: HashMap::new(),
            attached: Vec::new(),
            failed_links: std::collections::HashSet::new(),
            backups: HashMap::new(),
            next_lsp: 1,
            next_tunnel: 1,
            spt_cache: HashMap::new(),
            spt_cacheable,
            lsps_by_node: HashMap::new(),
            tunnels_by_node: HashMap::new(),
        }
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Declares `prefix` as locally attached at `node` (a layer-2 network
    /// behind an LER): unlabeled packets for it are delivered locally.
    pub fn attach_prefix(&mut self, node: NodeId, prefix: Prefix) {
        self.attached.push(IpRoute {
            node,
            prefix,
            next: Hop::Local,
        });
    }

    /// The locally attached prefixes declared so far, in declaration
    /// order. A distributed control plane seeds its egress originations
    /// from these instead of consulting the omniscient solver.
    pub fn attached_routes(&self) -> &[IpRoute] {
        &self.attached
    }

    /// Unreserved bandwidth on `link` (zero while the link is failed).
    pub fn available_bandwidth(&self, link: LinkId) -> u64 {
        if self.failed_links.contains(&link) {
            return 0;
        }
        let cap = self.topo.link(link).map(|l| l.bandwidth_bps).unwrap_or(0);
        cap.saturating_sub(self.reserved.get(&link).copied().unwrap_or(0))
    }

    // ---- restoration -----------------------------------------------------

    /// Marks `link` failed and returns the ids of LSPs whose paths
    /// traverse it, in id order. The LSPs keep their (now broken) state
    /// until [`Self::reroute_lsp`] or [`Self::teardown_lsp`] is called —
    /// mirroring how a head end learns of a failure and re-signals.
    ///
    /// **Scope:** this mutates only the control plane. A
    /// `mpls_net::Simulation` clones the control plane when it is built,
    /// so calling `fail_link` on the original afterwards does not affect
    /// that simulation — schedule runtime failures through the
    /// simulator's `FaultPlan` instead, which drives this method on its
    /// own clone at fault-detection time.
    pub fn fail_link(&mut self, link: LinkId) -> Vec<LspId> {
        if self.failed_links.insert(link) {
            let (topo, failed) = (&self.topo, &self.failed_links);
            for tree in self.spt_cache.values_mut() {
                tree.link_down(topo, link, &|l| !failed.contains(&l));
            }
        }
        let mut affected: Vec<LspId> = self
            .lsps
            .values()
            .filter(|l| l.reserved_links.contains(&link))
            .map(|l| l.id)
            .collect();
        affected.sort_unstable();
        affected
    }

    /// Clears a link failure.
    pub fn restore_link(&mut self, link: LinkId) {
        if self.failed_links.remove(&link) {
            let (topo, failed) = (&self.topo, &self.failed_links);
            for tree in self.spt_cache.values_mut() {
                tree.link_up(topo, link, &|l| !failed.contains(&l));
            }
        }
    }

    /// True while `link` is marked failed.
    pub fn link_is_failed(&self, link: LinkId) -> bool {
        self.failed_links.contains(&link)
    }

    /// Re-signals an LSP around the current failures: tears the old path
    /// down and recomputes with CSPF (an explicit route on the original
    /// request is abandoned — restoration outranks pinning). Returns the
    /// replacement LSP's id.
    pub fn reroute_lsp(&mut self, id: LspId) -> Result<LspId, SignalError> {
        let mut request = self
            .lsps
            .get(&id)
            .ok_or(SignalError::UnknownLsp(id))?
            .request
            .clone();
        self.teardown_lsp(id)?;
        request.explicit_route = None;
        self.establish_lsp(request)
    }

    // ---- protection ------------------------------------------------------

    /// Pre-signals a link-disjoint standby backup for `primary`
    /// (1:1 path protection). The backup reserves bandwidth and installs
    /// transit forwarding state immediately — failover later only has to
    /// reprogram the head end — but its ingress classification (FEC and
    /// level-1 steering entries) is withheld until
    /// [`Self::activate_backup`]. Returns the backup's id.
    pub fn protect_lsp(&mut self, primary: LspId) -> Result<LspId, SignalError> {
        let p = self
            .lsps
            .get(&primary)
            .ok_or(SignalError::UnknownLsp(primary))?;
        let mut request = p.request.clone();
        let avoid: std::collections::HashSet<LinkId> = p.reserved_links.iter().copied().collect();
        // A disjoint path must avoid every link of the primary as well as
        // anything already failed.
        let path = self.cspf_excluding(
            request.ingress,
            request.egress,
            request.bandwidth_bps,
            &avoid,
        )?;
        request.explicit_route = Some(path);
        let id = self.establish_lsp(request)?;
        self.lsps.get_mut(&id).expect("just established").standby = true;
        self.backups.insert(primary, id);
        Ok(id)
    }

    /// The pre-signaled backup of `primary`, if any.
    pub fn backup_of(&self, primary: LspId) -> Option<LspId> {
        self.backups.get(&primary).copied()
    }

    /// True while `id` is a standby (pre-signaled, not steering traffic).
    pub fn lsp_is_standby(&self, id: LspId) -> bool {
        self.lsps.get(&id).map(|l| l.standby).unwrap_or(false)
    }

    /// True when none of the LSP's reserved links is failed.
    pub fn lsp_is_intact(&self, id: LspId) -> bool {
        self.lsps
            .get(&id)
            .map(|l| {
                !l.reserved_links
                    .iter()
                    .any(|k| self.failed_links.contains(k))
            })
            .unwrap_or(false)
    }

    /// Fails over `primary` onto its backup: the backup starts steering
    /// traffic (its ingress classification becomes live) and the broken
    /// primary stops. Returns the backup's id, or `None` when no backup
    /// is registered. The caller must re-derive node configurations
    /// afterwards (the head end reprograms).
    pub fn activate_backup(&mut self, primary: LspId) -> Option<LspId> {
        let backup = self.backups.remove(&primary)?;
        self.lsps.get_mut(&backup)?.standby = false;
        if let Some(p) = self.lsps.get_mut(&primary) {
            p.standby = true;
        }
        Some(backup)
    }

    /// Tears down a broken standby backup, releasing its resources and
    /// leaving its primary unprotected.
    pub fn teardown_standby(&mut self, standby: LspId) -> Result<(), SignalError> {
        self.backups.retain(|_, &mut b| b != standby);
        self.teardown_lsp(standby)
    }

    /// Retires an LSP to standby: its ingress classification is withdrawn
    /// (new packets no longer steer onto it) while its transit state
    /// stays installed so packets already in the pipeline keep their
    /// forwarding entries. Used for make-before-break switchover — the
    /// husk is torn down once the pipeline has drained.
    pub fn retire_lsp(&mut self, id: LspId) -> Result<(), SignalError> {
        self.lsps
            .get_mut(&id)
            .ok_or(SignalError::UnknownLsp(id))?
            .standby = true;
        Ok(())
    }

    /// A signaled LSP.
    pub fn lsp(&self, id: LspId) -> Option<&SignaledLsp> {
        self.lsps.get(&id)
    }

    /// A signaled tunnel.
    pub fn tunnel(&self, id: TunnelId) -> Option<&Tunnel> {
        self.tunnels.get(&id)
    }

    /// Ids of all live LSPs.
    pub fn lsp_ids(&self) -> Vec<LspId> {
        let mut v: Vec<_> = self.lsps.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Labels currently allocated from the shared global space (net of
    /// releases) — the scarce resource at million-LSP scale.
    pub fn labels_allocated(&self) -> usize {
        self.alloc.allocated_count(GLOBAL_SPACE)
    }

    /// Aggregates the forwarding configuration for one node across every
    /// signaled LSP, tunnel and attachment.
    pub fn config_for(&self, node: NodeId) -> NodeConfig {
        let mut cfg = NodeConfig::default();
        // The per-node index lists ids ascending (ids are monotonic and
        // appended at install time), so the aggregation order — and the
        // resulting first-binding-wins FIB — is identical to walking
        // every LSP sorted by id, at O(state at this node).
        static NO_LSPS: Vec<LspId> = Vec::new();
        let lsp_ids = self.lsps_by_node.get(&node).unwrap_or(&NO_LSPS);
        for id in lsp_ids {
            let lsp = &self.lsps[id];
            // A standby backup keeps its transit state (levels 2/3 and
            // next hops) installed so failover is head-end-only, but its
            // ingress steering — FEC classification and exact level-1
            // pairs — stays out until activation.
            cfg.bindings.extend(
                lsp.bindings
                    .iter()
                    .filter(|b| b.node == node && !(lsp.standby && b.level == 1)),
            );
            cfg.next_hops
                .extend(lsp.next_hops.iter().filter(|n| n.node == node));
            if !lsp.standby {
                cfg.fecs.extend(lsp.fecs.iter().filter(|f| f.node == node));
            }
            cfg.ip_routes
                .extend(lsp.ip_routes.iter().filter(|r| r.node == node));
        }
        static NO_TUNNELS: Vec<TunnelId> = Vec::new();
        let tunnel_ids = self.tunnels_by_node.get(&node).unwrap_or(&NO_TUNNELS);
        for id in tunnel_ids {
            let t = &self.tunnels[id];
            cfg.bindings
                .extend(t.bindings.iter().filter(|b| b.node == node));
            cfg.next_hops
                .extend(t.next_hops.iter().filter(|n| n.node == node));
        }
        cfg.ip_routes
            .extend(self.attached.iter().filter(|r| r.node == node));
        cfg
    }

    // ---- establishment ---------------------------------------------------

    /// Establishes an LSP over physical links.
    pub fn establish_lsp(&mut self, request: LspRequest) -> Result<LspId, SignalError> {
        self.check_ler(request.ingress)?;
        self.check_ler(request.egress)?;
        let path = self.resolve_route(&request)?;
        let links = self.reserve_path(&path, request.bandwidth_bps)?;
        match self.build_lsp_state(&request, &path, None) {
            Ok(lsp_state) => Ok(self.install_lsp(request, path, links, lsp_state)),
            Err(e) => {
                self.release_links(&links, request.bandwidth_bps);
                Err(e)
            }
        }
    }

    /// Establishes an LSP whose route traverses `tunnel` between the
    /// tunnel's head and tail.
    pub fn establish_lsp_via_tunnel(
        &mut self,
        request: LspRequest,
        tunnel: TunnelId,
    ) -> Result<LspId, SignalError> {
        self.check_ler(request.ingress)?;
        self.check_ler(request.egress)?;
        let t = self
            .tunnels
            .get(&tunnel)
            .ok_or(SignalError::UnknownTunnel(tunnel))?;
        let hop = TunnelHop {
            head: t.head,
            tail: t.tail,
            penultimate: t.path[t.path.len() - 2],
            entry_label: t.entry_label,
        };

        // Route the two physical segments; the tunnel is one logical hop.
        let seg1 = self.cspf(request.ingress, hop.head, request.bandwidth_bps)?;
        let seg2 = self.cspf(hop.tail, request.egress, request.bandwidth_bps)?;
        let mut path = seg1.clone();
        path.extend_from_slice(&seg2);

        let mut links = self.reserve_path(&seg1, request.bandwidth_bps)?;
        match self.reserve_path(&seg2, request.bandwidth_bps) {
            Ok(more) => links.extend(more),
            Err(e) => {
                self.release_links(&links, request.bandwidth_bps);
                return Err(e);
            }
        }
        match self.build_lsp_state(&request, &path, Some(hop)) {
            Ok(state) => Ok(self.install_lsp(request, path, links, state)),
            Err(e) => {
                self.release_links(&links, request.bandwidth_bps);
                Err(e)
            }
        }
    }

    /// Establishes a hierarchical tunnel between two core nodes. The
    /// interior runs PHP so the tail receives inner labels directly.
    pub fn establish_tunnel(
        &mut self,
        head: NodeId,
        tail: NodeId,
        bandwidth_bps: u64,
        explicit_route: Option<Vec<NodeId>>,
    ) -> Result<TunnelId, SignalError> {
        let path = match explicit_route {
            Some(p) => {
                if p.first() != Some(&head) || p.last() != Some(&tail) {
                    return Err(SignalError::BadExplicitRoute);
                }
                if self.topo.path_links(&p).is_none() {
                    return Err(SignalError::BadExplicitRoute);
                }
                p
            }
            None => self.cspf(head, tail, bandwidth_bps)?,
        };
        if path.len() < 3 {
            // Push at head, PHP-pop at the penultimate: needs ≥1 interior.
            return Err(SignalError::TunnelTooShort);
        }
        let links = self.reserve_path(&path, bandwidth_bps)?;

        // Downstream allocation along the interior.
        let mut hop_labels = Vec::with_capacity(path.len() - 1);
        for _ in 1..path.len() {
            match self.alloc.allocate(GLOBAL_SPACE) {
                Ok(l) => hop_labels.push(l),
                Err(_) => {
                    self.release_links(&links, bandwidth_bps);
                    return Err(SignalError::LabelSpaceExhausted);
                }
            }
        }

        let mut bindings = Vec::new();
        let mut next_hops = Vec::new();
        // Head: next hop for the entry label (the push binding itself is
        // installed per inner LSP).
        next_hops.push(NextHopEntry {
            node: head,
            label: Some(hop_labels[0]),
            next: Hop::Node(path[1]),
        });
        // Interior nodes: depth-2 arrivals -> level 3. The last interior
        // node pops (PHP); the rest swap.
        for i in 1..path.len() - 1 {
            let node = path[i];
            let in_label = hop_labels[i - 1];
            let penultimate = i == path.len() - 2;
            if penultimate {
                bindings.push(BindingEntry {
                    node,
                    level: 3,
                    key: in_label.value() as u64,
                    new_label: Label::IPV4_EXPLICIT_NULL,
                    op: LabelOp::Pop,
                });
                // After the pop the inner label leads; the inner LSPs
                // install no next hop here, so route the *inner* label via
                // the tail. We cannot know inner labels in advance, so the
                // penultimate forwards by its per-inner-label next-hop
                // entries installed at inner-LSP setup time (see
                // build_lsp_state's tunnel handling).
            } else {
                bindings.push(BindingEntry {
                    node,
                    level: 3,
                    key: in_label.value() as u64,
                    new_label: hop_labels[i],
                    op: LabelOp::Swap,
                });
                next_hops.push(NextHopEntry {
                    node,
                    label: Some(hop_labels[i]),
                    next: Hop::Node(path[i + 1]),
                });
            }
        }

        let id = self.next_tunnel;
        self.next_tunnel += 1;
        let nodes: BTreeSet<NodeId> = bindings
            .iter()
            .map(|b| b.node)
            .chain(next_hops.iter().map(|n| n.node))
            .collect();
        for node in nodes {
            self.tunnels_by_node.entry(node).or_default().push(id);
        }
        self.tunnels.insert(
            id,
            Tunnel {
                id,
                head,
                tail,
                path,
                entry_label: hop_labels[0],
                hop_labels,
                reserved_links: links,
                bindings,
                next_hops,
            },
        );
        Ok(id)
    }

    /// Tears an LSP down, releasing its bandwidth and labels. Any
    /// protection relationship it participates in is dissolved.
    pub fn teardown_lsp(&mut self, id: LspId) -> Result<(), SignalError> {
        let lsp = self.lsps.remove(&id).ok_or(SignalError::UnknownLsp(id))?;
        self.backups.remove(&id);
        self.backups.retain(|_, &mut b| b != id);
        self.release_links(&lsp.reserved_links, lsp.request.bandwidth_bps);
        let nodes: BTreeSet<NodeId> = lsp
            .bindings
            .iter()
            .map(|b| b.node)
            .chain(lsp.next_hops.iter().map(|n| n.node))
            .chain(lsp.fecs.iter().map(|f| f.node))
            .chain(lsp.ip_routes.iter().map(|r| r.node))
            .collect();
        for node in nodes {
            if let Some(ids) = self.lsps_by_node.get_mut(&node) {
                ids.retain(|&l| l != id);
            }
        }
        for l in lsp.hop_labels {
            self.alloc.release(GLOBAL_SPACE, l);
        }
        Ok(())
    }

    // ---- internals ---------------------------------------------------------

    fn check_ler(&self, node: NodeId) -> Result<(), SignalError> {
        match self.topo.node(node) {
            Some(spec) if spec.role == RouterRole::Ler => Ok(()),
            Some(_) => Err(SignalError::NotALer(node)),
            None => Err(SignalError::Path(PathError::UnknownNode(node))),
        }
    }

    fn cspf(&mut self, from: NodeId, to: NodeId, bw: u64) -> Result<Vec<NodeId>, SignalError> {
        self.cspf_excluding(from, to, bw, &std::collections::HashSet::new())
    }

    fn cspf_excluding(
        &mut self,
        from: NodeId,
        to: NodeId,
        bw: u64,
        avoid: &std::collections::HashSet<LinkId>,
    ) -> Result<Vec<NodeId>, SignalError> {
        // Delta-CSPF fast path: an unconstrained request (no bandwidth
        // floor, no extra exclusions) sees exactly "shortest path over
        // non-failed links" — answered from the head end's cached tree,
        // which fail_link/restore_link repair incrementally. The cache
        // reproduces shortest_path byte-for-byte (see crate::spt), so
        // this is a pure strength reduction: O(path) per signaled LSP
        // instead of O(graph).
        if self.spt_cacheable && bw == 0 && avoid.is_empty() {
            if self.topo.node(from).is_none() {
                return Err(SignalError::Path(PathError::UnknownNode(from)));
            }
            if self.topo.node(to).is_none() {
                return Err(SignalError::Path(PathError::UnknownNode(to)));
            }
            let (topo, failed) = (&self.topo, &self.failed_links);
            let tree = self
                .spt_cache
                .entry(from)
                .or_insert_with(|| SptTree::build(topo, from, &|l| !failed.contains(&l)));
            return tree
                .path(topo, to)
                .ok_or(SignalError::Path(PathError::NoPath));
        }
        // Failed links are excluded outright — a zero-bandwidth
        // (best-effort) request must still avoid them.
        let mut exclude_links = self.failed_links.clone();
        exclude_links.extend(avoid.iter().copied());
        let constraint = Constraint {
            min_bandwidth_bps: bw,
            exclude_links,
            ..Default::default()
        };
        shortest_path(&self.topo, from, to, &constraint, &|l| {
            self.available_bandwidth(l)
        })
        .map_err(SignalError::Path)
    }

    fn resolve_route(&mut self, request: &LspRequest) -> Result<Vec<NodeId>, SignalError> {
        match &request.explicit_route {
            Some(p) => {
                if p.first() != Some(&request.ingress) || p.last() != Some(&request.egress) {
                    return Err(SignalError::BadExplicitRoute);
                }
                let Some(links) = self.topo.path_links(p) else {
                    return Err(SignalError::BadExplicitRoute);
                };
                if let Some(&dead) = links.iter().find(|l| self.failed_links.contains(l)) {
                    return Err(SignalError::LinkFailed(dead));
                }
                Ok(p.clone())
            }
            None => self.cspf(request.ingress, request.egress, request.bandwidth_bps),
        }
    }

    /// Reserves `bw` on every link of `path`, rolling back on failure.
    fn reserve_path(&mut self, path: &[NodeId], bw: u64) -> Result<Vec<LinkId>, SignalError> {
        let links = self
            .topo
            .path_links(path)
            .expect("routes are validated before reservation");
        for (i, &link) in links.iter().enumerate() {
            if self.available_bandwidth(link) < bw {
                // Roll back what we already took.
                for &l in &links[..i] {
                    *self.reserved.get_mut(&l).expect("reserved above") -= bw;
                }
                return Err(SignalError::InsufficientBandwidth { link });
            }
            *self.reserved.entry(link).or_insert(0) += bw;
        }
        Ok(links)
    }

    fn release_links(&mut self, links: &[LinkId], bw: u64) {
        for &l in links {
            if let Some(r) = self.reserved.get_mut(&l) {
                *r = r.saturating_sub(bw);
            }
        }
    }

    /// Allocates labels and generates forwarding state for a (logical)
    /// path. `tunnel` marks the node that is a tunnel head on this path,
    /// with the tunnel's entry label and penultimate/tail nodes: at the
    /// head the LSP *pushes* into the tunnel, and the label is preserved
    /// across the head–tail hop.
    #[allow(clippy::type_complexity)]
    fn build_lsp_state(
        &mut self,
        request: &LspRequest,
        path: &[NodeId],
        tunnel: Option<TunnelHop>,
    ) -> Result<
        (
            Vec<Label>,
            Vec<BindingEntry>,
            Vec<NextHopEntry>,
            Vec<FecEntry>,
            Vec<IpRoute>,
        ),
        SignalError,
    > {
        let hops = path.len() - 1;
        // Under PHP the final hop's label is never used — the packet
        // leaves the penultimate node unlabeled — so it is not allocated.
        // At million-LSP scale this is what keeps a tunneled PHP LSP at
        // one label from the shared 2^20 space.
        let alloc_hops = if request.php && hops >= 2 {
            hops - 1
        } else {
            hops
        };
        let mut hop_labels: Vec<Label> = Vec::with_capacity(alloc_hops);
        for i in 0..alloc_hops {
            let from = path[i];
            // Across a tunnel the hardware push preserves the inner label:
            // hop label (head -> tail) equals the label into the head.
            if let Some(t) = &tunnel {
                if from == t.head && i > 0 {
                    hop_labels.push(hop_labels[i - 1]);
                    continue;
                }
            }
            let l = self
                .alloc
                .allocate(GLOBAL_SPACE)
                .map_err(|_| SignalError::LabelSpaceExhausted)?;
            hop_labels.push(l);
        }

        let mut bindings = Vec::new();
        let mut next_hops = Vec::new();
        let mut fecs = Vec::new();
        let mut ip_routes = Vec::new();
        let last = path.len() - 1;

        // Ingress LER.
        fecs.push(FecEntry {
            node: path[0],
            prefix: request.fec,
            push_label: hop_labels[0],
            cos: request.cos,
        });
        if request.fec.len == 32 {
            // Host FEC: the exact level-1 pair can be preinstalled.
            bindings.push(BindingEntry {
                node: path[0],
                level: 1,
                key: request.fec.addr as u64,
                new_label: hop_labels[0],
                op: LabelOp::Push,
            });
        }
        next_hops.push(NextHopEntry {
            node: path[0],
            label: Some(hop_labels[0]),
            next: Hop::Node(path[1]),
        });

        // Transit nodes.
        for i in 1..last {
            let node = path[i];
            let in_label = hop_labels[i - 1];
            let is_tunnel_head = tunnel.as_ref().map(|t| t.head == node).unwrap_or(false);

            if is_tunnel_head {
                // Push into the tunnel; the inner label is preserved.
                let t = tunnel.as_ref().expect("checked above");
                bindings.push(BindingEntry {
                    node,
                    level: 2,
                    key: in_label.value() as u64,
                    new_label: t.entry_label,
                    op: LabelOp::Push,
                });
                // Next hop for the tunnel entry label exists from tunnel
                // establishment. Additionally, the tunnel's penultimate
                // node needs to route this inner label to the tail after
                // its PHP pop.
                next_hops.push(NextHopEntry {
                    node: t.penultimate,
                    label: Some(in_label),
                    next: Hop::Node(t.tail),
                });
                continue;
            }

            let php_pop = request.php && i == last - 1;
            if php_pop {
                bindings.push(BindingEntry {
                    node,
                    level: 2,
                    key: in_label.value() as u64,
                    new_label: Label::IPV4_EXPLICIT_NULL,
                    op: LabelOp::Pop,
                });
                // After the pop the packet is unlabeled: IP-route it to the
                // egress.
                ip_routes.push(IpRoute {
                    node,
                    prefix: request.fec,
                    next: Hop::Node(path[last]),
                });
            } else {
                let out_label = hop_labels[i];
                bindings.push(BindingEntry {
                    node,
                    level: 2,
                    key: in_label.value() as u64,
                    new_label: out_label,
                    op: LabelOp::Swap,
                });
                next_hops.push(NextHopEntry {
                    node,
                    label: Some(out_label),
                    next: Hop::Node(path[i + 1]),
                });
            }
        }

        // Egress LER.
        if !request.php {
            bindings.push(BindingEntry {
                node: path[last],
                level: 2,
                key: hop_labels[last - 1].value() as u64,
                new_label: Label::IPV4_EXPLICIT_NULL,
                op: LabelOp::Pop,
            });
        }
        // The FEC is attached behind the egress: deliver locally once
        // unlabeled.
        ip_routes.push(IpRoute {
            node: path[last],
            prefix: request.fec,
            next: Hop::Local,
        });

        Ok((hop_labels, bindings, next_hops, fecs, ip_routes))
    }

    #[allow(clippy::type_complexity)]
    fn install_lsp(
        &mut self,
        request: LspRequest,
        path: Vec<NodeId>,
        reserved_links: Vec<LinkId>,
        state: (
            Vec<Label>,
            Vec<BindingEntry>,
            Vec<NextHopEntry>,
            Vec<FecEntry>,
            Vec<IpRoute>,
        ),
    ) -> LspId {
        let (hop_labels, bindings, next_hops, fecs, ip_routes) = state;
        let id = self.next_lsp;
        self.next_lsp += 1;
        // Ids are monotonic and never reused, so appending keeps every
        // per-node list ascending — the order config_for aggregates in.
        let nodes: BTreeSet<NodeId> = bindings
            .iter()
            .map(|b| b.node)
            .chain(next_hops.iter().map(|n| n.node))
            .chain(fecs.iter().map(|f| f.node))
            .chain(ip_routes.iter().map(|r| r.node))
            .collect();
        for node in nodes {
            self.lsps_by_node.entry(node).or_default().push(id);
        }
        self.lsps.insert(
            id,
            SignaledLsp {
                id,
                request,
                path,
                hop_labels,
                reserved_links,
                bindings,
                next_hops,
                fecs,
                ip_routes,
                standby: false,
            },
        );
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn prefix(s: &str, len: u8) -> Prefix {
        Prefix::new(mpls_packet::ipv4::parse_addr(s).unwrap(), len)
    }

    fn plane() -> ControlPlane {
        ControlPlane::new(Topology::figure1_example())
    }

    #[test]
    fn basic_lsp_generates_push_swap_pop() {
        let mut cp = plane();
        let id = cp
            .establish_lsp(LspRequest::best_effort(0, 1, prefix("192.168.1.0", 24)))
            .unwrap();
        let lsp = cp.lsp(id).unwrap().clone();
        assert_eq!(lsp.path, vec![0, 2, 3, 1]);
        assert_eq!(lsp.hop_labels.len(), 3);

        let ingress = cp.config_for(0);
        assert_eq!(ingress.fecs.len(), 1);
        assert_eq!(ingress.fecs[0].push_label, lsp.hop_labels[0]);
        assert_eq!(
            ingress.next_hop_for(Some(lsp.hop_labels[0])),
            Some(Hop::Node(2))
        );

        let transit = cp.config_for(2);
        assert_eq!(transit.bindings.len(), 1);
        let b = transit.bindings[0];
        assert_eq!(b.level, 2);
        assert_eq!(b.key, lsp.hop_labels[0].value() as u64);
        assert_eq!(b.new_label, lsp.hop_labels[1]);
        assert_eq!(b.op, LabelOp::Swap);

        let egress = cp.config_for(1);
        assert_eq!(egress.bindings.len(), 1);
        assert_eq!(egress.bindings[0].op, LabelOp::Pop);
        assert_eq!(egress.ip_route_for(0xc0a80105), Some(Hop::Local));
    }

    #[test]
    fn host_fec_preinstalls_level1_binding() {
        let mut cp = plane();
        cp.establish_lsp(LspRequest::best_effort(0, 1, prefix("192.168.1.7", 32)))
            .unwrap();
        let ingress = cp.config_for(0);
        assert_eq!(ingress.bindings.len(), 1);
        assert_eq!(ingress.bindings[0].level, 1);
        assert_eq!(ingress.bindings[0].key, 0xc0a80107);
        assert_eq!(ingress.bindings[0].op, LabelOp::Push);
    }

    #[test]
    fn explicit_route_is_honored_and_validated() {
        let mut cp = plane();
        let mut req = LspRequest::best_effort(0, 1, prefix("10.0.0.0", 8));
        req.explicit_route = Some(vec![0, 4, 5, 1]);
        let id = cp.establish_lsp(req).unwrap();
        assert_eq!(cp.lsp(id).unwrap().path, vec![0, 4, 5, 1]);

        let mut bad = LspRequest::best_effort(0, 1, prefix("10.0.0.0", 8));
        bad.explicit_route = Some(vec![0, 3, 1]); // 0-3 not adjacent
        assert_eq!(cp.establish_lsp(bad), Err(SignalError::BadExplicitRoute));
    }

    #[test]
    fn admission_control_rejects_oversubscription() {
        let mut cp = plane();
        let mut req = LspRequest::best_effort(0, 1, prefix("10.0.0.0", 8));
        req.bandwidth_bps = 600_000_000;
        cp.establish_lsp(req.clone()).unwrap();
        // Second 600 Mb/s LSP cannot fit the 1 Gb/s north path; CSPF tries
        // the south path, whose links only carry 100 Mb/s.
        assert!(matches!(
            cp.establish_lsp(req.clone()),
            Err(SignalError::Path(PathError::NoPath))
        ));
        // With a pinned route the error is the saturated link.
        req.explicit_route = Some(vec![0, 2, 3, 1]);
        assert!(matches!(
            cp.establish_lsp(req),
            Err(SignalError::InsufficientBandwidth { .. })
        ));
    }

    #[test]
    fn teardown_releases_bandwidth() {
        let mut cp = plane();
        let link = cp.topology().link_between(0, 2).unwrap();
        let before = cp.available_bandwidth(link);
        let mut req = LspRequest::best_effort(0, 1, prefix("10.0.0.0", 8));
        req.bandwidth_bps = 400_000_000;
        let id = cp.establish_lsp(req).unwrap();
        assert_eq!(cp.available_bandwidth(link), before - 400_000_000);
        cp.teardown_lsp(id).unwrap();
        assert_eq!(cp.available_bandwidth(link), before);
        assert_eq!(cp.teardown_lsp(id), Err(SignalError::UnknownLsp(id)));
    }

    #[test]
    fn lsp_endpoints_must_be_lers() {
        let mut cp = plane();
        assert_eq!(
            cp.establish_lsp(LspRequest::best_effort(2, 1, prefix("10.0.0.0", 8))),
            Err(SignalError::NotALer(2))
        );
    }

    #[test]
    fn php_moves_pop_to_penultimate() {
        let mut cp = plane();
        let mut req = LspRequest::best_effort(0, 1, prefix("192.168.1.0", 24));
        req.php = true;
        let id = cp.establish_lsp(req).unwrap();
        let lsp = cp.lsp(id).unwrap().clone();
        // Penultimate LSR (node 3) pops and IP-routes to the egress.
        let penult = cp.config_for(3);
        assert_eq!(penult.bindings[0].op, LabelOp::Pop);
        assert_eq!(penult.ip_route_for(0xc0a80101), Some(Hop::Node(1)));
        // Egress has no binding for this LSP, only the local route.
        let egress = cp.config_for(1);
        assert!(egress.bindings.is_empty());
        assert_eq!(egress.ip_route_for(0xc0a80101), Some(Hop::Local));
        let _ = lsp;
    }

    #[test]
    fn tunnel_generates_level3_interior_with_php() {
        let mut cp = plane();
        let tid = cp.establish_tunnel(2, 1, 0, Some(vec![2, 3, 1])).unwrap();
        let t = cp.tunnel(tid).unwrap().clone();
        assert_eq!(t.head, 2);
        assert_eq!(t.tail, 1);
        // Single interior node (3) is penultimate: level-3 pop.
        let interior = cp.config_for(3);
        assert_eq!(interior.bindings.len(), 1);
        assert_eq!(interior.bindings[0].level, 3);
        assert_eq!(interior.bindings[0].op, LabelOp::Pop);
        // Head routes the entry label toward the interior.
        let head = cp.config_for(2);
        assert_eq!(head.next_hop_for(Some(t.entry_label)), Some(Hop::Node(3)));
    }

    #[test]
    fn tunnel_too_short_is_rejected() {
        let mut cp = plane();
        assert_eq!(
            cp.establish_tunnel(2, 3, 0, Some(vec![2, 3])),
            Err(SignalError::TunnelTooShort)
        );
    }

    #[test]
    fn lsp_via_tunnel_preserves_inner_label() {
        let mut cp = plane();
        // Tunnel across the north core.
        let tid = cp.establish_tunnel(2, 1, 0, Some(vec![2, 3, 1])).unwrap();
        // This topology's tail is the egress LER itself; an LSP 0->1 via
        // the tunnel: ingress 0, head 2, tail=egress 1.
        let req = LspRequest::best_effort(0, 1, prefix("192.168.9.0", 24));
        let id = cp.establish_lsp_via_tunnel(req, tid).unwrap();
        let lsp = cp.lsp(id).unwrap().clone();
        // Logical path collapses the tunnel to head–tail adjacency.
        assert_eq!(lsp.path, vec![0, 2, 1]);
        // The label into the head equals the label out of the tunnel.
        assert_eq!(lsp.hop_labels[0], lsp.hop_labels[1]);
        // Head pushes the tunnel entry label at level 2.
        let head = cp.config_for(2);
        let push = head
            .bindings
            .iter()
            .find(|b| b.op == LabelOp::Push)
            .expect("push binding at head");
        assert_eq!(push.level, 2);
        assert_eq!(push.key, lsp.hop_labels[0].value() as u64);
        assert_eq!(push.new_label, cp.tunnel(tid).unwrap().entry_label);
        // The tunnel's penultimate (3) routes the inner label to the tail.
        let penult = cp.config_for(3);
        assert_eq!(
            penult.next_hop_for(Some(lsp.hop_labels[0])),
            Some(Hop::Node(1))
        );
        // Egress (the tail) pops the inner label.
        let egress = cp.config_for(1);
        assert!(egress
            .bindings
            .iter()
            .any(|b| b.op == LabelOp::Pop && b.key == lsp.hop_labels[1].value() as u64));
    }

    #[test]
    fn link_failure_reports_affected_lsps_and_reroute_avoids_it() {
        let mut cp = plane();
        let id = cp
            .establish_lsp(LspRequest::best_effort(0, 1, prefix("192.168.1.0", 24)))
            .unwrap();
        assert_eq!(cp.lsp(id).unwrap().path, vec![0, 2, 3, 1]);

        let north_link = cp.topology().link_between(2, 3).unwrap();
        let affected = cp.fail_link(north_link);
        assert_eq!(affected, vec![id]);
        assert!(cp.link_is_failed(north_link));
        assert_eq!(cp.available_bandwidth(north_link), 0);

        let new_id = cp.reroute_lsp(id).unwrap();
        assert_ne!(new_id, id);
        assert!(cp.lsp(id).is_none(), "old LSP torn down");
        assert_eq!(cp.lsp(new_id).unwrap().path, vec![0, 4, 5, 1]);

        // Restoration: the link comes back and new LSPs may use it again.
        cp.restore_link(north_link);
        assert!(cp.available_bandwidth(north_link) > 0);
        let back = cp
            .establish_lsp(LspRequest::best_effort(0, 1, prefix("192.168.7.0", 24)))
            .unwrap();
        assert_eq!(cp.lsp(back).unwrap().path, vec![0, 2, 3, 1]);
    }

    #[test]
    fn failure_of_unused_link_affects_nothing() {
        let mut cp = plane();
        let id = cp
            .establish_lsp(LspRequest::best_effort(0, 1, prefix("192.168.1.0", 24)))
            .unwrap();
        let south_link = cp.topology().link_between(4, 5).unwrap();
        assert!(cp.fail_link(south_link).is_empty());
        assert!(cp.lsp(id).is_some());
    }

    #[test]
    fn reroute_fails_when_disconnected() {
        let mut cp = plane();
        let id = cp
            .establish_lsp(LspRequest::best_effort(0, 1, prefix("192.168.1.0", 24)))
            .unwrap();
        // Sever both exits from node 0.
        cp.fail_link(cp.topology().link_between(0, 2).unwrap());
        cp.fail_link(cp.topology().link_between(0, 4).unwrap());
        assert!(matches!(
            cp.reroute_lsp(id),
            Err(SignalError::Path(PathError::NoPath))
        ));
        // The LSP is gone (teardown happened) — consistent with a head end
        // that withdrew state and failed to re-signal.
        assert!(cp.lsp(id).is_none());
    }

    #[test]
    fn protection_presignals_disjoint_standby() {
        let mut cp = plane();
        let fec = prefix("192.168.1.0", 24);
        let primary = cp
            .establish_lsp(LspRequest::best_effort(0, 1, fec))
            .unwrap();
        let backup = cp.protect_lsp(primary).unwrap();
        assert_eq!(cp.backup_of(primary), Some(backup));
        assert!(cp.lsp_is_standby(backup));

        // Link-disjoint: the only alternative in figure 1 is the south.
        assert_eq!(cp.lsp(backup).unwrap().path, vec![0, 4, 5, 1]);
        let plinks = cp.lsp(primary).unwrap().reserved_links.clone();
        let blinks = cp.lsp(backup).unwrap().reserved_links.clone();
        assert!(plinks.iter().all(|l| !blinks.contains(l)));

        // Standby: ingress classifies onto the primary only, yet the
        // backup's transit state is already installed at node 4.
        let ingress = cp.config_for(0);
        assert_eq!(ingress.fecs.len(), 1);
        assert_eq!(
            ingress.fecs[0].push_label,
            cp.lsp(primary).unwrap().hop_labels[0]
        );
        let south_transit = cp.config_for(4);
        assert_eq!(south_transit.bindings.len(), 1, "backup swap pre-installed");
    }

    #[test]
    fn activation_switches_ingress_steering() {
        let mut cp = plane();
        let fec = prefix("192.168.1.0", 24);
        let primary = cp
            .establish_lsp(LspRequest::best_effort(0, 1, fec))
            .unwrap();
        let backup = cp.protect_lsp(primary).unwrap();

        let link = cp.topology().link_between(2, 3).unwrap();
        let affected = cp.fail_link(link);
        assert_eq!(affected, vec![primary]);
        assert!(cp.lsp_is_intact(backup), "disjoint backup survives");

        assert_eq!(cp.activate_backup(primary), Some(backup));
        let ingress = cp.config_for(0);
        assert_eq!(ingress.fecs.len(), 1);
        assert_eq!(
            ingress.fecs[0].push_label,
            cp.lsp(backup).unwrap().hop_labels[0],
            "ingress now steers onto the backup"
        );
        // Second activation is a no-op.
        assert_eq!(cp.activate_backup(primary), None);
    }

    #[test]
    fn broken_standby_tears_down_cleanly() {
        let mut cp = plane();
        let primary = cp
            .establish_lsp(LspRequest::best_effort(0, 1, prefix("192.168.1.0", 24)))
            .unwrap();
        let backup = cp.protect_lsp(primary).unwrap();
        // The south link under the backup dies.
        let south = cp.topology().link_between(4, 5).unwrap();
        let affected = cp.fail_link(south);
        assert_eq!(affected, vec![backup]);
        assert!(!cp.lsp_is_intact(backup));
        cp.teardown_standby(backup).unwrap();
        assert_eq!(cp.backup_of(primary), None);
        assert!(cp.lsp(backup).is_none());
    }

    #[test]
    fn protection_needs_a_disjoint_path() {
        // Sever the south first: no disjoint alternative remains.
        let mut cp = plane();
        let primary = cp
            .establish_lsp(LspRequest::best_effort(0, 1, prefix("192.168.1.0", 24)))
            .unwrap();
        cp.fail_link(cp.topology().link_between(4, 5).unwrap());
        assert!(matches!(
            cp.protect_lsp(primary),
            Err(SignalError::Path(PathError::NoPath))
        ));
    }

    #[test]
    fn labels_are_globally_unique() {
        let mut cp = plane();
        let a = cp
            .establish_lsp(LspRequest::best_effort(0, 1, prefix("10.1.0.0", 16)))
            .unwrap();
        let b = cp
            .establish_lsp(LspRequest::best_effort(1, 0, prefix("10.2.0.0", 16)))
            .unwrap();
        let mut seen = std::collections::HashSet::new();
        for id in [a, b] {
            for l in &cp.lsp(id).unwrap().hop_labels {
                assert!(seen.insert(l.value()), "label {l} reused");
            }
        }
    }
}
