//! The per-node forwarding configuration the control plane downloads into
//! the data planes.
//!
//! This is the boundary of the paper's Fig. 6: "Routing functionality
//! interacts with the MPLS \[architecture\] by reading and storing
//! information in the label stack modifier." A [`BindingEntry`] becomes a
//! `write_pair` into the hardware information base or a `bind` into the
//! software FIB; [`NextHopEntry`] and [`FecEntry`] configure the
//! ingress/egress packet processing around the modifier.

use crate::topology::NodeId;
use mpls_dataplane::ftn::Prefix;
use mpls_dataplane::LabelOp;
use mpls_packet::{CosBits, Label};
use serde::{Deserialize, Serialize};

/// One information-base label pair at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BindingEntry {
    /// The node to program.
    pub node: NodeId,
    /// Information-base level (1–3).
    pub level: u8,
    /// Packet identifier (level 1) or incoming label (levels 2–3).
    pub key: u64,
    /// Replacement/pushed label (ignored for pop).
    pub new_label: Label,
    /// The prescribed operation.
    pub op: LabelOp,
}

/// Where a processed packet goes next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Hop {
    /// Forward to an adjacent node.
    Node(NodeId),
    /// Deliver to the attached layer-2 network (egress LER).
    Local,
}

/// Maps the *outgoing* top label to the next hop at one node. The egress
/// packet processing module consults this after the stack update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NextHopEntry {
    /// The node to program.
    pub node: NodeId,
    /// The label on top of the stack after the update; `None` keys the
    /// unlabeled case (stack popped empty, or IP fallthrough).
    pub label: Option<Label>,
    /// Where to send the packet.
    pub next: Hop,
}

/// Ingress FEC classification at an LER: packets matching `prefix` enter
/// the LSP whose first label is `push_label`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FecEntry {
    /// The ingress LER.
    pub node: NodeId,
    /// Destination prefix defining the FEC.
    pub prefix: Prefix,
    /// First-hop label of the LSP.
    pub push_label: Label,
    /// CoS assigned to packets of this FEC.
    pub cos: CosBits,
}

/// An IP route consulted when a packet has no label: local delivery of
/// attached prefixes, or plain IP forwarding after penultimate-hop
/// popping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpRoute {
    /// The node holding the route.
    pub node: NodeId,
    /// Destination prefix.
    pub prefix: Prefix,
    /// Where matching unlabeled packets go.
    pub next: Hop,
}

/// A segment-routing steering policy at an ingress LER: packets matching
/// `prefix` get the whole `sids` source route pushed at once, plus any
/// entropy/MNA metadata LSEs below it. Compiled by the SR control plane;
/// there is no per-LSP transit state behind it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrPolicyEntry {
    /// The ingress LER.
    pub node: NodeId,
    /// Destination prefix steered onto this source route.
    pub prefix: Prefix,
    /// Node-SID labels, top-first (the first segment endpoint on top).
    pub sids: Vec<Label>,
    /// Append an RFC 6790 ELI/EL pair below the SIDs; the entropy label
    /// value is the ingress's flow hash.
    pub entropy: bool,
    /// Append a minimal MNA network-action sub-stack below the SIDs.
    pub mna: bool,
    /// CoS assigned to packets of this policy.
    pub cos: CosBits,
}

/// Equal-cost next-hop fan-out for one outgoing top label at one node.
/// The data plane picks a member by hashing the packet's entropy label;
/// without a readable entropy label it falls back to `nexts[0]` (which
/// equals the label's [`NextHopEntry`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EcmpEntry {
    /// The node to program.
    pub node: NodeId,
    /// The label on top of the stack after the update.
    pub label: Label,
    /// Equal-cost adjacent next hops, ascending by node id.
    pub nexts: Vec<NodeId>,
}

/// Everything one node needs: produced by
/// [`crate::ControlPlane::config_for`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeConfig {
    /// Information-base label pairs.
    pub bindings: Vec<BindingEntry>,
    /// Post-update next-hop table.
    pub next_hops: Vec<NextHopEntry>,
    /// Ingress FEC classification (LERs only).
    pub fecs: Vec<FecEntry>,
    /// Unlabeled-packet routes (longest prefix wins).
    pub ip_routes: Vec<IpRoute>,
    /// Segment-routing ingress policies (SR control plane only).
    pub sr_policies: Vec<SrPolicyEntry>,
    /// Entropy-hashed equal-cost fan-out per outgoing label.
    pub ecmp: Vec<EcmpEntry>,
    /// Readable Label Depth: how many stack entries this node's data
    /// plane can scan for an entropy pair. `None` means unlimited.
    pub rld: Option<u8>,
}

impl NodeConfig {
    /// True when nothing is programmed.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
            && self.next_hops.is_empty()
            && self.fecs.is_empty()
            && self.ip_routes.is_empty()
            && self.sr_policies.is_empty()
            && self.ecmp.is_empty()
    }

    /// Longest-prefix-match over the IP routes.
    pub fn ip_route_for(&self, addr: u32) -> Option<Hop> {
        self.ip_routes
            .iter()
            .filter(|r| r.prefix.contains(addr))
            .max_by_key(|r| r.prefix.len)
            .map(|r| r.next)
    }

    /// Finds the next hop for an outgoing top label.
    pub fn next_hop_for(&self, label: Option<Label>) -> Option<Hop> {
        self.next_hops
            .iter()
            .find(|e| e.label == label)
            .map(|e| e.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_hop_lookup() {
        let l = Label::new(42).unwrap();
        let cfg = NodeConfig {
            bindings: vec![],
            next_hops: vec![
                NextHopEntry {
                    node: 1,
                    label: Some(l),
                    next: Hop::Node(2),
                },
                NextHopEntry {
                    node: 1,
                    label: None,
                    next: Hop::Local,
                },
            ],
            fecs: vec![],
            ip_routes: vec![],
            ..Default::default()
        };
        assert_eq!(cfg.next_hop_for(Some(l)), Some(Hop::Node(2)));
        assert_eq!(cfg.next_hop_for(None), Some(Hop::Local));
        assert_eq!(cfg.next_hop_for(Some(Label::new(1).unwrap())), None);
        assert!(!cfg.is_empty());
        assert!(NodeConfig::default().is_empty());
    }

    #[test]
    fn ip_route_longest_prefix_wins() {
        let cfg = NodeConfig {
            ip_routes: vec![
                IpRoute {
                    node: 1,
                    prefix: Prefix::new(0x0a00_0000, 8),
                    next: Hop::Node(9),
                },
                IpRoute {
                    node: 1,
                    prefix: Prefix::new(0x0a01_0000, 16),
                    next: Hop::Local,
                },
            ],
            ..Default::default()
        };
        assert_eq!(cfg.ip_route_for(0x0a01_0203), Some(Hop::Local));
        assert_eq!(cfg.ip_route_for(0x0a02_0203), Some(Hop::Node(9)));
        assert_eq!(cfg.ip_route_for(0x0b00_0001), None);
    }
}
