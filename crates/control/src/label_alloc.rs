//! Per-node downstream label allocation.
//!
//! In MPLS, labels are allocated by the *downstream* router (the receiver
//! of the labeled packet) and advertised upstream. Each node draws from
//! its own 20-bit space, skipping the IETF reserved range `0..=15`.

use crate::topology::NodeId;
use mpls_packet::Label;
use std::collections::HashMap;

/// Allocates labels per node, sequentially from 16.
#[derive(Debug, Clone, Default)]
pub struct LabelAllocator {
    next: HashMap<NodeId, u32>,
    freed: HashMap<NodeId, Vec<u32>>,
}

/// The label space of one node is exhausted — with 2^20 − 16 usable
/// labels this only occurs in adversarial tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelSpaceExhausted(pub NodeId);

impl LabelAllocator {
    /// Creates an allocator with every node's space untouched.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh label in `node`'s space, reusing freed labels
    /// first.
    pub fn allocate(&mut self, node: NodeId) -> Result<Label, LabelSpaceExhausted> {
        if let Some(freed) = self.freed.get_mut(&node) {
            if let Some(v) = freed.pop() {
                return Ok(Label::new(v).expect("freed labels were valid"));
            }
        }
        let next = self
            .next
            .entry(node)
            .or_insert(Label::FIRST_UNRESERVED.value());
        if *next > Label::MAX {
            return Err(LabelSpaceExhausted(node));
        }
        let v = *next;
        *next += 1;
        Ok(Label::new(v).expect("bounded by Label::MAX"))
    }

    /// Returns a label to `node`'s pool.
    pub fn release(&mut self, node: NodeId, label: Label) {
        self.freed.entry(node).or_default().push(label.value());
    }

    /// Labels currently allocated (net of releases) at `node`.
    pub fn allocated_count(&self, node: NodeId) -> usize {
        let issued = self
            .next
            .get(&node)
            .map(|n| (n - Label::FIRST_UNRESERVED.value()) as usize)
            .unwrap_or(0);
        let freed = self.freed.get(&node).map(Vec::len).unwrap_or(0);
        issued - freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_from_16_per_node() {
        let mut a = LabelAllocator::new();
        assert_eq!(a.allocate(1).unwrap().value(), 16);
        assert_eq!(a.allocate(1).unwrap().value(), 17);
        assert_eq!(a.allocate(2).unwrap().value(), 16, "independent spaces");
    }

    #[test]
    fn never_allocates_reserved_labels() {
        let mut a = LabelAllocator::new();
        for _ in 0..64 {
            assert!(!a.allocate(7).unwrap().is_reserved());
        }
    }

    #[test]
    fn release_enables_reuse() {
        let mut a = LabelAllocator::new();
        let l = a.allocate(1).unwrap();
        a.allocate(1).unwrap();
        a.release(1, l);
        assert_eq!(a.allocated_count(1), 1);
        assert_eq!(a.allocate(1).unwrap(), l);
        assert_eq!(a.allocated_count(1), 2);
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut a = LabelAllocator::new();
        // Fast-forward the counter to the end of the space.
        a.next.insert(5, Label::MAX);
        assert!(a.allocate(5).is_ok());
        assert_eq!(a.allocate(5), Err(LabelSpaceExhausted(5)));
    }
}
