//! Per-ingress flow cache: `(level, in-label/key, in-port)` → resolved
//! binding.
//!
//! Classic LSR fast paths memoize the FIB resolution of recently seen
//! flows so steady-state traffic never touches the information base.
//! [`FlowCache`] is that memo: a small direct-mapped table whose entries
//! carry the binding *and* the canonical probe count the FIB charged when
//! the entry was filled, so a cache hit replays the exact latency the
//! full lookup would have produced — the report stays byte-identical
//! with the cache on or off, only host time changes.
//!
//! Invalidation is wholesale and conservative: any FIB mutation — an LDP
//! withdraw/release reprogram, a fault-driven rewrite, `retire_lsp` —
//! flushes the cache ([`FlowCache::invalidate_all`]). Routers are
//! reprogrammed by replacing the whole forwarder (cache included), and
//! direct `fib_mut()` access flushes on borrow, so a stale entry can
//! never outlive the binding it resolved. Only hits are cached; a miss
//! discards the packet anyway, and negative entries would have to be
//! invalidated on *insert* too.

use crate::fib::FibLevel;
use crate::types::LabelBinding;

#[derive(Debug, Clone, Copy)]
struct Entry {
    level: FibLevel,
    key: u64,
    port: u64,
    binding: LabelBinding,
    probes: u32,
}

/// A direct-mapped resolved-lookup cache.
#[derive(Debug, Clone)]
pub struct FlowCache {
    slots: Vec<Option<Entry>>,
    mask: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl Default for FlowCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_SLOTS)
    }
}

impl FlowCache {
    /// Default capacity: big enough for the flow counts the experiments
    /// run, small enough to stay cache-resident on the host.
    pub const DEFAULT_SLOTS: usize = 256;

    /// An empty cache with `slots` entries (rounded up to a power of two).
    pub fn new(slots: usize) -> Self {
        let n = slots.max(1).next_power_of_two();
        Self {
            slots: vec![None; n],
            mask: n as u64 - 1,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    #[inline]
    fn index(&self, level: FibLevel, key: u64, port: u64) -> usize {
        // splitmix64-style mix over the whole tuple; levels and ports must
        // not alias (an L2 label equals many L1 packet ids numerically).
        let mut x = key ^ (port << 48) ^ ((level as u64) << 61);
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((x ^ (x >> 31)) & self.mask) as usize
    }

    /// Looks up a resolved flow; returns the binding and the canonical
    /// probe count charged when the entry was filled.
    #[inline]
    pub fn lookup(
        &mut self,
        level: FibLevel,
        key: u64,
        port: u64,
    ) -> Option<(LabelBinding, usize)> {
        match &self.slots[self.index(level, key, port)] {
            Some(e) if e.level == level && e.key == key && e.port == port => {
                self.hits += 1;
                Some((e.binding, e.probes as usize))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs a resolved flow (direct-mapped: evicts whatever shared the
    /// slot).
    #[inline]
    pub fn install(
        &mut self,
        level: FibLevel,
        key: u64,
        port: u64,
        binding: LabelBinding,
        probes: usize,
    ) {
        let i = self.index(level, key, port);
        self.slots[i] = Some(Entry {
            level,
            key,
            port,
            binding,
            probes: probes.min(u32::MAX as usize) as u32,
        });
    }

    /// Drops every entry. Called on any FIB mutation — withdraw, fault
    /// rewrite, LSP retirement, direct table access.
    pub fn invalidate_all(&mut self) {
        if self.slots.iter().any(Option::is_some) {
            self.slots.iter_mut().for_each(|s| *s = None);
        }
        self.invalidations += 1;
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of wholesale flushes.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Live entries (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LabelOp;
    use mpls_packet::Label;

    fn b(l: u32) -> LabelBinding {
        LabelBinding::new(Label::new(l).unwrap(), LabelOp::Swap)
    }

    #[test]
    fn hit_replays_the_installed_probes() {
        let mut c = FlowCache::new(64);
        assert_eq!(c.lookup(FibLevel::L2, 100, 3), None);
        c.install(FibLevel::L2, 100, 3, b(7), 42);
        assert_eq!(c.lookup(FibLevel::L2, 100, 3), Some((b(7), 42)));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn keys_are_level_and_port_qualified() {
        let mut c = FlowCache::new(64);
        c.install(FibLevel::L2, 100, 0, b(7), 1);
        assert_eq!(c.lookup(FibLevel::L3, 100, 0), None, "other level");
        assert_eq!(c.lookup(FibLevel::L2, 100, 9), None, "other port");
        assert_eq!(c.lookup(FibLevel::L2, 100, 0), Some((b(7), 1)));
    }

    #[test]
    fn invalidate_all_empties_the_cache() {
        let mut c = FlowCache::new(8);
        for k in 0..8u64 {
            c.install(FibLevel::L1, k, 0, b(1), 1);
        }
        assert!(c.occupancy() > 0);
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.invalidations(), 1);
        assert_eq!(c.lookup(FibLevel::L1, 0, 0), None);
    }

    #[test]
    fn direct_mapped_conflicts_evict() {
        let mut c = FlowCache::new(1); // every key maps to the single slot
        c.install(FibLevel::L2, 1, 0, b(1), 1);
        c.install(FibLevel::L2, 2, 0, b(2), 2);
        assert_eq!(c.lookup(FibLevel::L2, 1, 0), None, "evicted");
        assert_eq!(c.lookup(FibLevel::L2, 2, 0), Some((b(2), 2)));
    }
}
