#![warn(missing_docs)]
//! Software MPLS data plane.
//!
//! "Most existing MPLS solutions are entirely software based" (paper §1,
//! abstract) — this crate is that baseline: a pure-software label
//! forwarder with the same observable semantics as the hardware label
//! stack modifier in `mpls-core`, plus the classic RFC 3031 table
//! structure (FTN / ILM / NHLFE) a real router stack would expose.
//!
//! Two lookup strategies are provided so the benchmarks can separate the
//! *architecture* comparison from the *algorithm* comparison:
//!
//! * [`lookup::LinearTable`] — first-match linear scan, the same algorithm
//!   the hardware search FSM implements (`3n + 5` cycles there, `O(n)`
//!   probes here);
//! * [`lookup::HashTable`] — the hash map an optimized software forwarder
//!   would use (`O(1)` probes, honestly reported — a *different* timing
//!   model than the linear scan);
//! * [`hash_fib::HashFib`] — the production fast path: `O(1)` host-time
//!   lookups that report the *canonical* (linear-equivalent) probe count,
//!   so swapping it in leaves the simulated timing — and the whole report
//!   — byte-identical, optionally cross-checked against a shadow linear
//!   table (`MPLS_SIM_DIFF_LOOKUP=1`). Pair with [`cache::FlowCache`] for
//!   the per-ingress flow cache.
//!
//! The differential test suite in the workspace root drives random
//! programs through both this forwarder and the cycle-accurate hardware
//! model and asserts identical outcomes.

pub mod cache;
pub mod fib;
pub mod forwarder;
pub mod ftn;
pub mod hash_fib;
pub mod lookup;
pub mod rfc;
pub mod types;

pub use cache::FlowCache;
pub use fib::{Fib, FibLevel};
pub use forwarder::{ProcessResult, SoftwareForwarder};
pub use ftn::PrefixFtn;
pub use hash_fib::{diff_lookup_enabled, HashFib};
pub use lookup::{HashTable, LinearTable, LookupStrategy};
pub use rfc::{NextHop, Nhlfe, RfcTables};
pub use types::{Discard, LabelBinding, LabelOp, SwRouterType};
