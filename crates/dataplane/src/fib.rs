//! The three-level forwarding information base of the software plane.
//!
//! Mirrors the hardware information base's organization: level 1 is keyed
//! by the 32-bit packet identifier (the FTN role of RFC 3031), levels 2
//! and 3 by 20-bit labels (the ILM role), selected by stack depth.

use crate::lookup::LookupStrategy;
use crate::types::LabelBinding;
use mpls_packet::Label;

/// Level selector, numerically compatible with the hardware levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum FibLevel {
    /// Packet-identifier-keyed (ingress classification).
    L1 = 1,
    /// Label-keyed, stack depth 1.
    L2 = 2,
    /// Label-keyed, stack depth 2–3.
    L3 = 3,
}

impl FibLevel {
    /// All levels.
    pub const ALL: [FibLevel; 3] = [FibLevel::L1, FibLevel::L2, FibLevel::L3];

    /// The level a stack of `depth` entries consults — identical to the
    /// hardware's `Level::for_stack_depth`.
    pub const fn for_stack_depth(depth: usize) -> Self {
        match depth {
            0 => FibLevel::L1,
            1 => FibLevel::L2,
            _ => FibLevel::L3,
        }
    }

    fn index(self) -> usize {
        self as usize - 1
    }
}

/// The software FIB: three independent tables behind one lookup strategy.
#[derive(Debug, Clone, Default)]
pub struct Fib<S: LookupStrategy> {
    levels: [S; 3],
}

impl<S: LookupStrategy> Fib<S> {
    /// Creates an empty FIB.
    pub fn new() -> Self {
        Self {
            levels: [S::default(), S::default(), S::default()],
        }
    }

    /// Binds `key -> binding` at `level`. Keys wider than the level's index
    /// memory are masked exactly like the hardware bus would truncate them
    /// (20 bits for the label-keyed levels).
    pub fn bind(&mut self, level: FibLevel, key: u64, binding: LabelBinding) {
        let key = match level {
            FibLevel::L1 => key & 0xFFFF_FFFF,
            FibLevel::L2 | FibLevel::L3 => key & Label::MAX as u64,
        };
        self.levels[level.index()].insert(key, binding);
    }

    /// Looks `key` up at `level`, returning the binding and the probes
    /// spent.
    pub fn lookup(&self, level: FibLevel, key: u64) -> (Option<LabelBinding>, usize) {
        self.levels[level.index()].get(key)
    }

    /// Occupancy of one level.
    pub fn occupancy(&self, level: FibLevel) -> usize {
        self.levels[level.index()].len()
    }

    /// Total bindings across all levels.
    pub fn total_occupancy(&self) -> usize {
        FibLevel::ALL.iter().map(|&l| self.occupancy(l)).sum()
    }

    /// Clears one level (the control plane rebuilds a level atomically when
    /// bindings change, because first-binding-wins makes in-place updates
    /// ineffective).
    pub fn clear_level(&mut self, level: FibLevel) {
        self.levels[level.index()].clear();
    }

    /// Clears everything.
    pub fn clear(&mut self) {
        for l in &mut self.levels {
            l.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup::{HashTable, LinearTable};
    use crate::types::LabelOp;

    fn b(l: u32) -> LabelBinding {
        LabelBinding::new(Label::new(l).unwrap(), LabelOp::Swap)
    }

    #[test]
    fn levels_are_independent() {
        let mut fib: Fib<LinearTable> = Fib::new();
        fib.bind(FibLevel::L2, 9, b(100));
        assert_eq!(fib.lookup(FibLevel::L2, 9).0, Some(b(100)));
        assert_eq!(fib.lookup(FibLevel::L3, 9).0, None);
        assert_eq!(fib.lookup(FibLevel::L1, 9).0, None);
    }

    #[test]
    fn label_levels_mask_keys_to_20_bits() {
        let mut fib: Fib<HashTable> = Fib::new();
        fib.bind(FibLevel::L3, 0xFF_0000_0005, b(42));
        // The masked key collides with a plain 20-bit key.
        assert_eq!(fib.lookup(FibLevel::L3, 5).0, Some(b(42)));
    }

    #[test]
    fn level1_keeps_32_bits() {
        let mut fib: Fib<HashTable> = Fib::new();
        fib.bind(FibLevel::L1, 0xC0A8_0101, b(1));
        assert_eq!(fib.lookup(FibLevel::L1, 0xC0A8_0101).0, Some(b(1)));
        assert_eq!(fib.lookup(FibLevel::L1, 0x0101).0, None);
    }

    #[test]
    fn depth_mapping_matches_hardware() {
        assert_eq!(FibLevel::for_stack_depth(0), FibLevel::L1);
        assert_eq!(FibLevel::for_stack_depth(1), FibLevel::L2);
        assert_eq!(FibLevel::for_stack_depth(2), FibLevel::L3);
        assert_eq!(FibLevel::for_stack_depth(3), FibLevel::L3);
    }

    #[test]
    fn clear_level_only_touches_that_level() {
        let mut fib: Fib<LinearTable> = Fib::new();
        fib.bind(FibLevel::L2, 1, b(1));
        fib.bind(FibLevel::L3, 2, b(2));
        fib.clear_level(FibLevel::L2);
        assert_eq!(fib.occupancy(FibLevel::L2), 0);
        assert_eq!(fib.occupancy(FibLevel::L3), 1);
        assert_eq!(fib.total_occupancy(), 1);
    }
}
