//! Pluggable lookup strategies for one forwarding table level.
//!
//! The strategy abstraction lets the benchmarks compare, on identical
//! configurations:
//!
//! * the hardware's algorithm run in software ([`LinearTable`]), and
//! * the algorithm real software forwarders use ([`HashTable`]).
//!
//! Both preserve *first-binding-wins* semantics for duplicate keys — the
//! hardware search stops at the first matching slot, so a later write with
//! the same key never takes effect until the table is rebuilt. The control
//! plane relies on this contract when it refreshes bindings.

use crate::types::LabelBinding;
use std::collections::HashMap;

/// One key → binding table with instrumented lookups.
pub trait LookupStrategy: Default + Clone + core::fmt::Debug {
    /// Appends a binding; keeps the existing one when `key` is already
    /// bound (first-binding-wins).
    fn insert(&mut self, key: u64, binding: LabelBinding);

    /// Finds the binding for `key`; the second element counts the key
    /// comparisons ("probes") spent, the unit the scaling benchmarks plot.
    fn get(&self, key: u64) -> (Option<LabelBinding>, usize);

    /// Number of stored bindings.
    fn len(&self) -> usize;

    /// True when no bindings are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every binding.
    fn clear(&mut self);

    /// Strategy name for reports.
    fn name() -> &'static str;
}

/// First-match linear scan over insertion order — the software twin of the
/// hardware search FSM.
///
/// Struct-of-arrays layout: the scan touches only the dense key array —
/// one cache line holds eight candidate keys, the way the hardware's
/// index memory holds keys apart from result memory — and the binding
/// array is read exactly once, on a hit.
#[derive(Debug, Clone, Default)]
pub struct LinearTable {
    keys: Vec<u64>,
    bindings: Vec<LabelBinding>,
}

impl LookupStrategy for LinearTable {
    fn insert(&mut self, key: u64, binding: LabelBinding) {
        // Duplicates may be appended; they are unreachable by lookup, the
        // same dead-slot behaviour the hardware exhibits.
        self.keys.push(key);
        self.bindings.push(binding);
    }

    fn get(&self, key: u64) -> (Option<LabelBinding>, usize) {
        if let Some(i) = self.keys.iter().position(|&k| k == key) {
            return (Some(self.bindings[i]), i + 1);
        }
        // Miss accounting (audited, ISSUE 5): a miss probes *exactly* the
        // occupancy — every stored slot, dead duplicates included, and
        // nothing more. This is the `n` of the hardware's 3n+5-cycle
        // failed search (Table 6), so the cycle-reconciliation sweep and
        // the timing model both depend on the count being occupancy, not
        // occupancy ± 1.
        (None, self.keys.len())
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn clear(&mut self) {
        self.keys.clear();
        self.bindings.clear();
    }

    fn name() -> &'static str {
        "linear"
    }
}

/// Hash-map lookup — the optimized software baseline.
#[derive(Debug, Clone, Default)]
pub struct HashTable {
    map: HashMap<u64, LabelBinding>,
    /// Count of logical entries including shadowed duplicates, so `len()`
    /// reports the same occupancy as a [`LinearTable`] fed identically.
    inserted: usize,
}

impl LookupStrategy for HashTable {
    fn insert(&mut self, key: u64, binding: LabelBinding) {
        self.map.entry(key).or_insert(binding);
        self.inserted += 1;
    }

    fn get(&self, key: u64) -> (Option<LabelBinding>, usize) {
        (self.map.get(&key).copied(), 1)
    }

    fn len(&self) -> usize {
        self.inserted
    }

    fn clear(&mut self) {
        self.map.clear();
        self.inserted = 0;
    }

    fn name() -> &'static str {
        "hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LabelOp;
    use mpls_packet::Label;
    use proptest::prelude::*;

    fn b(l: u32) -> LabelBinding {
        LabelBinding::new(Label::new(l).unwrap(), LabelOp::Swap)
    }

    fn strategies_agree<A: LookupStrategy, B: LookupStrategy>(
        inserts: &[(u64, u32)],
        queries: &[u64],
    ) {
        let mut a = A::default();
        let mut bt = B::default();
        for (k, l) in inserts {
            a.insert(*k, b(*l));
            bt.insert(*k, b(*l));
        }
        assert_eq!(a.len(), bt.len());
        for q in queries {
            assert_eq!(a.get(*q).0, bt.get(*q).0, "key {q}");
        }
    }

    #[test]
    fn linear_first_match_wins() {
        let mut t = LinearTable::default();
        t.insert(5, b(100));
        t.insert(5, b(200));
        assert_eq!(t.get(5).0.unwrap().new_label.value(), 100);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn hash_first_binding_wins_too() {
        let mut t = HashTable::default();
        t.insert(5, b(100));
        t.insert(5, b(200));
        assert_eq!(t.get(5).0.unwrap().new_label.value(), 100);
        assert_eq!(t.len(), 2, "occupancy counts shadowed duplicates");
    }

    #[test]
    fn linear_probe_counts() {
        // Probe counts are the `k`/`n` of the hardware's Table 6 search
        // cost (hit at rank k: 3k+5 cycles; miss among n: 3n+5), so they
        // must reconcile exactly: hit = insertion rank, miss = occupancy.
        let mut t = LinearTable::default();
        assert_eq!(t.get(1).1, 0, "empty table: a miss probes nothing");
        for k in 1..=10u64 {
            t.insert(k, b(k as u32));
        }
        assert_eq!(t.get(1).1, 1);
        assert_eq!(t.get(10).1, 10);
        assert_eq!(t.get(99).1, 10, "miss probes the whole table, no more");
        // Dead slots (shadowed duplicates) still cost a probe on a miss —
        // the hardware cannot skip them — but a hit stops at the winner.
        t.insert(1, b(500));
        assert_eq!(t.len(), 11);
        assert_eq!(t.get(99).1, 11, "miss == occupancy including dead slots");
        assert_eq!(t.get(1).1, 1, "hit rank unchanged by its duplicate");
    }

    #[test]
    fn hash_probes_constant() {
        let mut t = HashTable::default();
        for k in 1..=100u64 {
            t.insert(k, b(1));
        }
        assert_eq!(t.get(50).1, 1);
        assert_eq!(t.get(999).1, 1);
    }

    #[test]
    fn clear_resets_both() {
        let mut l = LinearTable::default();
        let mut h = HashTable::default();
        l.insert(1, b(1));
        h.insert(1, b(1));
        l.clear();
        h.clear();
        assert!(l.is_empty());
        assert!(h.is_empty());
        assert_eq!(l.get(1).0, None);
        assert_eq!(h.get(1).0, None);
    }

    proptest! {
        #[test]
        fn linear_and_hash_agree(
            inserts in proptest::collection::vec((0u64..32, 1u32..1000), 0..64),
            queries in proptest::collection::vec(0u64..40, 0..32),
        ) {
            strategies_agree::<LinearTable, HashTable>(&inserts, &queries);
        }
    }
}
