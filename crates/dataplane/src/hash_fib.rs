//! Open-addressed exact-match hash FIB with *canonical* probe counts.
//!
//! [`HashFib`] is the production-style fast path the ROADMAP asks for: an
//! open-addressed table (power-of-two capacity, u64 keys, linear probing
//! over a splitmix64-finalized hash) that answers lookups in O(1) host
//! time. The subtlety is what it reports as "probes spent".
//!
//! The simulator charges lookup latency from the probe count
//! (`SwTimingModel`: `per_packet_ns + probes · per_probe_ns`), so a
//! strategy that truthfully reported its own O(1) probes would produce a
//! *different simulation* than the linear information base — different
//! latencies, different queue dynamics, a different report. [`HashFib`]
//! therefore returns the probe count the hardware's linear search would
//! have spent on the same query against an identically-programmed table:
//!
//! * **hit** — the insertion rank of the key's first (winning) insert,
//!   i.e. how deep a first-match linear scan would have probed;
//! * **miss** — the total number of inserts, shadowed duplicates
//!   included, i.e. a full-table scan over every slot the hardware would
//!   hold (dead slots count — the hardware cannot skip them).
//!
//! With that contract, swapping [`crate::LinearTable`] for [`HashFib`]
//! changes host wall-clock only: simulated time, every latency, and the
//! whole report stay byte-identical. The linear table remains the
//! conformance oracle; set `MPLS_SIM_DIFF_LOOKUP=1` to carry a shadow
//! linear table inside every [`HashFib`] and assert, on every single
//! lookup, that binding *and* probe count agree.

use crate::lookup::{LinearTable, LookupStrategy};
use crate::types::LabelBinding;
use std::sync::OnceLock;

/// True when `MPLS_SIM_DIFF_LOOKUP=1`: every [`HashFib`] carries a shadow
/// [`LinearTable`] and cross-checks each lookup against it.
pub fn diff_lookup_enabled() -> bool {
    static DIFF: OnceLock<bool> = OnceLock::new();
    *DIFF.get_or_init(|| {
        std::env::var("MPLS_SIM_DIFF_LOOKUP")
            .is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
    })
}

/// splitmix64 finalizer — the same mixer the engine uses for RNG stream
/// decomposition; good avalanche for sequential label keys.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Filler for empty/never-read binding slots in the SoA layout.
const EMPTY_BINDING: LabelBinding =
    LabelBinding::new(mpls_packet::Label::IPV4_EXPLICIT_NULL, crate::LabelOp::Swap);

/// Exact-match hash FIB reporting linear-equivalent probe counts.
///
/// Struct-of-arrays layout: keys, ranks and bindings live in three
/// parallel arrays instead of one array of boxed/optional slot structs.
/// The probe walk touches only the key and rank arrays (`rank == 0`
/// marks an empty slot — real ranks are 1-based); the binding array is
/// read once on a hit. No per-entry indirection, no `Option`
/// discriminant padding — the layout a pipeline-friendly dataplane
/// would use.
#[derive(Debug, Clone)]
pub struct HashFib {
    keys: Vec<u64>,
    /// 1-based insertion rank of each slot's key's *first* insert —
    /// exactly the probe count a first-match linear scan would report
    /// for a hit. `0` = the slot is empty.
    ranks: Vec<u32>,
    bindings: Vec<LabelBinding>,
    mask: u64,
    /// Distinct live keys (reachable bindings).
    live: usize,
    /// Total inserts including shadowed duplicates — the occupancy a
    /// [`LinearTable`] fed identically would report, and the probe count
    /// of a miss.
    inserted: usize,
    /// Differential oracle, populated when diff mode is on.
    shadow: Option<Box<LinearTable>>,
}

impl Default for HashFib {
    fn default() -> Self {
        Self::with_diff(diff_lookup_enabled())
    }
}

impl HashFib {
    const INITIAL_SLOTS: usize = 16;

    /// An empty table; `diff` forces the shadow oracle on or off
    /// independently of the environment (tests use this).
    pub fn with_diff(diff: bool) -> Self {
        Self {
            keys: vec![0; Self::INITIAL_SLOTS],
            ranks: vec![0; Self::INITIAL_SLOTS],
            bindings: vec![EMPTY_BINDING; Self::INITIAL_SLOTS],
            mask: Self::INITIAL_SLOTS as u64 - 1,
            live: 0,
            inserted: 0,
            shadow: diff.then(|| Box::new(LinearTable::default())),
        }
    }

    /// Distinct reachable keys (excludes shadowed duplicates).
    pub fn live_keys(&self) -> usize {
        self.live
    }

    /// True when the shadow linear oracle is attached.
    pub fn diff_mode(&self) -> bool {
        self.shadow.is_some()
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // Linear probe from the hashed home slot; the table is never full
        // (grown at 3/4 load), so the walk terminates. Only the key and
        // rank arrays are touched.
        let mut i = (mix(key) & self.mask) as usize;
        loop {
            if self.ranks[i] == 0 || self.keys[i] == key {
                return i;
            }
            i = (i + 1) & self.mask as usize;
        }
    }

    fn grow(&mut self) {
        let new_len = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_len]);
        let old_ranks = std::mem::replace(&mut self.ranks, vec![0; new_len]);
        let old_bindings = std::mem::replace(&mut self.bindings, vec![EMPTY_BINDING; new_len]);
        self.mask = new_len as u64 - 1;
        for (i, rank) in old_ranks.into_iter().enumerate() {
            if rank == 0 {
                continue;
            }
            let j = self.slot_of(old_keys[i]);
            self.keys[j] = old_keys[i];
            self.ranks[j] = rank;
            self.bindings[j] = old_bindings[i];
        }
    }
}

impl LookupStrategy for HashFib {
    fn insert(&mut self, key: u64, binding: LabelBinding) {
        if let Some(shadow) = &mut self.shadow {
            shadow.insert(key, binding);
        }
        // Every insert occupies a hardware slot, so it always bumps the
        // linear-equivalent occupancy — even when shadowed.
        self.inserted += 1;
        let i = self.slot_of(key);
        if self.ranks[i] != 0 {
            return; // first-binding-wins: the duplicate is a dead slot
        }
        self.keys[i] = key;
        self.ranks[i] = u32::try_from(self.inserted).expect("FIB occupancy fits u32");
        self.bindings[i] = binding;
        self.live += 1;
        if self.live * 4 >= self.keys.len() * 3 {
            self.grow();
        }
    }

    fn get(&self, key: u64) -> (Option<LabelBinding>, usize) {
        let i = self.slot_of(key);
        let got = if self.ranks[i] != 0 && self.keys[i] == key {
            (Some(self.bindings[i]), self.ranks[i] as usize)
        } else {
            (None, self.inserted)
        };
        if let Some(shadow) = &self.shadow {
            let want = shadow.get(key);
            assert_eq!(
                got, want,
                "MPLS_SIM_DIFF_LOOKUP: hash FIB diverged from the linear \
                 info-base on key {key}: hash {got:?} vs linear {want:?}"
            );
        }
        got
    }

    fn len(&self) -> usize {
        self.inserted
    }

    fn clear(&mut self) {
        self.ranks.iter_mut().for_each(|r| *r = 0);
        self.live = 0;
        self.inserted = 0;
        if let Some(shadow) = &mut self.shadow {
            shadow.clear();
        }
    }

    fn name() -> &'static str {
        "hash-fib"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LabelOp;
    use mpls_packet::Label;
    use proptest::prelude::*;

    fn b(l: u32) -> LabelBinding {
        LabelBinding::new(Label::new(l).unwrap(), LabelOp::Swap)
    }

    #[test]
    fn hit_probes_equal_linear_rank() {
        let mut t = HashFib::default();
        for k in 1..=10u64 {
            t.insert(k, b(k as u32));
        }
        assert_eq!(t.get(1).1, 1, "first insert probes once");
        assert_eq!(t.get(7).1, 7);
        assert_eq!(t.get(10).1, 10);
    }

    #[test]
    fn miss_probes_equal_total_occupancy() {
        let mut t = HashFib::default();
        assert_eq!(t.get(5), (None, 0), "empty table: zero probes on miss");
        for k in 1..=10u64 {
            t.insert(k, b(k as u32));
        }
        t.insert(3, b(999)); // shadowed duplicate still occupies a slot
        assert_eq!(t.get(99).1, 11, "miss scans every slot, dead ones too");
    }

    #[test]
    fn first_binding_wins_and_keeps_its_rank() {
        let mut t = HashFib::default();
        t.insert(5, b(100));
        t.insert(6, b(101));
        t.insert(5, b(200));
        let (got, probes) = t.get(5);
        assert_eq!(got.unwrap().new_label.value(), 100);
        assert_eq!(probes, 1, "rank of the winning insert, not the duplicate");
        assert_eq!(t.len(), 3, "occupancy counts shadowed duplicates");
        assert_eq!(t.live_keys(), 2);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t = HashFib::default();
        for k in 0..500u64 {
            t.insert(k, b((k % 999 + 1) as u32));
        }
        for k in 0..500u64 {
            let (got, probes) = t.get(k);
            assert_eq!(got.unwrap().new_label.value(), (k % 999 + 1) as u32);
            assert_eq!(probes, k as usize + 1);
        }
        assert_eq!(t.get(1_000_000).1, 500);
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = HashFib::with_diff(true);
        t.insert(1, b(1));
        t.insert(1, b(2));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get(1), (None, 0));
        t.insert(1, b(3));
        assert_eq!(t.get(1), (Some(b(3)), 1), "ranks restart after clear");
    }

    #[test]
    #[should_panic(expected = "diverged from the linear info-base")]
    fn diff_mode_catches_a_planted_divergence() {
        let mut t = HashFib::with_diff(true);
        t.insert(1, b(1));
        // Corrupt the hash side behind the shadow's back.
        for r in t.ranks.iter_mut().filter(|r| **r != 0) {
            *r = 42;
        }
        let _ = t.get(1);
    }

    proptest! {
        /// The canonical-probe contract under insert/clear churn: bindings,
        /// probe counts, and occupancy all match the linear oracle exactly —
        /// this is the invariant that keeps reports byte-identical.
        #[test]
        fn hash_and_linear_agree(
            rounds in proptest::collection::vec(
                (
                    proptest::collection::vec((0u64..32, 1u32..1000), 0..48),
                    proptest::collection::vec(0u64..40, 0..32),
                ),
                1..4,
            ),
        ) {
            // Diff mode exercises the built-in shadow assert on the same
            // walk; the external LinearTable is a second, independent check.
            let mut h = HashFib::with_diff(true);
            let mut l = LinearTable::default();
            for (inserts, queries) in rounds {
                for (k, v) in &inserts {
                    h.insert(*k, b(*v));
                    l.insert(*k, b(*v));
                }
                prop_assert_eq!(h.len(), l.len());
                for q in &queries {
                    prop_assert_eq!(h.get(*q), l.get(*q), "key {}", q);
                }
                // Withdraw churn: the control plane rebuilds a level by
                // clearing it (first-binding-wins makes in-place edits
                // ineffective); ranks must restart identically.
                h.clear();
                l.clear();
                prop_assert_eq!(h.get(0), l.get(0));
            }
        }
    }
}
