//! Prefix-based FEC-to-NHLFE (FTN) classification.
//!
//! The hardware architecture keys its level-1 lookups on the exact 32-bit
//! packet identifier. A production ingress LER instead classifies packets
//! into Forwarding Equivalence Classes by longest-prefix match on the
//! destination address (RFC 3031 §3.1) and then expands each covered host
//! route into the exact-match table the hardware can search. This module
//! provides that classification step for the control plane and the
//! network simulator.

use crate::types::LabelBinding;
use serde::{Deserialize, Serialize};

/// An IPv4 prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prefix {
    /// Network address (host bits zeroed at construction).
    pub addr: u32,
    /// Prefix length, 0–32.
    pub len: u8,
}

impl Prefix {
    /// Creates a prefix, zeroing host bits.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        Self {
            addr: addr & Self::mask(len),
            len,
        }
    }

    /// The netmask for a prefix length.
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// True when `addr` falls inside this prefix.
    pub fn contains(&self, addr: u32) -> bool {
        addr & Self::mask(self.len) == self.addr
    }
}

impl core::fmt::Display for Prefix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = self.addr.to_be_bytes();
        write!(f, "{}.{}.{}.{}/{}", b[0], b[1], b[2], b[3], self.len)
    }
}

/// A longest-prefix-match FTN table.
///
/// Entries are kept sorted by descending prefix length so a lookup scans
/// most-specific first — adequate for the table sizes of the experiments
/// (a trie would be overkill and is documented as a non-goal).
#[derive(Debug, Clone, Default)]
pub struct PrefixFtn {
    /// `(prefix, binding)` sorted by descending `prefix.len`.
    entries: Vec<(Prefix, LabelBinding)>,
}

impl PrefixFtn {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a prefix binding, replacing an existing identical prefix.
    pub fn insert(&mut self, prefix: Prefix, binding: LabelBinding) {
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == prefix) {
            e.1 = binding;
            return;
        }
        let pos = self.entries.partition_point(|(p, _)| p.len >= prefix.len);
        self.entries.insert(pos, (prefix, binding));
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, addr: u32) -> Option<(Prefix, LabelBinding)> {
        self.entries.iter().find(|(p, _)| p.contains(addr)).copied()
    }

    /// Number of prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries most-specific first.
    pub fn iter(&self) -> impl Iterator<Item = &(Prefix, LabelBinding)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LabelOp;
    use mpls_packet::ipv4::parse_addr;
    use mpls_packet::Label;
    use proptest::prelude::*;

    fn b(l: u32) -> LabelBinding {
        LabelBinding::new(Label::new(l).unwrap(), LabelOp::Push)
    }

    #[test]
    fn prefix_normalizes_host_bits() {
        let p = Prefix::new(parse_addr("10.1.2.3").unwrap(), 16);
        assert_eq!(p.to_string(), "10.1.0.0/16");
        assert!(p.contains(parse_addr("10.1.200.7").unwrap()));
        assert!(!p.contains(parse_addr("10.2.0.1").unwrap()));
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixFtn::new();
        t.insert(Prefix::new(0, 0), b(1));
        assert!(t.lookup(0xdead_beef).is_some());
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = PrefixFtn::new();
        t.insert(Prefix::new(parse_addr("10.0.0.0").unwrap(), 8), b(100));
        t.insert(Prefix::new(parse_addr("10.1.0.0").unwrap(), 16), b(200));
        t.insert(Prefix::new(parse_addr("10.1.5.0").unwrap(), 24), b(300));
        let hit = |a: &str| {
            t.lookup(parse_addr(a).unwrap())
                .unwrap()
                .1
                .new_label
                .value()
        };
        assert_eq!(hit("10.1.5.9"), 300);
        assert_eq!(hit("10.1.9.9"), 200);
        assert_eq!(hit("10.9.9.9"), 100);
        assert!(t.lookup(parse_addr("11.0.0.1").unwrap()).is_none());
    }

    #[test]
    fn insert_replaces_same_prefix() {
        let mut t = PrefixFtn::new();
        let p = Prefix::new(parse_addr("10.0.0.0").unwrap(), 8);
        t.insert(p, b(1));
        t.insert(p, b(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(parse_addr("10.0.0.1").unwrap()).unwrap().1, b(2));
    }

    #[test]
    fn mask_edges() {
        assert_eq!(Prefix::mask(0), 0);
        assert_eq!(Prefix::mask(32), u32::MAX);
        assert_eq!(Prefix::mask(8), 0xFF00_0000);
    }

    proptest! {
        #[test]
        fn lookup_agrees_with_brute_force(
            prefixes in proptest::collection::vec((any::<u32>(), 0u8..=32, 16u32..1000), 1..24),
            addr: u32,
        ) {
            let mut t = PrefixFtn::new();
            let mut raw = Vec::new();
            for (a, l, label) in prefixes {
                let p = Prefix::new(a, l);
                t.insert(p, b(label));
                raw.retain(|(q, _): &(Prefix, LabelBinding)| *q != p);
                raw.push((p, b(label)));
            }
            let expected = raw
                .iter()
                .filter(|(p, _)| p.contains(addr))
                .max_by_key(|(p, _)| p.len)
                .map(|(p, _)| p.len);
            prop_assert_eq!(t.lookup(addr).map(|(p, _)| p.len), expected);
        }
    }
}
