//! The software label stack processor — the pure-software twin of the
//! hardware label stack modifier.
//!
//! [`SoftwareForwarder::process`] implements exactly the per-packet update
//! the hardware performs (search the depth-selected level, then
//! push/pop/swap with TTL handling and discard rules), so the two planes
//! are interchangeable behind the router crate's forwarding trait and
//! differentially testable.

use crate::cache::FlowCache;
use crate::fib::{Fib, FibLevel};
use crate::lookup::LookupStrategy;
use crate::types::{Discard, LabelBinding, LabelOp, SwRouterType};
use mpls_packet::{label::LabelStackEntry, CosBits, Label, LabelStack, Ttl, EMBEDDED_STACK_DEPTH};

/// Result of processing one packet's label stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessResult {
    /// The stack was updated by this operation.
    Updated {
        /// The applied operation.
        op: LabelOp,
    },
    /// The packet must be discarded; the stack has been cleared.
    Discarded(Discard),
}

/// A software MPLS forwarder over a pluggable lookup strategy.
#[derive(Debug, Clone, Default)]
pub struct SoftwareForwarder<S: LookupStrategy> {
    router_type_is_lsr: bool,
    fib: Fib<S>,
    /// Optional per-ingress flow cache (fast path only).
    cache: Option<FlowCache>,
    /// Cumulative *canonical* probe count — what the lookups charged the
    /// timing model, whether served by the FIB or replayed from the cache.
    probes: u64,
    /// FIB lookups actually executed (cache hits excluded) — the host-side
    /// work counter that distinguishes the paths in diagnostics.
    fib_lookups: u64,
    /// Packets processed.
    processed: u64,
    /// Packets discarded.
    discarded: u64,
}

impl<S: LookupStrategy> SoftwareForwarder<S> {
    /// Creates a forwarder of the given role.
    pub fn new(router_type: SwRouterType) -> Self {
        Self {
            router_type_is_lsr: matches!(router_type, SwRouterType::Lsr),
            fib: Fib::new(),
            cache: None,
            probes: 0,
            fib_lookups: 0,
            processed: 0,
            discarded: 0,
        }
    }

    /// Attaches a flow cache of the default capacity (the fast path).
    pub fn with_flow_cache(mut self) -> Self {
        self.cache = Some(FlowCache::default());
        self
    }

    /// `(hits, misses)` of the flow cache, if one is attached.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(FlowCache::stats)
    }

    /// The configured role.
    pub fn router_type(&self) -> SwRouterType {
        if self.router_type_is_lsr {
            SwRouterType::Lsr
        } else {
            SwRouterType::Ler
        }
    }

    /// The forwarding tables.
    pub fn fib(&self) -> &Fib<S> {
        &self.fib
    }

    /// Mutable access for the control plane. Conservatively flushes the
    /// flow cache: the borrower may rewrite any binding (withdraw, fault
    /// rewrite, LSP retirement), and a stale cached resolution must never
    /// forward a packet the rewritten FIB would not.
    pub fn fib_mut(&mut self) -> &mut Fib<S> {
        if let Some(cache) = &mut self.cache {
            cache.invalidate_all();
        }
        &mut self.fib
    }

    /// Convenience: bind `key -> (new_label, op)` at `level`. Flushes the
    /// flow cache like any other FIB mutation.
    pub fn bind(&mut self, level: FibLevel, key: u64, new_label: Label, op: LabelOp) {
        if let Some(cache) = &mut self.cache {
            cache.invalidate_all();
        }
        self.fib.bind(level, key, LabelBinding::new(new_label, op));
    }

    /// Cumulative *canonical* key comparisons charged to the timing model
    /// (cache hits replay the probes of the lookup they memoized).
    pub fn total_probes(&self) -> u64 {
        self.probes
    }

    /// FIB lookups actually executed — on the fast path this falls below
    /// `processed` by exactly the cache hits.
    pub fn fib_lookups(&self) -> u64 {
        self.fib_lookups
    }

    /// `(processed, discarded)` packet counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.processed, self.discarded)
    }

    /// Processes one packet: `stack` is updated in place (cleared on
    /// discard). `packet_id` keys the level-1 lookup for unlabeled
    /// packets; `push_cos`/`push_ttl` seed a fresh ingress push.
    pub fn process(
        &mut self,
        stack: &mut LabelStack,
        packet_id: u32,
        push_cos: CosBits,
        push_ttl: Ttl,
    ) -> ProcessResult {
        self.process_on_port(stack, packet_id, push_cos, push_ttl, 0)
    }

    /// [`Self::process`] with the arrival port made explicit; the flow
    /// cache keys on `(level, key, port)` so two ingress ports resolving
    /// the same label each get their own entry.
    pub fn process_on_port(
        &mut self,
        stack: &mut LabelStack,
        packet_id: u32,
        push_cos: CosBits,
        push_ttl: Ttl,
        port: u64,
    ) -> ProcessResult {
        self.processed += 1;
        let depth = stack.depth();
        let level = FibLevel::for_stack_depth(depth);
        let key = if depth == 0 {
            packet_id as u64
        } else {
            stack.top().expect("depth > 0").label.value() as u64
        };

        // Fast path: replay a memoized resolution (binding + the canonical
        // probes it was charged with) without touching the FIB; otherwise
        // do the real lookup and memoize a hit.
        let (binding, probes) = match self.cache.as_mut().and_then(|c| c.lookup(level, key, port)) {
            Some((binding, probes)) => (Some(binding), probes),
            None => {
                let (binding, probes) = self.fib.lookup(level, key);
                self.fib_lookups += 1;
                if let (Some(b), Some(cache)) = (binding, &mut self.cache) {
                    cache.install(level, key, port, b, probes);
                }
                (binding, probes)
            }
        };
        self.probes += probes as u64;
        let Some(binding) = binding else {
            return self.discard(stack, Discard::NoEntryFound);
        };

        if depth == 0 {
            return self.ingress_push(stack, binding, push_cos, push_ttl);
        }

        // Labeled path: remove the top, decrement its TTL, verify, apply.
        let top = *stack.top().expect("depth > 0");
        if top.ttl <= 1 {
            return self.discard(stack, Discard::TtlExpired);
        }
        let new_ttl = top.ttl - 1;

        match binding.op {
            LabelOp::Nop => self.discard(stack, Discard::InconsistentOperation),
            LabelOp::Swap => {
                stack.swap(binding.new_label).expect("non-empty");
                // swap keeps CoS; propagate the decremented TTL.
                let mut e = *stack.top().expect("non-empty");
                e.ttl = new_ttl;
                stack.pop().expect("non-empty");
                stack.push(e).expect("same depth");
                ProcessResult::Updated { op: LabelOp::Swap }
            }
            LabelOp::Pop => {
                stack.pop().expect("non-empty");
                // Uniform TTL model: write the decremented TTL into the
                // newly exposed entry, if any.
                if let Some(inner) = stack.top().copied() {
                    let mut e = inner;
                    e.ttl = new_ttl;
                    stack.pop().expect("non-empty");
                    stack.push(e).expect("same depth");
                }
                ProcessResult::Updated { op: LabelOp::Pop }
            }
            LabelOp::Push => {
                // Mirror the hardware's entry-register capacity, not the
                // wire maximum, so software and embedded data paths agree
                // on when a push is inconsistent.
                if depth + 1 > EMBEDDED_STACK_DEPTH {
                    return self.discard(stack, Discard::InconsistentOperation);
                }
                // Old entry keeps its label/CoS with the decremented TTL;
                // the new entry inherits CoS and TTL from it.
                let mut old = top;
                old.ttl = new_ttl;
                stack.pop().expect("non-empty");
                stack.push(old).expect("capacity checked");
                stack
                    .push(LabelStackEntry::new(
                        binding.new_label,
                        top.cos,
                        false,
                        new_ttl,
                    ))
                    .expect("capacity checked");
                ProcessResult::Updated { op: LabelOp::Push }
            }
        }
    }

    fn ingress_push(
        &mut self,
        stack: &mut LabelStack,
        binding: LabelBinding,
        push_cos: CosBits,
        push_ttl: Ttl,
    ) -> ProcessResult {
        // Only an LER may label an unlabeled packet, and only via push.
        if self.router_type_is_lsr || binding.op != LabelOp::Push {
            return self.discard(stack, Discard::InconsistentOperation);
        }
        if push_ttl == 0 {
            return self.discard(stack, Discard::TtlExpired);
        }
        stack
            .push(LabelStackEntry::new(
                binding.new_label,
                push_cos,
                false,
                push_ttl,
            ))
            .expect("empty stack");
        ProcessResult::Updated { op: LabelOp::Push }
    }

    fn discard(&mut self, stack: &mut LabelStack, reason: Discard) -> ProcessResult {
        self.discarded += 1;
        stack.clear();
        ProcessResult::Discarded(reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup::{HashTable, LinearTable};

    fn lbl(v: u32) -> Label {
        Label::new(v).unwrap()
    }

    fn labeled_stack(labels: &[(u32, u8, u8)]) -> LabelStack {
        // (label, cos, ttl) bottom-first.
        let mut s = LabelStack::new();
        for (l, c, t) in labels {
            s.push_parts(lbl(*l), CosBits::new(*c).unwrap(), *t)
                .unwrap();
        }
        s
    }

    #[test]
    fn swap_semantics() {
        let mut f: SoftwareForwarder<HashTable> = SoftwareForwarder::new(SwRouterType::Lsr);
        f.bind(FibLevel::L2, 100, lbl(200), LabelOp::Swap);
        let mut s = labeled_stack(&[(100, 5, 64)]);
        let r = f.process(&mut s, 0, CosBits::BEST_EFFORT, 0);
        assert_eq!(r, ProcessResult::Updated { op: LabelOp::Swap });
        let top = s.top().unwrap();
        assert_eq!(top.label.value(), 200);
        assert_eq!(top.ttl, 63);
        assert_eq!(top.cos.value(), 5);
        s.validate().unwrap();
    }

    #[test]
    fn pop_propagates_ttl() {
        let mut f: SoftwareForwarder<LinearTable> = SoftwareForwarder::new(SwRouterType::Lsr);
        f.bind(FibLevel::L3, 20, lbl(0), LabelOp::Pop);
        let mut s = labeled_stack(&[(10, 0, 40), (20, 0, 30)]);
        let r = f.process(&mut s, 0, CosBits::BEST_EFFORT, 0);
        assert_eq!(r, ProcessResult::Updated { op: LabelOp::Pop });
        assert_eq!(s.depth(), 1);
        assert_eq!(s.top().unwrap().label.value(), 10);
        assert_eq!(s.top().unwrap().ttl, 29);
    }

    #[test]
    fn push_adds_level() {
        let mut f: SoftwareForwarder<HashTable> = SoftwareForwarder::new(SwRouterType::Lsr);
        f.bind(FibLevel::L2, 100, lbl(300), LabelOp::Push);
        let mut s = labeled_stack(&[(100, 3, 64)]);
        let r = f.process(&mut s, 0, CosBits::BEST_EFFORT, 0);
        assert_eq!(r, ProcessResult::Updated { op: LabelOp::Push });
        assert_eq!(s.depth(), 2);
        assert_eq!(s.entries()[0].label.value(), 300);
        assert_eq!(s.entries()[0].ttl, 63);
        assert_eq!(s.entries()[1].label.value(), 100);
        assert_eq!(s.entries()[1].ttl, 63);
    }

    #[test]
    fn ingress_push_on_ler() {
        let mut f: SoftwareForwarder<HashTable> = SoftwareForwarder::new(SwRouterType::Ler);
        f.bind(FibLevel::L1, 0x0a000001, lbl(777), LabelOp::Push);
        let mut s = LabelStack::new();
        let r = f.process(&mut s, 0x0a000001, CosBits::EXPEDITED, 63);
        assert_eq!(r, ProcessResult::Updated { op: LabelOp::Push });
        let top = s.top().unwrap();
        assert_eq!(top.label.value(), 777);
        assert_eq!(top.cos, CosBits::EXPEDITED);
        assert_eq!(top.ttl, 63);
    }

    #[test]
    fn lsr_rejects_unlabeled() {
        let mut f: SoftwareForwarder<HashTable> = SoftwareForwarder::new(SwRouterType::Lsr);
        f.bind(FibLevel::L1, 1, lbl(777), LabelOp::Push);
        let mut s = LabelStack::new();
        assert_eq!(
            f.process(&mut s, 1, CosBits::BEST_EFFORT, 64),
            ProcessResult::Discarded(Discard::InconsistentOperation)
        );
    }

    #[test]
    fn ttl_expiry_clears_stack() {
        let mut f: SoftwareForwarder<HashTable> = SoftwareForwarder::new(SwRouterType::Lsr);
        f.bind(FibLevel::L2, 9, lbl(10), LabelOp::Swap);
        for ttl in [0u8, 1] {
            let mut s = labeled_stack(&[(9, 0, ttl)]);
            assert_eq!(
                f.process(&mut s, 0, CosBits::BEST_EFFORT, 0),
                ProcessResult::Discarded(Discard::TtlExpired)
            );
            assert!(s.is_empty());
        }
    }

    #[test]
    fn miss_discards() {
        let mut f: SoftwareForwarder<LinearTable> = SoftwareForwarder::new(SwRouterType::Lsr);
        let mut s = labeled_stack(&[(9, 0, 64)]);
        assert_eq!(
            f.process(&mut s, 0, CosBits::BEST_EFFORT, 0),
            ProcessResult::Discarded(Discard::NoEntryFound)
        );
        assert!(s.is_empty());
        assert_eq!(f.counters(), (1, 1));
    }

    #[test]
    fn nop_binding_discards() {
        let mut f: SoftwareForwarder<HashTable> = SoftwareForwarder::new(SwRouterType::Lsr);
        f.bind(FibLevel::L2, 9, lbl(10), LabelOp::Nop);
        let mut s = labeled_stack(&[(9, 0, 64)]);
        assert_eq!(
            f.process(&mut s, 0, CosBits::BEST_EFFORT, 0),
            ProcessResult::Discarded(Discard::InconsistentOperation)
        );
    }

    #[test]
    fn push_overflow_discards() {
        let mut f: SoftwareForwarder<HashTable> = SoftwareForwarder::new(SwRouterType::Lsr);
        f.bind(FibLevel::L3, 3, lbl(4), LabelOp::Push);
        let mut s = labeled_stack(&[(1, 0, 64), (2, 0, 64), (3, 0, 64)]);
        assert_eq!(
            f.process(&mut s, 0, CosBits::BEST_EFFORT, 0),
            ProcessResult::Discarded(Discard::InconsistentOperation)
        );
    }

    // TTL edge sweep (ISSUE 5 satellite): the expiry check must fire
    // *before* the operation is applied, at every operation point.

    #[test]
    fn ttl_one_succeeds_at_ingress_push() {
        // Push writes the control-plane TTL verbatim; only TTL 0 is dead.
        let mut f: SoftwareForwarder<HashTable> = SoftwareForwarder::new(SwRouterType::Ler);
        f.bind(FibLevel::L1, 1, lbl(7), LabelOp::Push);
        let mut s = LabelStack::new();
        assert_eq!(
            f.process(&mut s, 1, CosBits::BEST_EFFORT, 1),
            ProcessResult::Updated { op: LabelOp::Push }
        );
        assert_eq!(s.top().unwrap().ttl, 1);
    }

    #[test]
    fn ttl_zero_discards_at_ingress_push() {
        let mut f: SoftwareForwarder<HashTable> = SoftwareForwarder::new(SwRouterType::Ler);
        f.bind(FibLevel::L1, 1, lbl(7), LabelOp::Push);
        let mut s = LabelStack::new();
        assert_eq!(
            f.process(&mut s, 1, CosBits::BEST_EFFORT, 0),
            ProcessResult::Discarded(Discard::TtlExpired)
        );
        assert!(s.is_empty());
    }

    #[test]
    fn ttl_expiry_discards_before_php_pop() {
        let mut f: SoftwareForwarder<HashTable> = SoftwareForwarder::new(SwRouterType::Lsr);
        f.bind(FibLevel::L3, 20, lbl(0), LabelOp::Pop);
        for ttl in [0u8, 1] {
            let mut s = labeled_stack(&[(10, 0, 40), (20, 0, ttl)]);
            assert_eq!(
                f.process(&mut s, 0, CosBits::BEST_EFFORT, 0),
                ProcessResult::Discarded(Discard::TtlExpired),
                "ttl {ttl}: must expire before the pop exposes the inner entry"
            );
            assert!(s.is_empty());
        }
    }

    #[test]
    fn ttl_expiry_discards_before_mid_stack_push() {
        let mut f: SoftwareForwarder<HashTable> = SoftwareForwarder::new(SwRouterType::Lsr);
        f.bind(FibLevel::L2, 100, lbl(300), LabelOp::Push);
        for ttl in [0u8, 1] {
            let mut s = labeled_stack(&[(100, 0, ttl)]);
            assert_eq!(
                f.process(&mut s, 0, CosBits::BEST_EFFORT, 0),
                ProcessResult::Discarded(Discard::TtlExpired),
                "ttl {ttl}: must expire before the push is applied"
            );
        }
    }

    // Flow-cache semantics.

    #[test]
    fn cache_hit_replays_canonical_probes() {
        let mut f: SoftwareForwarder<LinearTable> =
            SoftwareForwarder::new(SwRouterType::Lsr).with_flow_cache();
        for i in 1..=8u64 {
            f.bind(FibLevel::L2, i, lbl(500), LabelOp::Swap);
        }
        for _ in 0..3 {
            let mut s = labeled_stack(&[(8, 0, 64)]);
            f.process(&mut s, 0, CosBits::BEST_EFFORT, 0);
        }
        // Each pass charges the full linear rank even though only the
        // first touched the FIB — latency is identical, host work is not.
        assert_eq!(f.total_probes(), 24);
        assert_eq!(f.fib_lookups(), 1);
        assert_eq!(f.cache_stats(), Some((2, 1)));
    }

    #[test]
    fn cache_distinguishes_ports() {
        let mut f: SoftwareForwarder<HashTable> =
            SoftwareForwarder::new(SwRouterType::Lsr).with_flow_cache();
        f.bind(FibLevel::L2, 9, lbl(10), LabelOp::Swap);
        let mut s = labeled_stack(&[(9, 0, 64)]);
        f.process_on_port(&mut s, 0, CosBits::BEST_EFFORT, 0, 1);
        let mut s = labeled_stack(&[(9, 0, 64)]);
        f.process_on_port(&mut s, 0, CosBits::BEST_EFFORT, 0, 2);
        assert_eq!(f.fib_lookups(), 2, "each port fills its own entry");
    }

    #[test]
    fn stale_cache_after_withdraw_must_not_forward() {
        let mut f: SoftwareForwarder<LinearTable> =
            SoftwareForwarder::new(SwRouterType::Lsr).with_flow_cache();
        f.bind(FibLevel::L2, 9, lbl(10), LabelOp::Swap);
        let mut s = labeled_stack(&[(9, 0, 64)]);
        assert!(matches!(
            f.process(&mut s, 0, CosBits::BEST_EFFORT, 0),
            ProcessResult::Updated { .. }
        ));
        // Withdraw: the control plane rebuilds the level without label 9.
        f.fib_mut().clear_level(FibLevel::L2);
        let mut s = labeled_stack(&[(9, 0, 64)]);
        assert_eq!(
            f.process(&mut s, 0, CosBits::BEST_EFFORT, 0),
            ProcessResult::Discarded(Discard::NoEntryFound),
            "the cached resolution of a withdrawn label must not forward"
        );
    }

    #[test]
    fn rebinding_after_flush_serves_the_new_binding() {
        let mut f: SoftwareForwarder<HashTable> =
            SoftwareForwarder::new(SwRouterType::Lsr).with_flow_cache();
        f.bind(FibLevel::L2, 9, lbl(10), LabelOp::Swap);
        let mut s = labeled_stack(&[(9, 0, 64)]);
        f.process(&mut s, 0, CosBits::BEST_EFFORT, 0);
        f.fib_mut().clear_level(FibLevel::L2);
        f.bind(FibLevel::L2, 9, lbl(77), LabelOp::Swap);
        let mut s = labeled_stack(&[(9, 0, 64)]);
        f.process(&mut s, 0, CosBits::BEST_EFFORT, 0);
        assert_eq!(s.top().unwrap().label.value(), 77);
    }

    #[test]
    fn probe_accounting_accumulates() {
        let mut f: SoftwareForwarder<LinearTable> = SoftwareForwarder::new(SwRouterType::Lsr);
        for i in 1..=8u64 {
            f.bind(FibLevel::L2, i, lbl(500), LabelOp::Swap);
        }
        let mut s = labeled_stack(&[(8, 0, 64)]);
        f.process(&mut s, 0, CosBits::BEST_EFFORT, 0);
        assert_eq!(f.total_probes(), 8);
    }
}
