//! Vocabulary types of the software data plane.
//!
//! These deliberately mirror the hardware model's operation set so that
//! the two planes can be configured identically and compared
//! differentially, but the crate stays independent of `mpls-core` — a
//! software baseline must not depend on the thing it is a baseline for.

use mpls_packet::Label;
use serde::{Deserialize, Serialize};

/// A label operation prescribed by a forwarding table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LabelOp {
    /// Invalidated entry; matching it discards the packet.
    Nop,
    /// Push the entry's new label (tunnel entry / ingress).
    Push,
    /// Pop the top label (tunnel exit / egress).
    Pop,
    /// Replace the top label (transit).
    Swap,
}

impl core::fmt::Display for LabelOp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::Nop => "nop",
            Self::Push => "push",
            Self::Pop => "pop",
            Self::Swap => "swap",
        })
    }
}

/// A stored binding: the lookup key maps to a replacement label and an
/// operation (the "label pair" of the paper's information base).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelBinding {
    /// The new/pushed label.
    pub new_label: Label,
    /// What to do with the stack.
    pub op: LabelOp,
}

impl LabelBinding {
    /// Convenience constructor.
    pub const fn new(new_label: Label, op: LabelOp) -> Self {
        Self { new_label, op }
    }
}

/// Why the software plane discarded a packet. Field-for-field equivalent
/// to the hardware model's reasons, enabling differential assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Discard {
    /// No binding matched the key.
    NoEntryFound,
    /// TTL was zero or decremented to zero.
    TtlExpired,
    /// Nop entry, overflowing push, or a labeling operation this router
    /// type cannot perform.
    InconsistentOperation,
}

impl core::fmt::Display for Discard {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::NoEntryFound => "no entry found",
            Self::TtlExpired => "TTL expired",
            Self::InconsistentOperation => "inconsistent operation",
        })
    }
}

/// Router role, mirroring the hardware `rtrtype` pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwRouterType {
    /// Label Edge Router.
    Ler,
    /// Label Switch Router.
    Lsr,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        assert_eq!(LabelOp::Swap.to_string(), "swap");
        assert_eq!(Discard::TtlExpired.to_string(), "TTL expired");
    }

    #[test]
    fn binding_construction() {
        let b = LabelBinding::new(Label::new(77).unwrap(), LabelOp::Push);
        assert_eq!(b.new_label.value(), 77);
        assert_eq!(b.op, LabelOp::Push);
    }
}
