//! RFC 3031-style table facade: NHLFE / ILM / FTN.
//!
//! The crate's native [`crate::Fib`] mirrors the paper's three-level
//! information base. Production MPLS stacks are instead organized around
//! RFC 3031's vocabulary:
//!
//! * **NHLFE** (Next Hop Label Forwarding Entry): operation + out-label +
//!   next hop;
//! * **ILM** (Incoming Label Map): incoming label → NHLFE;
//! * **FTN** (FEC-to-NHLFE): FEC (destination prefix) → NHLFE.
//!
//! This module provides that organization as a thin layer that *compiles
//! down* to the level-based FIB plus a next-hop table, so a configuration
//! written in RFC terms can drive either data plane (and, through the
//! control-plane `BindingEntry` format, the hardware information base).
//!
//! # TTL ordering (audited, ISSUE 5)
//!
//! A labeled packet arriving with TTL ≤ 1 is discarded with
//! `TtlExpired` *before* the bound operation (swap/push/pop) mutates the
//! stack; an unlabeled packet with TTL 0 is discarded before the ingress
//! push installs anything. Both planes order the checks the same way the
//! hardware's `VerifyInfo` state does — search first (a miss is
//! `NoEntryFound` even at TTL 0, matching the paper's "the packet is
//! immediately discarded if no information is found"), then TTL, then
//! the operation — so no discard path ever half-applies an operation or
//! leaks side effects (flow-table installs included) for a dead packet.
//! Regression tests for TTL 0 and TTL 1 at the push, swap, and PHP-pop
//! points live in `forwarder.rs`, `mpls-router`'s software and embedded
//! models, and below (through this facade's compiled tables).

use crate::fib::{Fib, FibLevel};
use crate::ftn::Prefix;
use crate::lookup::LookupStrategy;
use crate::types::{LabelBinding, LabelOp};
use mpls_packet::Label;
use serde::{Deserialize, Serialize};

/// Where an NHLFE sends the packet after the label operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NextHop {
    /// An adjacent node id.
    Node(u32),
    /// Local delivery (egress).
    Local,
}

/// A Next Hop Label Forwarding Entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Nhlfe {
    /// The label operation to perform.
    pub op: LabelOp,
    /// The outgoing label for push/swap (ignored for pop).
    pub out_label: Label,
    /// Where the packet goes next.
    pub next_hop: NextHop,
}

impl Nhlfe {
    /// A swap entry.
    pub fn swap(out_label: Label, next_hop: NextHop) -> Self {
        Self {
            op: LabelOp::Swap,
            out_label,
            next_hop,
        }
    }

    /// A push entry.
    pub fn push(out_label: Label, next_hop: NextHop) -> Self {
        Self {
            op: LabelOp::Push,
            out_label,
            next_hop,
        }
    }

    /// A pop entry.
    pub fn pop(next_hop: NextHop) -> Self {
        Self {
            op: LabelOp::Pop,
            out_label: Label::IPV4_EXPLICIT_NULL,
            next_hop,
        }
    }
}

/// An RFC-shaped MPLS forwarding configuration for one router.
///
/// ILM entries are keyed by `(incoming label, nesting depth)` because the
/// paper's architecture stores depth-1 and depth-2/3 bindings in separate
/// memories; `depth = 1` covers ordinary transit, deeper values cover
/// tunnel interiors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RfcTables {
    ilm: Vec<(Label, u8, Nhlfe)>,
    ftn: Vec<(Prefix, Nhlfe)>,
}

impl RfcTables {
    /// Creates empty tables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps an incoming label at `depth` (1–3) to an NHLFE.
    pub fn map_label(&mut self, label: Label, depth: u8, nhlfe: Nhlfe) -> &mut Self {
        assert!((1..=3).contains(&depth), "depth {depth} out of range");
        self.ilm.push((label, depth, nhlfe));
        self
    }

    /// Maps a FEC to an NHLFE (must be a push — RFC 3031 §3.10 binds FECs
    /// to label *impositions*).
    pub fn map_fec(&mut self, fec: Prefix, nhlfe: Nhlfe) -> &mut Self {
        assert_eq!(nhlfe.op, LabelOp::Push, "FTN entries impose labels");
        self.ftn.push((fec, nhlfe));
        self
    }

    /// ILM entries.
    pub fn ilm(&self) -> &[(Label, u8, Nhlfe)] {
        &self.ilm
    }

    /// FTN entries.
    pub fn ftn(&self) -> &[(Prefix, Nhlfe)] {
        &self.ftn
    }

    /// Compiles into the level-keyed FIB the forwarders consume, plus the
    /// `(key, next hop)` pairs the egress stage needs. Host-route (/32)
    /// FECs are installed into level 1 directly; wider FECs are returned
    /// for the caller's prefix classifier.
    pub fn compile<S: LookupStrategy>(&self) -> CompiledTables<S> {
        let mut fib = Fib::new();
        let mut next_hops = Vec::new();
        let mut wide_fecs = Vec::new();

        for &(label, depth, nhlfe) in &self.ilm {
            let level = match depth {
                1 => FibLevel::L2,
                _ => FibLevel::L3,
            };
            fib.bind(
                level,
                label.value() as u64,
                LabelBinding::new(nhlfe.out_label, nhlfe.op),
            );
            let key = match nhlfe.op {
                // After a swap or (re)push the packet leaves under the
                // new label; after a pop the next hop is keyed by what is
                // underneath, which the caller wires per LSP.
                LabelOp::Swap | LabelOp::Push => Some(nhlfe.out_label),
                LabelOp::Pop | LabelOp::Nop => None,
            };
            next_hops.push((key, nhlfe.next_hop));
        }
        for &(fec, nhlfe) in &self.ftn {
            if fec.len == 32 {
                fib.bind(
                    FibLevel::L1,
                    fec.addr as u64,
                    LabelBinding::new(nhlfe.out_label, LabelOp::Push),
                );
            } else {
                wide_fecs.push((fec, nhlfe));
            }
            next_hops.push((Some(nhlfe.out_label), nhlfe.next_hop));
        }

        CompiledTables {
            fib,
            next_hops,
            wide_fecs,
        }
    }
}

/// The result of compiling [`RfcTables`].
#[derive(Debug, Clone)]
pub struct CompiledTables<S: LookupStrategy> {
    /// The level-keyed FIB.
    pub fib: Fib<S>,
    /// `(outgoing top label, next hop)` pairs; `None` keys the unlabeled
    /// case.
    pub next_hops: Vec<(Option<Label>, NextHop)>,
    /// FECs wider than /32, for the prefix classifier.
    pub wide_fecs: Vec<(Prefix, Nhlfe)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup::HashTable;

    fn lbl(v: u32) -> Label {
        Label::new(v).unwrap()
    }

    #[test]
    fn transit_ilm_compiles_to_level2() {
        let mut t = RfcTables::new();
        t.map_label(lbl(100), 1, Nhlfe::swap(lbl(200), NextHop::Node(3)));
        let c = t.compile::<HashTable>();
        let (b, _) = c.fib.lookup(FibLevel::L2, 100);
        let b = b.unwrap();
        assert_eq!(b.new_label, lbl(200));
        assert_eq!(b.op, LabelOp::Swap);
        assert!(c.next_hops.contains(&(Some(lbl(200)), NextHop::Node(3))));
    }

    #[test]
    fn tunnel_interior_compiles_to_level3() {
        let mut t = RfcTables::new();
        t.map_label(lbl(40), 2, Nhlfe::pop(NextHop::Node(9)));
        let c = t.compile::<HashTable>();
        assert!(c.fib.lookup(FibLevel::L3, 40).0.is_some());
        assert!(c.fib.lookup(FibLevel::L2, 40).0.is_none());
    }

    #[test]
    fn host_fec_lands_in_level1() {
        let mut t = RfcTables::new();
        t.map_fec(
            Prefix::new(0xc0a80107, 32),
            Nhlfe::push(lbl(55), NextHop::Node(2)),
        );
        let c = t.compile::<HashTable>();
        let (b, _) = c.fib.lookup(FibLevel::L1, 0xc0a80107);
        assert_eq!(b.unwrap().new_label, lbl(55));
        assert!(c.wide_fecs.is_empty());
    }

    #[test]
    fn wide_fec_is_deferred_to_the_classifier() {
        let mut t = RfcTables::new();
        t.map_fec(
            Prefix::new(0xc0a80100, 24),
            Nhlfe::push(lbl(55), NextHop::Node(2)),
        );
        let c = t.compile::<HashTable>();
        assert_eq!(c.fib.total_occupancy(), 0);
        assert_eq!(c.wide_fecs.len(), 1);
    }

    #[test]
    #[should_panic(expected = "FTN entries impose labels")]
    fn ftn_rejects_non_push() {
        RfcTables::new().map_fec(Prefix::new(0, 0), Nhlfe::swap(lbl(1), NextHop::Local));
    }

    #[test]
    #[should_panic(expected = "depth 4 out of range")]
    fn ilm_rejects_bad_depth() {
        RfcTables::new().map_label(lbl(1), 4, Nhlfe::pop(NextHop::Local));
    }

    #[test]
    fn compiled_tables_drive_a_forwarder() {
        use crate::forwarder::{ProcessResult, SoftwareForwarder};
        use crate::types::SwRouterType;
        use mpls_packet::{CosBits, LabelStack};

        let mut t = RfcTables::new();
        t.map_label(lbl(100), 1, Nhlfe::swap(lbl(200), NextHop::Node(3)));
        let c = t.compile::<HashTable>();

        let mut f: SoftwareForwarder<HashTable> = SoftwareForwarder::new(SwRouterType::Lsr);
        *f.fib_mut() = c.fib;

        let mut stack = LabelStack::new();
        stack.push_parts(lbl(100), CosBits::BEST_EFFORT, 9).unwrap();
        let r = f.process(&mut stack, 0, CosBits::BEST_EFFORT, 0);
        assert_eq!(r, ProcessResult::Updated { op: LabelOp::Swap });
        assert_eq!(stack.top().unwrap().label, lbl(200));
    }

    #[test]
    fn ttl_expiry_precedes_the_operation_through_rfc_tables() {
        use crate::forwarder::{ProcessResult, SoftwareForwarder};
        use crate::types::{Discard, SwRouterType};
        use mpls_packet::{CosBits, LabelStack};

        // One ILM entry per operation kind; TTL 0 and 1 must expire at
        // each before the stack is touched.
        let mut t = RfcTables::new();
        t.map_label(lbl(100), 1, Nhlfe::swap(lbl(200), NextHop::Node(3)));
        t.map_label(lbl(101), 1, Nhlfe::push(lbl(300), NextHop::Node(3)));
        t.map_label(lbl(40), 2, Nhlfe::pop(NextHop::Node(9)));
        let c = t.compile::<HashTable>();
        let mut f: SoftwareForwarder<HashTable> = SoftwareForwarder::new(SwRouterType::Lsr);
        *f.fib_mut() = c.fib;

        for ttl in [0u8, 1] {
            for top in [100u32, 101] {
                let mut stack = LabelStack::new();
                stack
                    .push_parts(lbl(top), CosBits::BEST_EFFORT, ttl)
                    .unwrap();
                assert_eq!(
                    f.process(&mut stack, 0, CosBits::BEST_EFFORT, 0),
                    ProcessResult::Discarded(Discard::TtlExpired),
                    "label {top} ttl {ttl}"
                );
            }
            let mut stack = LabelStack::new();
            stack.push_parts(lbl(7), CosBits::BEST_EFFORT, 64).unwrap();
            stack
                .push_parts(lbl(40), CosBits::BEST_EFFORT, ttl)
                .unwrap();
            assert_eq!(
                f.process(&mut stack, 0, CosBits::BEST_EFFORT, 0),
                ProcessResult::Discarded(Discard::TtlExpired),
                "php pop ttl {ttl}"
            );
        }
    }
}
