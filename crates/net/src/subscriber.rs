//! Subscriber-population workload model.
//!
//! A [`SubscriberModel`] describes a population of subscribers behind
//! one ingress LER, split into SLA classes. Each class expands to one
//! aggregate [`ClosedLoop`](crate::traffic::TrafficPattern::ClosedLoop)
//! flow: the superposition of many independent subscribers' transfer
//! arrivals is (very nearly) Poisson at the aggregate rate, so the
//! per-class arrival process is the population rate — subscribers ×
//! per-subscriber rate × class share — modulated by the shared diurnal
//! curve and flash-crowd window. Class precedence maps straight onto
//! the existing CoS machinery (the TOS byte steers CoS-aware queueing
//! and TE class selection), and each class carries its own
//! flow-completion-time SLA, scored per flow in
//! [`FlowStats::sla_violations`](crate::stats::FlowStats).

use crate::traffic::{ClosedLoopSpec, FlowSpec, TrafficPattern};
use mpls_control::NodeId;
use mpls_packet::ipv4::Ipv4Addr;
use serde::{Deserialize, Serialize};

/// One service tier of the subscriber population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaClass {
    /// Class name, embedded in the expanded flow's name
    /// (`"<model>/<class>"`).
    pub name: String,
    /// IP precedence (0–7) for the class's packets — the CoS hook.
    pub precedence: u8,
    /// Share of the subscriber population in this class, in percent.
    /// Shares need not sum to 100; each class's rate is independent.
    pub weight_pct: u32,
    /// Flow-completion-time SLA (0 disables), scored per transfer.
    pub sla_fct_ns: u64,
    /// Payload bytes per packet for this class's transfers.
    pub payload_bytes: usize,
}

impl SlaClass {
    /// A three-tier residential mix: gold interactive, silver web,
    /// bronze bulk.
    pub fn residential_mix() -> Vec<SlaClass> {
        vec![
            SlaClass {
                name: "gold".into(),
                precedence: 5,
                weight_pct: 10,
                sla_fct_ns: 20_000_000,
                payload_bytes: 400,
            },
            SlaClass {
                name: "silver".into(),
                precedence: 2,
                weight_pct: 30,
                sla_fct_ns: 100_000_000,
                payload_bytes: 900,
            },
            SlaClass {
                name: "bronze".into(),
                precedence: 0,
                weight_pct: 60,
                sla_fct_ns: 0,
                payload_bytes: 1200,
            },
        ]
    }
}

/// A subscriber population behind one ingress, expanded into one
/// aggregate closed-loop flow per SLA class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubscriberModel {
    /// Model name; expanded flows are named `"<name>/<class>"`.
    pub name: String,
    /// Population size.
    pub subscribers: u64,
    /// Mean think time of one subscriber between transfers, at the
    /// diurnal peak.
    pub mean_think_ns: u64,
    /// Shared closed-loop knobs: transfer sizes, congestion control,
    /// diurnal curve and flash crowd. Per-class fields
    /// (`sla_fct_ns`) are overridden from each [`SlaClass`].
    pub base: ClosedLoopSpec,
    /// The service tiers.
    pub classes: Vec<SlaClass>,
}

impl SubscriberModel {
    /// The aggregate mean transfer-arrival gap for a class holding
    /// `weight_pct` percent of the population: `subscribers` sources
    /// each with mean think `mean_think_ns` superpose to rate
    /// `subs * share / think`, i.e. gap `think / (subs * share)`.
    /// Clamped to ≥ 1 ns; degenerate populations (0 subscribers or a
    /// 0-weight class) collapse to an effectively silent source with a
    /// huge gap rather than a panic.
    pub fn class_arrival_ns(&self, weight_pct: u32) -> u64 {
        let eff = self.subscribers as f64 * weight_pct as f64 / 100.0;
        if eff <= 0.0 {
            return u64::MAX / 4;
        }
        ((self.mean_think_ns.max(1) as f64 / eff) as u64).max(1)
    }

    /// Expands the population into per-class closed-loop [`FlowSpec`]s
    /// from `ingress` toward `dst_addr`. Classes are emitted in
    /// declaration order, so flow ids — and with them RNG streams and
    /// canonical event keys — are stable for a given model.
    pub fn flows(
        &self,
        ingress: NodeId,
        src_addr: Ipv4Addr,
        dst_addr: Ipv4Addr,
        start_ns: u64,
        stop_ns: u64,
    ) -> Vec<FlowSpec> {
        self.classes
            .iter()
            .map(|class| {
                let mut cl = self.base;
                cl.mean_arrival_ns = self.class_arrival_ns(class.weight_pct);
                cl.sla_fct_ns = class.sla_fct_ns;
                FlowSpec {
                    name: format!("{}/{}", self.name, class.name),
                    ingress,
                    src_addr,
                    dst_addr,
                    payload_bytes: class.payload_bytes,
                    precedence: class.precedence.min(7),
                    pattern: TrafficPattern::ClosedLoop(cl),
                    start_ns,
                    stop_ns,
                    police: None,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SubscriberModel {
        SubscriberModel {
            name: "pop".into(),
            subscribers: 1000,
            mean_think_ns: 1_000_000_000,
            base: ClosedLoopSpec::default(),
            classes: SlaClass::residential_mix(),
        }
    }

    #[test]
    fn aggregate_rate_scales_with_population_and_share() {
        let m = model();
        // 1000 subs, 10% share, 1s think => 100 transfers/s => 10ms gap.
        assert_eq!(m.class_arrival_ns(10), 10_000_000);
        assert_eq!(m.class_arrival_ns(60), 1_000_000_000 / 600);
    }

    #[test]
    fn degenerate_populations_go_quiet_not_panicky() {
        let mut m = model();
        m.subscribers = 0;
        assert!(m.class_arrival_ns(50) > 1 << 60);
        m.subscribers = 1000;
        assert!(m.class_arrival_ns(0) > 1 << 60);
        m.mean_think_ns = 0;
        assert!(m.class_arrival_ns(100) >= 1);
    }

    #[test]
    fn expansion_is_per_class_and_stable() {
        let m = model();
        let src = mpls_packet::ipv4::parse_addr("10.0.0.1").unwrap();
        let dst = mpls_packet::ipv4::parse_addr("192.168.1.1").unwrap();
        let flows = m.flows(0, src, dst, 0, 5_000_000);
        assert_eq!(flows.len(), 3);
        assert_eq!(flows[0].name, "pop/gold");
        assert_eq!(flows[0].precedence, 5);
        let TrafficPattern::ClosedLoop(cl) = flows[0].pattern else {
            panic!("expanded flow is closed-loop");
        };
        assert_eq!(cl.sla_fct_ns, 20_000_000);
        assert_eq!(cl.mean_arrival_ns, 10_000_000);
        // Bronze is the bulk tier: faster aggregate arrivals, no SLA.
        let TrafficPattern::ClosedLoop(cl) = flows[2].pattern else {
            panic!("expanded flow is closed-loop");
        };
        assert_eq!(cl.sla_fct_ns, 0);
        assert!(cl.mean_arrival_ns < 10_000_000);
    }
}
