//! The simulator's time-ordered event queue and the coordinator's
//! control events.
//!
//! The queue is generic over its payload: shards use it for packet-level
//! events (ordered by a canonical key, see `engine::shard`), the
//! coordinator for [`ControlEvent`]s. Events at equal timestamps pop by
//! [`EventRank`] first — global deliveries before local timers — then in
//! insertion order (a monotone sequence number breaks the remaining
//! ties), which keeps runs deterministic for a fixed seed *and*
//! independent of how many shards raced to schedule them.

use mpls_control::{LinkId, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in nanoseconds.
pub type SimTime = u64;

/// Coordinator-level events: everything that mutates shared state (the
/// control plane, channel liveness, fault records) or reads a globally
/// consistent snapshot. These run between shard epochs, never inside
/// one, so shards observe control-plane state frozen for the duration
/// of an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlEvent {
    /// A scheduled fault: the link's channels go dark.
    LinkDown {
        /// The failing link.
        link: LinkId,
    },
    /// A scheduled repair: the link's channels come back.
    LinkUp {
        /// The repaired link.
        link: LinkId,
    },
    /// The control plane learns of a failure (one detection delay after
    /// `LinkDown`) and starts recovery.
    FaultDetected {
        /// The detected link.
        link: LinkId,
    },
    /// A head-end re-signaling attempt completes.
    Resignal {
        /// Index into the engine's pending-resignal table.
        pending: usize,
    },
    /// A repaired link's hold-down timer expires; the control plane may
    /// route over it again.
    HoldDownExpired {
        /// The repaired link.
        link: LinkId,
    },
    /// A retired make-before-break husk's drain grace expires; its
    /// remaining state is released.
    TeardownLsp {
        /// The husk to tear down.
        lsp: mpls_control::LspId,
    },
    /// A periodic telemetry sample point: queue depths and utilization
    /// series take a reading. Only scheduled on telemetry-enabled runs,
    /// and only re-armed while other work is pending, so it never keeps
    /// an otherwise-finished run alive.
    TelemetrySample,
    /// The distributed control plane's hello/keepalive timer fires:
    /// every LDP speaker emits its periodic PDUs and expires silent
    /// sessions. Only scheduled when the run uses `--control ldp`.
    LdpTick,
    /// An in-flight LDP PDU reaches the far end of its channel.
    LdpDeliver {
        /// Slot in the engine's in-flight PDU table (the payload lives
        /// there so this event stays `Copy`).
        msg: usize,
    },
    /// A node crashes: every incident link goes dark, its forwarding
    /// state is wiped (the FIB is cold) and — under `--control ldp` —
    /// all of its protocol state is lost.
    NodeDown {
        /// The crashing node.
        node: NodeId,
    },
    /// A crashed node restarts: incident links return and the node
    /// begins re-learning its forwarding state.
    NodeUp {
        /// The restarting node.
        node: NodeId,
    },
    /// The centralized control plane re-downloads a restarted node's
    /// configuration (one detection delay after [`ControlEvent::NodeUp`];
    /// the cold-FIB window ends here). LDP runs re-learn via the
    /// protocol instead.
    NodeReprovision {
        /// The node being reprovisioned.
        node: NodeId,
    },
    /// A control-channel partition begins on a link: control PDUs are
    /// dropped while data traffic keeps flowing — the failure mode that
    /// separates "the protocol died" from "the wire died".
    PartitionStart {
        /// The partitioned link.
        link: LinkId,
    },
    /// The control-channel partition heals.
    PartitionEnd {
        /// The healed link.
        link: LinkId,
    },
}

/// Tie-break class for events sharing a timestamp: lower ranks pop
/// first, and only then does insertion order decide.
///
/// The one rule that matters lives in the [`ControlEvent`] impl: an
/// in-flight delivery ([`ControlEvent::LdpDeliver`]) outranks every
/// timer at the same instant. A keepalive that lands exactly when the
/// receiver's hold timer would expire therefore refreshes the session
/// before [`ControlEvent::LdpTick`] inspects it — "the wire beats the
/// clock" — matching RFC 5036's intent that a session only expires
/// after genuine silence. Without the rank the winner would depend on
/// which event happened to be scheduled first, which in turn depends
/// on shard count.
pub trait EventRank {
    /// Rank within a timestamp; lower pops first.
    fn rank(&self) -> u8;
}

impl EventRank for ControlEvent {
    fn rank(&self) -> u8 {
        match self {
            // Deliveries carry state that timers at the same instant
            // must observe.
            ControlEvent::LdpDeliver { .. } => 0,
            _ => 1,
        }
    }
}

struct Entry<K> {
    time: SimTime,
    rank: u8,
    seq: u64,
    kind: K,
}

impl<K> PartialEq for Entry<K> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<K> Eq for Entry<K> {}
impl<K> PartialOrd for Entry<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<K> Ord for Entry<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, then
        // lowest-rank-first, then insertion order.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.rank.cmp(&self.rank))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with deterministic tie-breaking.
pub struct EventQueue<K> {
    heap: BinaryHeap<Entry<K>>,
    next_seq: u64,
}

impl<K> Default for EventQueue<K> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<K> EventQueue<K> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, kind: K)
    where
        K: EventRank,
    {
        let rank = kind.rank();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            rank,
            seq,
            kind,
        });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, K)> {
        self.heap.pop().map(|e| (e.time, e.kind))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Test payloads are unranked: every u32 ties, so insertion order
    // alone decides.
    impl EventRank for u32 {
        fn rank(&self) -> u8 {
            1
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 3u32);
        q.schedule(10, 1);
        q.schedule(20, 2);
        assert_eq!(q.peek_time(), Some(10));
        let order: Vec<(SimTime, u32)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for flow in 0..5u32 {
            q.schedule(7, flow);
        }
        let mut flows = Vec::new();
        while let Some((_, flow)) = q.pop() {
            flows.push(flow);
        }
        assert_eq!(flows, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn deliveries_outrank_timers_at_equal_times() {
        // The tick is scheduled *first*, so insertion order alone would
        // expire the session before the keepalive lands; the rank flips
        // the outcome.
        let mut q = EventQueue::new();
        q.schedule(100, ControlEvent::LdpTick);
        q.schedule(100, ControlEvent::LdpDeliver { msg: 7 });
        q.schedule(100, ControlEvent::TelemetrySample);
        q.schedule(100, ControlEvent::LdpDeliver { msg: 3 });
        let order: Vec<ControlEvent> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec![
                ControlEvent::LdpDeliver { msg: 7 },
                ControlEvent::LdpDeliver { msg: 3 },
                ControlEvent::LdpTick,
                ControlEvent::TelemetrySample,
            ]
        );
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(1, ControlEvent::TelemetrySample);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
