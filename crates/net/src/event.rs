//! The simulator's time-ordered event queue.
//!
//! Events at equal timestamps pop in insertion order (a monotone sequence
//! number breaks ties), which keeps runs deterministic for a fixed seed.

use crate::sim::SimPacket;
use mpls_control::{LinkId, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in nanoseconds.
pub type SimTime = u64;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A packet reaches a node's input and is handed to its router.
    Arrive {
        /// Receiving node.
        node: NodeId,
        /// The packet.
        packet: SimPacket,
        /// The channel (index, incarnation) the packet traveled, when it
        /// came over a wire rather than from a local source. If the
        /// channel's incarnation has moved on by delivery time, the link
        /// was cut while the packet was propagating and it is lost.
        via: Option<(usize, u64)>,
    },
    /// A channel finished serializing its current packet.
    TransmitDone {
        /// Index into the simulator's channel table.
        channel: usize,
        /// Channel incarnation at scheduling time; stale if it moved on.
        gen: u64,
    },
    /// A traffic source emits its next packet.
    SourceEmit {
        /// Index into the simulator's flow table.
        flow: usize,
    },
    /// A scheduled fault: the link's channels go dark.
    LinkDown {
        /// The failing link.
        link: LinkId,
    },
    /// A scheduled repair: the link's channels come back.
    LinkUp {
        /// The repaired link.
        link: LinkId,
    },
    /// The control plane learns of a failure (one detection delay after
    /// `LinkDown`) and starts recovery.
    FaultDetected {
        /// The detected link.
        link: LinkId,
    },
    /// A head-end re-signaling attempt completes.
    Resignal {
        /// Index into the simulator's pending-resignal table.
        pending: usize,
    },
    /// A repaired link's hold-down timer expires; the control plane may
    /// route over it again.
    HoldDownExpired {
        /// The repaired link.
        link: LinkId,
    },
    /// A retired make-before-break husk's drain grace expires; its
    /// remaining state is released.
    TeardownLsp {
        /// The husk to tear down.
        lsp: mpls_control::LspId,
    },
    /// A periodic telemetry sample point: queue depths and utilization
    /// series take a reading. Only scheduled on telemetry-enabled runs,
    /// and only re-armed while other work is pending, so it never keeps
    /// an otherwise-finished run alive.
    TelemetrySample,
}

struct Entry {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with deterministic tie-breaking.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, kind });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.heap.pop().map(|e| (e.time, e.kind))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, EventKind::SourceEmit { flow: 3 });
        q.schedule(10, EventKind::SourceEmit { flow: 1 });
        q.schedule(20, EventKind::SourceEmit { flow: 2 });
        let order: Vec<SimTime> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for flow in 0..5 {
            q.schedule(7, EventKind::SourceEmit { flow });
        }
        let mut flows = Vec::new();
        while let Some((_, EventKind::SourceEmit { flow })) = q.pop() {
            flows.push(flow);
        }
        assert_eq!(flows, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, EventKind::TransmitDone { channel: 0, gen: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
