//! Token-bucket traffic policing.
//!
//! "QoS functions include packet classification, admission control,
//! configuration management and congestion avoidance" (paper §1). The
//! signaling layer's bandwidth reservations implement admission control
//! for *LSPs*; this policer enforces the contract per *packet* at the
//! ingress: flows that exceed their committed rate have the excess
//! dropped at the edge instead of congesting the core.

use serde::{Deserialize, Serialize};

/// Declarative policer configuration attached to a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicerSpec {
    /// Committed information rate in bits per second.
    pub rate_bps: u64,
    /// Burst tolerance in bytes.
    pub burst_bytes: u64,
}

/// A token bucket: fills at `rate_bps`, holds at most `burst_bytes`
/// worth of tokens; a packet conforms when the bucket holds its size.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    spec: PolicerSpec,
    /// Token level in *bytes* (fractional to avoid rounding drift).
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// Creates a full bucket.
    pub fn new(spec: PolicerSpec) -> Self {
        Self {
            spec,
            tokens: spec.burst_bytes as f64,
            last_ns: 0,
        }
    }

    /// The configuration.
    pub fn spec(&self) -> PolicerSpec {
        self.spec
    }

    /// Current token level in bytes.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Offers a `bytes`-sized packet at absolute time `now_ns`. Returns
    /// `true` (and debits the bucket) when the packet conforms. Time must
    /// be non-decreasing across calls.
    pub fn conform(&mut self, now_ns: u64, bytes: usize) -> bool {
        debug_assert!(now_ns >= self.last_ns, "time ran backwards");
        let elapsed = now_ns.saturating_sub(self.last_ns);
        self.last_ns = now_ns;
        let refill = self.spec.rate_bps as f64 / 8.0 * elapsed as f64 / 1e9;
        self.tokens = (self.tokens + refill).min(self.spec.burst_bytes as f64);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket(rate_bps: u64, burst: u64) -> TokenBucket {
        TokenBucket::new(PolicerSpec {
            rate_bps,
            burst_bytes: burst,
        })
    }

    #[test]
    fn burst_conforms_until_empty() {
        let mut b = bucket(8_000, 300); // 1 kB/s, 300 B burst
        assert!(b.conform(0, 100));
        assert!(b.conform(0, 100));
        assert!(b.conform(0, 100));
        assert!(!b.conform(0, 100), "bucket exhausted");
    }

    #[test]
    fn refills_at_rate() {
        let mut b = bucket(8_000, 300); // refills 1000 bytes per second
        for _ in 0..3 {
            assert!(b.conform(0, 100));
        }
        assert!(!b.conform(0, 100));
        // 100 ms later: 100 bytes refilled.
        assert!(b.conform(100_000_000, 100));
        assert!(!b.conform(100_000_000, 1));
    }

    #[test]
    fn never_exceeds_burst() {
        let mut b = bucket(8_000_000, 500);
        // A long idle period cannot bank more than the burst.
        assert!(!b.conform(10_000_000_000, 501));
        assert!(b.conform(10_000_000_000, 500));
    }

    #[test]
    fn steady_rate_conforms_overage_drops() {
        // 80 kb/s = 10 kB/s; 200-byte packets every 20 ms = exactly rate.
        let mut b = bucket(80_000, 400);
        let mut drops = 0;
        for i in 0..100u64 {
            if !b.conform(i * 20_000_000, 200) {
                drops += 1;
            }
        }
        assert_eq!(drops, 0, "conforming CBR must pass untouched");

        // Double the packet rate: steady state drops ~half.
        let mut b = bucket(80_000, 400);
        let mut drops = 0;
        for i in 0..200u64 {
            if !b.conform(i * 10_000_000, 200) {
                drops += 1;
            }
        }
        assert!((90..=110).contains(&drops), "drops {drops}");
    }
}
