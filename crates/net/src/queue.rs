//! Link output queues.
//!
//! "The CoS bits affect the scheduling and or discard algorithms applied
//! to the packet as it is transmitted through the network" (paper §2) —
//! this module is where that happens. Two disciplines:
//!
//! * [`QueueDiscipline::Fifo`] — one tail-drop queue, CoS ignored (the
//!   plain-IP baseline);
//! * [`QueueDiscipline::CosPriority`] — strict priority by the packet's
//!   CoS (top label's CoS bits, or the IP precedence for unlabeled
//!   packets), each class with its own tail-drop capacity.

use crate::sim::SimPacket;
use std::collections::VecDeque;

/// Queue discipline selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// Single FIFO holding at most `capacity` packets.
    Fifo {
        /// Maximum queued packets.
        capacity: usize,
    },
    /// Eight strict-priority classes (CoS 7 first), each holding at most
    /// `per_class` packets.
    CosPriority {
        /// Maximum queued packets per class.
        per_class: usize,
    },
    /// Random Early Detection over a single queue ("congestion
    /// avoidance", paper §1): below `min_th` every packet is accepted,
    /// above `max_th` every packet is dropped, in between packets are
    /// dropped with probability rising linearly to `max_p_percent`.
    /// Uses the instantaneous queue length (the EWMA of classic RED is
    /// omitted as a documented simplification).
    Red {
        /// Hard capacity.
        capacity: usize,
        /// Early-drop onset.
        min_th: usize,
        /// Full-drop threshold.
        max_th: usize,
        /// Drop probability at `max_th`, in percent (1–100).
        max_p_percent: u8,
    },
}

/// A link's output queue.
#[derive(Debug)]
pub struct LinkQueue {
    discipline: QueueDiscipline,
    classes: Vec<VecDeque<SimPacket>>,
    /// xorshift64 state for RED's probabilistic drops; seeded from the
    /// discipline so runs stay deterministic.
    rng: u64,
}

impl LinkQueue {
    /// Creates a queue with the given discipline.
    pub fn new(discipline: QueueDiscipline) -> Self {
        let classes = match discipline {
            QueueDiscipline::Fifo { .. } | QueueDiscipline::Red { .. } => 1,
            QueueDiscipline::CosPriority { .. } => 8,
        };
        Self {
            discipline,
            classes: (0..classes).map(|_| VecDeque::new()).collect(),
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn class_of(&self, p: &SimPacket) -> usize {
        match self.discipline {
            QueueDiscipline::Fifo { .. } | QueueDiscipline::Red { .. } => 0,
            QueueDiscipline::CosPriority { .. } => p.cos_class() as usize,
        }
    }

    /// Next uniform value in [0, 1) from the internal xorshift64.
    fn uniform(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Enqueues a packet; returns `false` when it is dropped (tail drop
    /// at capacity, or RED early drop).
    pub fn push(&mut self, p: SimPacket) -> bool {
        if let QueueDiscipline::Red {
            capacity,
            min_th,
            max_th,
            max_p_percent,
        } = self.discipline
        {
            let len = self.classes[0].len();
            if len >= capacity || len >= max_th {
                return false;
            }
            if len >= min_th {
                let span = (max_th - min_th).max(1) as f64;
                let p_drop = max_p_percent as f64 / 100.0 * (len - min_th) as f64 / span;
                if self.uniform() < p_drop {
                    return false;
                }
            }
            self.classes[0].push_back(p);
            return true;
        }
        let cap = match self.discipline {
            QueueDiscipline::Fifo { capacity } => capacity,
            QueueDiscipline::CosPriority { per_class } => per_class,
            QueueDiscipline::Red { .. } => unreachable!("handled above"),
        };
        let class = self.class_of(&p);
        if self.classes[class].len() >= cap {
            return false;
        }
        self.classes[class].push_back(p);
        true
    }

    /// Dequeues the next packet to transmit: highest CoS class first, FIFO
    /// within a class.
    pub fn pop(&mut self) -> Option<SimPacket> {
        for class in self.classes.iter_mut().rev() {
            if let Some(p) = class.pop_front() {
                return Some(p);
            }
        }
        None
    }

    /// Total queued packets.
    pub fn len(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties every class, returning the flushed packets (highest CoS
    /// first, FIFO within a class). Used when a link goes down and its
    /// queued packets are lost.
    pub fn drain(&mut self) -> Vec<SimPacket> {
        let mut out = Vec::with_capacity(self.len());
        for class in self.classes.iter_mut().rev() {
            out.extend(class.drain(..));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::tests_support::packet_with_cos;

    #[test]
    fn fifo_preserves_order_and_drops_at_capacity() {
        let mut q = LinkQueue::new(QueueDiscipline::Fifo { capacity: 2 });
        assert!(q.push(packet_with_cos(0, 1)));
        assert!(q.push(packet_with_cos(5, 2)));
        assert!(!q.push(packet_with_cos(7, 3)), "tail drop at capacity");
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn priority_pops_high_cos_first() {
        let mut q = LinkQueue::new(QueueDiscipline::CosPriority { per_class: 8 });
        q.push(packet_with_cos(0, 1));
        q.push(packet_with_cos(5, 2));
        q.push(packet_with_cos(0, 3));
        q.push(packet_with_cos(7, 4));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|p| p.seq)).collect();
        assert_eq!(order, vec![4, 2, 1, 3]);
    }

    #[test]
    fn red_accepts_below_min_threshold() {
        let mut q = LinkQueue::new(QueueDiscipline::Red {
            capacity: 32,
            min_th: 8,
            max_th: 24,
            max_p_percent: 50,
        });
        for i in 0..8 {
            assert!(q.push(packet_with_cos(0, i)), "below min_th never drops");
        }
    }

    #[test]
    fn red_always_drops_at_max_threshold() {
        let mut q = LinkQueue::new(QueueDiscipline::Red {
            capacity: 32,
            min_th: 2,
            max_th: 6,
            max_p_percent: 100,
        });
        // Fill to max_th (early drops possible between 2 and 6, so keep
        // offering until the length reaches 6).
        let mut seq = 0;
        while q.len() < 6 {
            q.push(packet_with_cos(0, seq));
            seq += 1;
            assert!(seq < 1000, "queue never filled");
        }
        assert!(!q.push(packet_with_cos(0, 999)), "at max_th always drops");
    }

    #[test]
    fn red_drops_probabilistically_in_between() {
        let mut q = LinkQueue::new(QueueDiscipline::Red {
            capacity: 1000,
            min_th: 10,
            max_th: 900,
            max_p_percent: 50,
        });
        let mut accepted = 0u32;
        let mut offered = 0u32;
        for i in 0..800u64 {
            offered += 1;
            if q.push(packet_with_cos(0, i)) {
                accepted += 1;
            }
        }
        assert!(accepted < offered, "some early drops must occur");
        assert!(accepted > offered / 2, "but not a total drop");
    }

    #[test]
    fn priority_drops_per_class() {
        let mut q = LinkQueue::new(QueueDiscipline::CosPriority { per_class: 1 });
        assert!(q.push(packet_with_cos(0, 1)));
        assert!(!q.push(packet_with_cos(0, 2)), "class 0 full");
        assert!(q.push(packet_with_cos(5, 3)), "class 5 still open");
        assert_eq!(q.len(), 2);
    }
}
