//! Directed transmission channels.
//!
//! Each physical link of the topology becomes two [`Channel`]s. A channel
//! serializes one packet at a time at its bandwidth, then the packet
//! propagates for the link's delay; further packets wait in the output
//! queue.

use crate::queue::{LinkQueue, QueueDiscipline};
use crate::sim::SimPacket;
use mpls_control::NodeId;

/// One direction of a link.
#[derive(Debug)]
pub struct Channel {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Propagation delay in nanoseconds.
    pub delay_ns: u64,
    /// Output queue.
    pub queue: LinkQueue,
    /// Whether a packet is currently being serialized.
    pub busy: bool,
    /// The packet on the wire, set while `busy`.
    pub in_flight: Option<SimPacket>,
    /// Queue-drop counter.
    pub drops: u64,
    /// Packets fully transmitted.
    pub transmitted: u64,
    /// Cumulative serialization time (ns): busy-time for utilization.
    pub busy_ns: u64,
    /// Whether the channel is physically live. Dead channels drop every
    /// packet offered to them.
    pub up: bool,
    /// Incarnation counter, bumped on every [`Channel::take_down`]. Events
    /// scheduled against an older incarnation (a `TransmitDone`, or an
    /// arrival of a packet that was on the wire when the link was cut) are
    /// stale and must be ignored.
    pub gen: u64,
    /// Probability each transmitted packet is lost on the wire.
    pub loss_prob: f64,
    /// Packets dropped because the channel was down (offered while dead,
    /// flushed or caught in flight by a cut).
    pub fault_drops: u64,
    /// Packets lost to random wire loss.
    pub loss_drops: u64,
    /// xorshift64* state for the wire-loss draws. Seeded per channel by
    /// the simulation so loss outcomes depend only on the run seed, the
    /// channel and the order of its own transmissions — never on how
    /// events interleave across other channels (or engine shards).
    loss_rng: u64,
}

impl Channel {
    /// Creates an idle channel.
    pub fn new(
        from: NodeId,
        to: NodeId,
        bandwidth_bps: u64,
        delay_ns: u64,
        discipline: QueueDiscipline,
    ) -> Self {
        Self {
            from,
            to,
            bandwidth_bps,
            delay_ns,
            queue: LinkQueue::new(discipline),
            busy: false,
            in_flight: None,
            drops: 0,
            transmitted: 0,
            busy_ns: 0,
            up: true,
            gen: 0,
            loss_prob: 0.0,
            fault_drops: 0,
            loss_drops: 0,
            loss_rng: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seeds the wire-loss RNG (zero is mapped off the degenerate
    /// all-zero xorshift state).
    pub fn seed_loss_rng(&mut self, seed: u64) {
        self.loss_rng = seed | 1;
    }

    /// Next uniform value in [0, 1) from the channel's own loss RNG.
    pub fn loss_roll(&mut self) -> f64 {
        let mut x = self.loss_rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.loss_rng = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Serialization time for `bytes` at this channel's bandwidth.
    pub fn serialization_ns(&self, bytes: usize) -> u64 {
        // bits * 1e9 / bps, rounded up so zero-cost transmission never
        // occurs on finite links.
        let bits = bytes as u128 * 8;
        ((bits * 1_000_000_000).div_ceil(self.bandwidth_bps as u128)) as u64
    }

    /// Offers a packet: queues it (or drops it when the queue is full).
    /// Returns whether the caller should start a transmission (channel was
    /// idle and the packet was accepted). Must not be called on a dead
    /// channel — the simulator counts those drops before offering.
    pub fn offer(&mut self, p: SimPacket) -> OfferResult {
        debug_assert!(self.up, "offer to a dead channel");
        if !self.queue.push(p) {
            self.drops += 1;
            return OfferResult::Dropped;
        }
        if self.busy {
            OfferResult::Queued
        } else {
            OfferResult::StartTransmit
        }
    }

    /// Cuts the channel: marks it dead, bumps the incarnation so pending
    /// `TransmitDone`/wire arrivals go stale, and returns the packets lost
    /// on the spot (flushed from the queue, plus any in serialization).
    /// The caller attributes the losses to flows; `fault_drops` is bumped
    /// here.
    pub fn take_down(&mut self) -> Vec<SimPacket> {
        self.up = false;
        self.gen += 1;
        self.busy = false;
        let mut lost = self.queue.drain();
        lost.extend(self.in_flight.take());
        self.fault_drops += lost.len() as u64;
        lost
    }

    /// Revives the channel, idle and empty.
    pub fn bring_up(&mut self) {
        self.up = true;
        self.busy = false;
        debug_assert!(self.in_flight.is_none() && self.queue.is_empty());
    }
}

/// Result of offering a packet to a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferResult {
    /// Queue full; the packet was dropped.
    Dropped,
    /// Queued behind an ongoing transmission.
    Queued,
    /// The channel was idle: begin serializing now.
    StartTransmit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::tests_support::packet_with_cos;

    fn chan() -> Channel {
        Channel::new(
            0,
            1,
            1_000_000_000,
            500_000,
            QueueDiscipline::Fifo { capacity: 2 },
        )
    }

    #[test]
    fn serialization_time() {
        let c = chan();
        // 1500 bytes at 1 Gb/s = 12 µs.
        assert_eq!(c.serialization_ns(1500), 12_000);
        // Rounds up.
        let c2 = Channel::new(0, 1, 3, 0, QueueDiscipline::Fifo { capacity: 1 });
        assert_eq!(c2.serialization_ns(1), 2_666_666_667);
    }

    #[test]
    fn offer_states() {
        let mut c = chan();
        assert_eq!(c.offer(packet_with_cos(0, 1)), OfferResult::StartTransmit);
        c.busy = true;
        assert_eq!(c.offer(packet_with_cos(0, 2)), OfferResult::Queued);
        assert_eq!(c.offer(packet_with_cos(0, 3)), OfferResult::Dropped);
        assert_eq!(c.drops, 1);
    }

    #[test]
    fn take_down_flushes_and_bumps_generation() {
        let mut c = chan();
        c.offer(packet_with_cos(0, 1));
        c.busy = true;
        c.in_flight = Some(packet_with_cos(0, 2));
        c.offer(packet_with_cos(0, 3));
        let lost = c.take_down();
        assert_eq!(lost.len(), 3, "queued + in-flight all lost");
        assert!(!c.up);
        assert_eq!(c.gen, 1);
        assert_eq!(c.fault_drops, 3);
        assert!(c.queue.is_empty() && c.in_flight.is_none());
        c.bring_up();
        assert!(c.up && !c.busy);
        assert_eq!(c.gen, 1, "bring_up keeps the incarnation");
    }
}
