//! Per-flow delivery statistics.

use crate::histogram::LatencyHistogram;
use mpls_router::{CauseCounts, DiscardCause};
use serde::{Deserialize, Serialize};

/// Index of a flow within a simulation.
pub type FlowId = usize;

/// Counters and delay accounting for one flow.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowStats {
    /// Packets emitted by the source.
    pub sent: u64,
    /// Packets delivered at the egress.
    pub delivered: u64,
    /// Packets discarded by a router's data plane.
    pub router_dropped: u64,
    /// Packets tail-dropped at a link queue.
    pub queue_dropped: u64,
    /// Packets dropped by the flow's edge policer before entering the
    /// network.
    pub policer_dropped: u64,
    /// Packets lost to a dead link: steered onto it, flushed from its
    /// queue, or caught on the wire when it was cut.
    pub link_dropped: u64,
    /// Packets lost to random wire loss.
    pub loss_dropped: u64,
    /// Per-cause breakdown of every discard above except queue and
    /// policer drops (which have their own dedicated counters):
    /// `drop_causes.total() == router_dropped + link_dropped +
    /// loss_dropped`.
    pub drop_causes: CauseCounts,
    /// Bytes delivered (wire size).
    pub bytes_delivered: u64,
    /// Sum of end-to-end delays (ns).
    pub delay_sum_ns: u64,
    /// Smallest delay seen.
    pub delay_min_ns: u64,
    /// Largest delay seen.
    pub delay_max_ns: u64,
    /// Sum of |delay_i - delay_{i-1}| for jitter.
    pub jitter_sum_ns: u64,
    /// Count of jitter samples.
    pub jitter_samples: u64,
    /// Timestamp of the first delivery.
    pub first_delivery_ns: u64,
    /// Timestamp of the last delivery.
    pub last_delivery_ns: u64,
    /// Full delay distribution (log-bucketed).
    pub delay_hist: LatencyHistogram,
    /// Closed-loop only: emissions that were re-sends of presumed-lost
    /// packets. Each retransmission is also counted in `sent`, so the
    /// conservation identity `sent = delivered + drops` holds unchanged.
    pub retransmits: u64,
    /// Closed-loop only: transfers whose arrival was accepted.
    pub transfers_started: u64,
    /// Closed-loop only: transfers fully delivered.
    pub transfers_completed: u64,
    /// Closed-loop only: sum of flow completion times (arrival →
    /// last ack, queue wait included), for completed transfers.
    pub fct_sum_ns: u64,
    /// Closed-loop only: flow-completion-time distribution.
    pub fct_hist: LatencyHistogram,
    /// Closed-loop only: completed transfers that blew their class SLA.
    pub sla_violations: u64,
    /// Closed-loop only: congestion marks applied to this flow's packets
    /// at link queues past the ECN threshold.
    pub ecn_marks: u64,
    /// Closed-loop only: peak congestion window reached (packets).
    pub cwnd_peak: u64,
    /// Closed-loop only: multiplicative decreases taken (ECN halvings
    /// plus RTO collapses) — the "cwnd visibly reacted" counter.
    pub cwnd_cuts: u64,
    #[serde(skip)]
    last_delay_ns: Option<u64>,
}

impl FlowStats {
    /// Records an emission.
    pub fn on_sent(&mut self) {
        self.sent += 1;
    }

    /// Records a discard, routing `cause` to the right top-level counter:
    /// [`DiscardCause::LinkDown`] → `link_dropped`,
    /// [`DiscardCause::LinkLoss`] → `loss_dropped`, anything else →
    /// `router_dropped`. The per-cause breakdown is updated either way.
    pub fn on_discarded(&mut self, cause: DiscardCause) {
        match cause {
            DiscardCause::LinkDown => self.link_dropped += 1,
            DiscardCause::LinkLoss => self.loss_dropped += 1,
            _ => self.router_dropped += 1,
        }
        self.drop_causes.record(cause);
    }

    /// Records a delivery at `now` with end-to-end `delay`.
    pub fn on_delivered(&mut self, now: u64, delay_ns: u64, wire_bytes: usize) {
        if self.delivered == 0 {
            self.first_delivery_ns = now;
            self.delay_min_ns = delay_ns;
            self.delay_max_ns = delay_ns;
        }
        self.delivered += 1;
        self.bytes_delivered += wire_bytes as u64;
        self.delay_sum_ns += delay_ns;
        self.delay_min_ns = self.delay_min_ns.min(delay_ns);
        self.delay_max_ns = self.delay_max_ns.max(delay_ns);
        self.last_delivery_ns = now;
        self.delay_hist.record(delay_ns);
        if let Some(prev) = self.last_delay_ns {
            self.jitter_sum_ns += prev.abs_diff(delay_ns);
            self.jitter_samples += 1;
        }
        self.last_delay_ns = Some(delay_ns);
    }

    /// Delay of the most recent delivery, if any — the previous sample a
    /// jitter measurement differences against.
    pub fn last_delay_ns(&self) -> Option<u64> {
        self.last_delay_ns
    }

    /// Folds another partial accounting of the *same* flow into this one.
    /// Parallel engine shards each keep a full-width stats table and
    /// touch only the flows whose packets they handled; the coordinator
    /// absorbs them in shard order at the end of the run. All counters
    /// are sums; the delivery-window and delay extrema combine by
    /// min/max. Deliveries of one flow all happen at its egress node —
    /// one shard — so the jitter chain never spans absorbed parts.
    pub fn absorb(&mut self, other: &FlowStats) {
        self.sent += other.sent;
        self.router_dropped += other.router_dropped;
        self.queue_dropped += other.queue_dropped;
        self.policer_dropped += other.policer_dropped;
        self.link_dropped += other.link_dropped;
        self.loss_dropped += other.loss_dropped;
        self.drop_causes.merge(&other.drop_causes);
        self.retransmits += other.retransmits;
        self.transfers_started += other.transfers_started;
        self.transfers_completed += other.transfers_completed;
        self.fct_sum_ns += other.fct_sum_ns;
        self.fct_hist.merge(&other.fct_hist);
        self.sla_violations += other.sla_violations;
        self.ecn_marks += other.ecn_marks;
        self.cwnd_peak = self.cwnd_peak.max(other.cwnd_peak);
        self.cwnd_cuts += other.cwnd_cuts;
        if other.delivered > 0 {
            if self.delivered == 0 {
                self.first_delivery_ns = other.first_delivery_ns;
                self.delay_min_ns = other.delay_min_ns;
                self.delay_max_ns = other.delay_max_ns;
                self.last_delay_ns = other.last_delay_ns;
            } else {
                self.first_delivery_ns = self.first_delivery_ns.min(other.first_delivery_ns);
                self.delay_min_ns = self.delay_min_ns.min(other.delay_min_ns);
                self.delay_max_ns = self.delay_max_ns.max(other.delay_max_ns);
                if other.last_delivery_ns > self.last_delivery_ns {
                    self.last_delay_ns = other.last_delay_ns;
                }
            }
            self.last_delivery_ns = self.last_delivery_ns.max(other.last_delivery_ns);
            self.delivered += other.delivered;
            self.bytes_delivered += other.bytes_delivered;
            self.delay_sum_ns += other.delay_sum_ns;
            self.jitter_sum_ns += other.jitter_sum_ns;
            self.jitter_samples += other.jitter_samples;
            self.delay_hist.merge(&other.delay_hist);
        }
    }

    /// Mean end-to-end delay (ns).
    pub fn mean_delay_ns(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.delay_sum_ns as f64 / self.delivered as f64
        }
    }

    /// Mean inter-packet delay variation (ns).
    pub fn mean_jitter_ns(&self) -> f64 {
        if self.jitter_samples == 0 {
            0.0
        } else {
            self.jitter_sum_ns as f64 / self.jitter_samples as f64
        }
    }

    /// Fraction of emitted packets that never arrived.
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            1.0 - self.delivered as f64 / self.sent as f64
        }
    }

    /// Mean flow completion time over completed transfers (ns).
    pub fn mean_fct_ns(&self) -> f64 {
        if self.transfers_completed == 0 {
            0.0
        } else {
            self.fct_sum_ns as f64 / self.transfers_completed as f64
        }
    }

    /// Goodput over the delivery window, in bits per second.
    pub fn throughput_bps(&self) -> f64 {
        if self.delivered < 2 {
            return 0.0;
        }
        let window = (self.last_delivery_ns - self.first_delivery_ns) as f64;
        if window == 0.0 {
            return 0.0;
        }
        self.bytes_delivered as f64 * 8.0 * 1e9 / window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_accounting() {
        let mut s = FlowStats::default();
        for _ in 0..4 {
            s.on_sent();
        }
        s.on_delivered(1_000, 100, 200);
        s.on_delivered(2_000, 300, 200);
        s.on_delivered(3_000, 200, 200);
        assert_eq!(s.delivered, 3);
        assert_eq!(s.mean_delay_ns(), 200.0);
        assert_eq!(s.delay_min_ns, 100);
        assert_eq!(s.delay_max_ns, 300);
        // jitter: |300-100| + |200-300| = 300 over 2 samples
        assert_eq!(s.mean_jitter_ns(), 150.0);
        assert!((s.loss_rate() - 0.25).abs() < 1e-9);
        // 600 bytes over 2 µs = 2.4 Gb/s
        assert!((s.throughput_bps() - 2.4e9).abs() < 1e3);
    }

    #[test]
    fn discards_route_to_their_counter() {
        let mut s = FlowStats::default();
        s.on_discarded(DiscardCause::NoRoute);
        s.on_discarded(DiscardCause::LinkDown);
        s.on_discarded(DiscardCause::LinkDown);
        s.on_discarded(DiscardCause::LinkLoss);
        assert_eq!(s.router_dropped, 1);
        assert_eq!(s.link_dropped, 2);
        assert_eq!(s.loss_dropped, 1);
        assert_eq!(
            s.drop_causes.total(),
            s.router_dropped + s.link_dropped + s.loss_dropped
        );
        assert_eq!(s.drop_causes.get(DiscardCause::LinkDown), 2);
    }

    #[test]
    fn absorb_merges_partial_accountings() {
        // Shard A saw the emissions and a queue drop; shard B the
        // deliveries.
        let mut a = FlowStats::default();
        for _ in 0..4 {
            a.on_sent();
        }
        a.queue_dropped += 1;
        a.on_discarded(DiscardCause::LinkDown);
        let mut b = FlowStats::default();
        b.on_delivered(1_000, 100, 200);
        b.on_delivered(2_000, 300, 200);
        let mut merged = FlowStats::default();
        merged.absorb(&a);
        merged.absorb(&b);
        assert_eq!(merged.sent, 4);
        assert_eq!(merged.delivered, 2);
        assert_eq!(merged.queue_dropped, 1);
        assert_eq!(merged.link_dropped, 1);
        assert_eq!(merged.delay_min_ns, 100);
        assert_eq!(merged.delay_max_ns, 300);
        assert_eq!(merged.first_delivery_ns, 1_000);
        assert_eq!(merged.last_delivery_ns, 2_000);
        assert_eq!(merged.last_delay_ns(), Some(300));
        assert_eq!(merged.mean_jitter_ns(), 200.0);
        // Absorbing an empty part changes nothing.
        let before = merged.delay_sum_ns;
        merged.absorb(&FlowStats::default());
        assert_eq!(merged.delay_sum_ns, before);
        assert_eq!(merged.delivered, 2);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = FlowStats::default();
        assert_eq!(s.mean_delay_ns(), 0.0);
        assert_eq!(s.mean_jitter_ns(), 0.0);
        assert_eq!(s.loss_rate(), 0.0);
        assert_eq!(s.throughput_bps(), 0.0);
    }
}
