//! Per-shard event wheel.
//!
//! A hybrid timing wheel: near-future events land in a ring of time
//! slots, far-future events in an overflow heap, and the slot currently
//! being drained in a small binary heap ordered by `(time, key)`. The
//! key (see [`LocalEvent::key`]) is a canonical, sharding-invariant
//! ordering, so the pop sequence — and therefore the simulation — is
//! identical for any slot width and any partitioning of the topology.

use super::shard::{EventKey, LocalEvent};
use crate::event::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Ring size; slots beyond the window overflow into a heap.
const SLOTS: usize = 256;

struct Entry {
    time: SimTime,
    key: EventKey,
    ev: LocalEvent,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap inverted for earliest-(time, key)-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.key.cmp(&self.key))
    }
}

/// Earliest-first pending-event store for one shard.
pub(crate) struct EventWheel {
    slot_ns: u64,
    /// `ring[s % SLOTS]` holds events of absolute slot `s` for
    /// `s` in `(cursor, cursor + SLOTS)`.
    ring: Vec<Vec<Entry>>,
    ring_len: usize,
    /// Events at slots at or beyond `cursor + SLOTS`.
    overflow: BinaryHeap<Entry>,
    /// Loaded events of slots `<= cursor`, min-first by `(time, key)`.
    current: BinaryHeap<Entry>,
    /// Absolute index of the most recently loaded slot.
    cursor: u64,
    len: usize,
}

impl EventWheel {
    /// An empty wheel with the given slot width (ns). Width only affects
    /// performance, never ordering.
    pub fn new(slot_ns: u64) -> Self {
        Self {
            slot_ns: slot_ns.max(1),
            ring: (0..SLOTS).map(|_| Vec::new()).collect(),
            ring_len: 0,
            overflow: BinaryHeap::new(),
            current: BinaryHeap::new(),
            cursor: 0,
            len: 0,
        }
    }

    /// Schedules `ev` at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, ev: LocalEvent) {
        let key = ev.key();
        let slot = time / self.slot_ns;
        let e = Entry { time, key, ev };
        if slot <= self.cursor {
            self.current.push(e);
        } else if slot - self.cursor < SLOTS as u64 {
            self.ring[(slot % SLOTS as u64) as usize].push(e);
            self.ring_len += 1;
        } else {
            self.overflow.push(e);
        }
        self.len += 1;
    }

    /// Makes `current` hold the globally earliest pending event (if any
    /// events are pending at all) by advancing the cursor.
    fn refill(&mut self) {
        while self.current.is_empty() && (self.ring_len > 0 || !self.overflow.is_empty()) {
            if self.ring_len == 0 {
                // Ring empty: jump straight to the earliest overflow slot
                // instead of stepping through empty slots one by one.
                let t = self.overflow.peek().expect("overflow non-empty").time;
                self.cursor = self.cursor.max(t / self.slot_ns);
            } else {
                self.cursor += 1;
            }
            let idx = (self.cursor % SLOTS as u64) as usize;
            let drained = self.ring[idx].len();
            self.ring_len -= drained;
            for e in self.ring[idx].drain(..) {
                self.current.push(e);
            }
            while self
                .overflow
                .peek()
                .is_some_and(|e| e.time / self.slot_ns <= self.cursor)
            {
                let e = self.overflow.pop().expect("peeked");
                self.current.push(e);
            }
        }
    }

    /// Pops the earliest event strictly before `before` — the epoch
    /// boundary — in `(time, key)` order.
    pub fn pop_next(&mut self, before: SimTime) -> Option<(SimTime, LocalEvent)> {
        self.refill();
        if self.current.peek()?.time >= before {
            return None;
        }
        let e = self.current.pop().expect("peeked");
        self.len -= 1;
        Some((e.time, e.ev))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.refill();
        self.current.peek().map(|e| e.time)
    }

    /// Pops the head event only if it is an `Arrive` for `node` at
    /// exactly `time` — the batching drain. Because the head is what
    /// [`EventWheel::pop_next`] would return anyway, draining with this
    /// method consumes the identical event sequence the unbatched loop
    /// would, one conditional peek at a time.
    pub fn pop_arrival_for(&mut self, time: SimTime, node: u64) -> Option<LocalEvent> {
        self.refill();
        let head = self.current.peek()?;
        let (class, a, _) = head.key;
        if head.time != time || class != 1 || a != node {
            return None;
        }
        let e = self.current.pop().expect("peeked");
        self.len -= 1;
        Some(e.ev)
    }

    /// Number of pending events.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(flow: usize) -> LocalEvent {
        LocalEvent::SourceEmit { flow }
    }

    #[test]
    fn pops_in_time_order_across_slots_and_overflow() {
        let mut w = EventWheel::new(100);
        // Same slot, next slot, far beyond the ring, and slot zero.
        for &t in &[250u64, 90, 1_000_000, 3, 255, 26_000] {
            w.schedule(t, tick(t as usize));
        }
        assert_eq!(w.len(), 6);
        assert_eq!(w.peek_time(), Some(3));
        let mut seen = Vec::new();
        while let Some((t, _)) = w.pop_next(SimTime::MAX) {
            seen.push(t);
        }
        assert_eq!(seen, vec![3, 90, 250, 255, 26_000, 1_000_000]);
        assert!(w.is_empty());
    }

    #[test]
    fn equal_times_pop_in_key_order_regardless_of_insertion() {
        let mut w = EventWheel::new(1_000);
        w.schedule(500, LocalEvent::TransmitDone { channel: 2, gen: 0 });
        w.schedule(500, tick(9));
        w.schedule(500, tick(1));
        let keys: Vec<EventKey> =
            std::iter::from_fn(|| w.pop_next(600).map(|(_, e)| e.key())).collect();
        // SourceEmit (class 0) by flow id, then TransmitDone (class 2).
        assert_eq!(keys, vec![(0, 1, 0), (0, 9, 0), (2, 2, 0)]);
    }

    #[test]
    fn pop_arrival_for_drains_only_the_matching_head() {
        use crate::sim::tests_support::packet_with_cos;
        let arrive = |node: u32, chan: usize| LocalEvent::Arrive {
            node,
            packet: packet_with_cos(0, 0),
            via: Some((chan, 0)),
        };
        let mut w = EventWheel::new(100);
        w.schedule(50, arrive(7, 1));
        w.schedule(50, arrive(7, 3));
        w.schedule(50, arrive(8, 2));
        w.schedule(60, arrive(7, 0));
        // Wrong node and wrong time never drain.
        assert!(w.pop_arrival_for(50, 9).is_none());
        assert!(w.pop_arrival_for(60, 7).is_none(), "60 is not the head");
        // The two node-7 arrivals at t=50 drain in lane order; the
        // node-8 arrival then blocks the drain.
        assert!(w.pop_arrival_for(50, 7).is_some());
        assert!(w.pop_arrival_for(50, 7).is_some());
        assert!(w.pop_arrival_for(50, 7).is_none());
        assert_eq!(w.pop_next(SimTime::MAX).map(|(t, _)| t), Some(50));
        assert_eq!(w.pop_next(SimTime::MAX).map(|(t, _)| t), Some(60));
        assert!(w.is_empty());
    }

    #[test]
    fn pop_next_respects_the_epoch_boundary() {
        let mut w = EventWheel::new(10);
        w.schedule(5, tick(0));
        w.schedule(15, tick(1));
        assert_eq!(w.pop_next(10).map(|(t, _)| t), Some(5));
        assert!(w.pop_next(10).is_none(), "15 is at or past the boundary");
        assert_eq!(w.len(), 1);
        // Events scheduled mid-drain for the current slot still pop.
        w.schedule(15, tick(2));
        assert_eq!(w.pop_next(16).map(|(t, _)| t), Some(15));
        assert_eq!(w.pop_next(16).map(|(t, _)| t), Some(15));
        assert!(w.is_empty());
    }
}
