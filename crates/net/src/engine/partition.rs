//! Topology partitioning for the sharded engine.
//!
//! Nodes are split into shards; channels belong to the shard of their
//! transmitting node. The conservative lookahead is the minimum
//! propagation delay over *cross-shard* channels: an event executed at
//! time `u` can, at the earliest, influence another shard at
//! `u + lookahead`, so an epoch `[start, end)` with
//! `end <= earliest_pending + lookahead` is causally safe to run
//! without synchronization. (The channel-merge engine refines this to a
//! per-shard-pair bound, but the same rule applies pairwise.)
//!
//! # Min-cut refinement
//!
//! The initial assignment fills contiguous blocks in topology order,
//! then a deterministic Kernighan–Lin-style pass greedily moves nodes
//! between shards to reduce the weight of the cut. Edge weight is the
//! *reciprocal* of the channel delay: fast links are expensive to cut
//! (they'd pin the cross-shard lookahead low and carry the most chatty
//! traffic), slow links are the ones we want crossing shards. Every
//! accepted move strictly reduces the cut weight, so the result is
//! never worse than the contiguous blocks it started from. Hinted nodes
//! are pinned and never move.
//!
//! Which partition is chosen cannot affect the report — only wall-clock
//! time. Byte-identity across shard counts (and across partitioning
//! strategies) is the engine's invariant, certified by
//! `tests/shard_determinism.rs` and `tests/merge_determinism.rs`.

use crate::event::SimTime;
use crate::link::Channel;
use mpls_control::NodeId;
use std::collections::HashMap;

/// The result of partitioning a topology.
pub(crate) struct Partition {
    /// Shard of every node.
    pub shard_of_node: HashMap<NodeId, usize>,
    /// Effective shard count (may be lower than requested).
    pub shards: usize,
    /// Conservative lookahead: minimum cross-shard propagation delay,
    /// or `u64::MAX` when no channel crosses shards.
    pub lookahead: SimTime,
}

/// Weight of cutting a channel with this delay: reciprocal nanoseconds,
/// scaled so even multi-millisecond links keep a non-zero weight. A
/// zero-delay channel gets an effectively infinite weight — refinement
/// will trade anything to *uncut* it, since a zero-delay cut has no
/// usable lookahead and degrades the whole partitioning to one shard.
fn cut_weight(delay_ns: u64) -> u64 {
    match 1_000_000_000u64.checked_div(delay_ns) {
        None => 1 << 40,
        Some(w) => w.max(1),
    }
}

/// Total weight of the channels crossing shards under `shard_of`.
/// Exposed for the partitioner's own tests.
#[cfg(test)]
fn total_cut(shard_of: &HashMap<NodeId, usize>, channels: &[Channel]) -> u64 {
    channels
        .iter()
        .filter(|c| shard_of[&c.from] != shard_of[&c.to])
        .map(|c| cut_weight(c.delay_ns))
        .sum()
}

/// Splits `nodes` into (at most) `requested` shards. Hinted nodes go to
/// `hint % shards`; the rest seed contiguous blocks in topology order
/// and are then refined toward a minimum-weight cut (see the module
/// docs). A zero-delay cross-shard channel would force a zero
/// lookahead, so such partitionings degrade to a single shard.
pub(crate) fn partition(
    nodes: &[NodeId],
    requested: usize,
    hints: &HashMap<NodeId, usize>,
    channels: &[Channel],
) -> Partition {
    let shards = requested.max(1).min(nodes.len().max(1));
    if shards == 1 {
        return single_shard(nodes);
    }
    let block = nodes.len().div_ceil(shards);
    let mut shard_of: HashMap<NodeId, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, hints.get(&n).map_or(i / block, |&h| h % shards)))
        .collect();
    refine(nodes, shards, block, hints, channels, &mut shard_of);
    let lookahead = channels
        .iter()
        .filter(|c| shard_of[&c.from] != shard_of[&c.to])
        .map(|c| c.delay_ns)
        .min()
        .unwrap_or(SimTime::MAX);
    if lookahead == 0 {
        return single_shard(nodes);
    }
    Partition {
        shard_of_node: shard_of,
        shards,
        lookahead,
    }
}

/// Fiduccia–Mattheyses-style refinement: each pass builds a chain of
/// tentative single-node moves — always the best-gain legal move, even
/// when the gain is negative (that's how two full shards *swap* nodes:
/// one temporarily overfills by one, the counter-move restores balance)
/// — then keeps the chain prefix with the best cumulative gain among
/// balanced states and reverts the rest. Every kept prefix strictly
/// reduces the cut weight, so the result is never worse than the
/// contiguous-block seed. Deterministic throughout: nodes are scanned
/// in slice order, ties break toward the earlier node and lower shard
/// index — the partition is a pure function of the topology, never of
/// thread timing.
fn refine(
    nodes: &[NodeId],
    shards: usize,
    max_size: usize,
    hints: &HashMap<NodeId, usize>,
    channels: &[Channel],
    shard_of: &mut HashMap<NodeId, usize>,
) {
    // Undirected adjacency with per-channel weights. Duplex links
    // contribute both directions on their own; single-direction
    // channels are mirrored so the cut objective stays symmetric.
    let mut adj: HashMap<NodeId, Vec<(NodeId, u64)>> = HashMap::new();
    for c in channels {
        let w = cut_weight(c.delay_ns);
        adj.entry(c.from).or_default().push((c.to, w));
        if !channels.iter().any(|r| r.from == c.to && r.to == c.from) {
            adj.entry(c.to).or_default().push((c.from, w));
        }
    }
    let mut sizes = vec![0usize; shards];
    for &s in shard_of.values() {
        sizes[s] += 1;
    }
    // Per-shard capacity: the block ceiling, or the seed size when
    // hints already overfilled a shard (hints outrank balance).
    let caps: Vec<usize> = sizes.iter().map(|&n| n.max(max_size)).collect();
    let movable: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|n| !hints.contains_key(n))
        .collect();
    let mut affinity = vec![0i64; shards];
    let mut locked: HashMap<NodeId, bool> = HashMap::new();
    for _pass in 0..8 {
        for n in &movable {
            locked.insert(*n, false);
        }
        let mut chain: Vec<(NodeId, usize, usize)> = Vec::new();
        let mut cum: i64 = 0;
        let mut best: Option<(usize, i64)> = None; // (chain len, gain)
        loop {
            // The best-gain legal move over all unlocked nodes. A move
            // may overfill its destination by one (the swap slack); a
            // state only becomes a keepable prefix once balance is
            // restored.
            let mut pick: Option<(NodeId, usize, usize, i64)> = None;
            for &n in &movable {
                if locked[&n] {
                    continue;
                }
                let cur = shard_of[&n];
                if sizes[cur] <= 1 {
                    continue;
                }
                let Some(edges) = adj.get(&n) else { continue };
                affinity.iter_mut().for_each(|a| *a = 0);
                for &(peer, w) in edges {
                    affinity[shard_of[&peer]] += w as i64;
                }
                for (s, &aff) in affinity.iter().enumerate() {
                    if s == cur || sizes[s] > caps[s] {
                        continue;
                    }
                    let gain = aff - affinity[cur];
                    if pick.is_none_or(|(.., g)| gain > g) {
                        pick = Some((n, cur, s, gain));
                    }
                }
            }
            let Some((n, cur, dest, gain)) = pick else {
                break;
            };
            shard_of.insert(n, dest);
            sizes[cur] -= 1;
            sizes[dest] += 1;
            locked.insert(n, true);
            cum += gain;
            chain.push((n, cur, dest));
            let balanced = sizes.iter().zip(&caps).all(|(&sz, &cap)| sz <= cap);
            if balanced && cum > 0 && best.is_none_or(|(_, g)| cum > g) {
                best = Some((chain.len(), cum));
            }
        }
        let keep = best.map_or(0, |(len, _)| len);
        for &(n, cur, dest) in chain[keep..].iter().rev() {
            shard_of.insert(n, cur);
            sizes[dest] -= 1;
            sizes[cur] += 1;
        }
        if best.is_none() {
            break;
        }
    }
}

fn single_shard(nodes: &[NodeId]) -> Partition {
    Partition {
        shard_of_node: nodes.iter().map(|&n| (n, 0)).collect(),
        shards: 1,
        lookahead: SimTime::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueDiscipline;

    fn chan(from: NodeId, to: NodeId, delay_ns: u64) -> Channel {
        Channel::new(
            from,
            to,
            1_000_000_000,
            delay_ns,
            QueueDiscipline::Fifo { capacity: 4 },
        )
    }

    /// Both directions of a bidirectional link, as `Simulation::build`
    /// constructs them.
    fn duplex(a: NodeId, b: NodeId, delay_ns: u64) -> [Channel; 2] {
        [chan(a, b, delay_ns), chan(b, a, delay_ns)]
    }

    /// The contiguous-block seed on its own, for cut-weight baselines.
    fn blocks(nodes: &[NodeId], shards: usize) -> HashMap<NodeId, usize> {
        let block = nodes.len().div_ceil(shards);
        nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i / block))
            .collect()
    }

    fn assert_valid(p: &Partition, nodes: &[NodeId]) {
        assert_eq!(
            p.shard_of_node.len(),
            nodes.len(),
            "every node assigned exactly once"
        );
        for n in nodes {
            let s = p.shard_of_node[n];
            assert!(s < p.shards, "node {n} landed on out-of-range shard {s}");
        }
    }

    #[test]
    fn keeps_hot_link_internal_and_takes_min_cross_delay() {
        let nodes = [0, 1, 2, 3];
        // Line 0-1-2-3; the 300ns middle link is the heaviest-weight
        // edge, so refinement pulls {1,2} into one shard even though
        // the contiguous-block seed would cut straight through it.
        let channels = [chan(0, 1, 700), chan(1, 2, 300), chan(2, 3, 900)];
        let p = partition(&nodes, 2, &HashMap::new(), &channels);
        assert_valid(&p, &nodes);
        assert_eq!(p.shards, 2);
        assert_eq!(
            p.shard_of_node[&1], p.shard_of_node[&2],
            "hot 1-2 link must stay shard-internal"
        );
        assert_ne!(p.shard_of_node[&0], p.shard_of_node[&1]);
        assert_ne!(p.shard_of_node[&3], p.shard_of_node[&2]);
        // The cut now crosses 0->1 (700) and 2->3 (900): lookahead
        // widens to 700 from the 300 a contiguous split would give.
        assert_eq!(p.lookahead, 700);
    }

    #[test]
    fn hints_override_block_placement() {
        let nodes = [0, 1, 2, 3];
        let hints = HashMap::from([(0, 1), (3, 0)]);
        let channels = [chan(0, 3, 250)];
        let p = partition(&nodes, 2, &hints, &channels);
        assert_eq!(p.shard_of_node[&0], 1);
        assert_eq!(p.shard_of_node[&3], 0);
        assert_eq!(p.lookahead, 250);
    }

    #[test]
    fn degenerate_cases_fall_back_to_one_shard() {
        let nodes = [0, 1];
        // Zero-delay cross-shard link: no usable lookahead.
        let p = partition(&nodes, 2, &HashMap::new(), &[chan(0, 1, 0)]);
        assert_eq!(p.shards, 1);
        assert_eq!(p.lookahead, SimTime::MAX);
        // More shards than nodes clamps.
        let p = partition(&nodes, 8, &HashMap::new(), &[chan(0, 1, 5)]);
        assert!(p.shards <= 2);
        // No cross-shard channels: unbounded lookahead.
        let p = partition(&[7], 1, &HashMap::new(), &[]);
        assert_eq!(p.shards, 1);
        assert_eq!(p.lookahead, SimTime::MAX);
    }

    /// Heterogeneous-delay grid: rows are joined by fast links, the two
    /// halves by slow ones. Row-major ids make contiguous blocks decent
    /// but the refinement must never do worse — and the cut it keeps
    /// should cross slow links, widening the lookahead.
    #[test]
    fn grid_cut_no_worse_than_blocks() {
        let side = 4u32;
        let mut channels = Vec::new();
        let nodes: Vec<NodeId> = (0..side * side).collect();
        for r in 0..side {
            for c in 0..side {
                let id = r * side + c;
                if c + 1 < side {
                    channels.extend(duplex(id, id + 1, 5_000));
                }
                if r + 1 < side {
                    // Vertical links between the grid's top and bottom
                    // halves are long-haul.
                    let d = if r == 1 { 200_000 } else { 5_000 };
                    channels.extend(duplex(id, id + side, d));
                }
            }
        }
        let p = partition(&nodes, 2, &HashMap::new(), &channels);
        assert_valid(&p, &nodes);
        let refined = total_cut(&p.shard_of_node, &channels);
        let seeded = total_cut(&blocks(&nodes, 2), &channels);
        assert!(
            refined <= seeded,
            "refined cut {refined} worse than contiguous blocks {seeded}"
        );
        // The natural cut is the long-haul row: lookahead is the slow
        // delay, 40x what a fast-link cut would allow.
        assert_eq!(p.lookahead, 200_000);
    }

    /// A ring whose node ids interleave two tightly-coupled clusters:
    /// contiguous blocks split both clusters, refinement must regroup
    /// them and strictly beat the seed.
    #[test]
    fn interleaved_ring_cut_strictly_improves_on_blocks() {
        // Clusters {0,2,4,6} and {1,3,5,7}: fast links inside each
        // cluster, two slow bridges between them.
        let nodes: Vec<NodeId> = (0..8).collect();
        let mut channels = Vec::new();
        for ids in [[0u32, 2, 4, 6], [1, 3, 5, 7]] {
            for w in ids.windows(2) {
                channels.extend(duplex(w[0], w[1], 2_000));
            }
        }
        channels.extend(duplex(6, 1, 150_000));
        channels.extend(duplex(7, 0, 150_000));
        let p = partition(&nodes, 2, &HashMap::new(), &channels);
        assert_valid(&p, &nodes);
        let refined = total_cut(&p.shard_of_node, &channels);
        let seeded = total_cut(&blocks(&nodes, 2), &channels);
        assert!(
            refined < seeded,
            "interleaved clusters should strictly improve: {refined} vs {seeded}"
        );
        // Each cluster ends up whole on one shard.
        for ids in [[0u32, 2, 4, 6], [1, 3, 5, 7]] {
            let s = p.shard_of_node[&ids[0]];
            for id in ids {
                assert_eq!(p.shard_of_node[&id], s, "cluster split at node {id}");
            }
        }
        assert_eq!(p.lookahead, 150_000, "only the slow bridges are cut");
    }

    /// A two-pod fat-tree: pods are cheap to keep whole, the spine
    /// links are the natural cut. Blocks in id order already separate
    /// the pods; refinement must not regress, and per-node hints must
    /// still pin nodes wherever they ask.
    #[test]
    fn fat_tree_cut_no_worse_than_blocks_and_hints_pin() {
        // Nodes 0-3: pod A (2 edge + 2 agg), 4-7: pod B, 8-9: spine.
        let nodes: Vec<NodeId> = (0..10).collect();
        let mut channels = Vec::new();
        for pod in [0u32, 4] {
            for edge in [pod, pod + 1] {
                for agg in [pod + 2, pod + 3] {
                    channels.extend(duplex(edge, agg, 1_000));
                }
            }
            for agg in [pod + 2, pod + 3] {
                for spine in [8u32, 9] {
                    channels.extend(duplex(agg, spine, 50_000));
                }
            }
        }
        let p = partition(&nodes, 2, &HashMap::new(), &channels);
        assert_valid(&p, &nodes);
        let refined = total_cut(&p.shard_of_node, &channels);
        let seeded = total_cut(&blocks(&nodes, 2), &channels);
        assert!(
            refined <= seeded,
            "fat-tree cut regressed: {refined} vs {seeded}"
        );
        // Pods stay whole: every edge switch shares its aggs' shard.
        for pod in [0u32, 4] {
            let s = p.shard_of_node[&pod];
            for id in pod..pod + 4 {
                assert_eq!(p.shard_of_node[&id], s, "pod split at node {id}");
            }
        }

        // Hints survive refinement even when they fight the cut: pin an
        // aggregation switch away from its pod.
        let hints = HashMap::from([(2u32, 1usize), (8, 0), (9, 1)]);
        let p = partition(&nodes, 2, &hints, &channels);
        assert_valid(&p, &nodes);
        assert_eq!(p.shard_of_node[&2], 1, "hinted node moved off its shard");
        assert_eq!(p.shard_of_node[&8], 0);
        assert_eq!(p.shard_of_node[&9], 1);
    }

    /// Refinement respects the balance ceiling: no shard can absorb the
    /// whole topology just because the links are fast.
    #[test]
    fn refinement_keeps_shards_balanced() {
        let nodes: Vec<NodeId> = (0..12).collect();
        let mut channels = Vec::new();
        // A clique-ish hub: everything wants to be with node 0.
        for i in 1..12u32 {
            channels.extend(duplex(0, i, 1_000));
        }
        let p = partition(&nodes, 4, &HashMap::new(), &channels);
        assert_valid(&p, &nodes);
        let mut sizes = vec![0usize; p.shards];
        for &s in p.shard_of_node.values() {
            sizes[s] += 1;
        }
        let max = nodes.len().div_ceil(4);
        for (s, &n) in sizes.iter().enumerate() {
            assert!(n <= max, "shard {s} overfilled: {n} > {max}");
            assert!(n >= 1, "shard {s} emptied");
        }
    }
}
