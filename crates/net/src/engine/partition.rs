//! Topology partitioning for the sharded engine.
//!
//! Nodes are split into shards; channels belong to the shard of their
//! transmitting node. The conservative lookahead is the minimum
//! propagation delay over *cross-shard* channels: an event executed at
//! time `u` can, at the earliest, influence another shard at
//! `u + lookahead`, so an epoch `[start, end)` with
//! `end <= earliest_pending + lookahead` is causally safe to run
//! without synchronization.

use crate::event::SimTime;
use crate::link::Channel;
use mpls_control::NodeId;
use std::collections::HashMap;

/// The result of partitioning a topology.
pub(crate) struct Partition {
    /// Shard of every node.
    pub shard_of_node: HashMap<NodeId, usize>,
    /// Effective shard count (may be lower than requested).
    pub shards: usize,
    /// Conservative lookahead: minimum cross-shard propagation delay,
    /// or `u64::MAX` when no channel crosses shards.
    pub lookahead: SimTime,
}

/// Splits `nodes` into (at most) `requested` shards. Hinted nodes go to
/// `hint % shards`; the rest fill contiguous blocks in topology order,
/// which tends to keep neighbors — and therefore traffic — together.
/// A zero-delay cross-shard channel would force a zero lookahead, so
/// such partitionings degrade to a single shard.
pub(crate) fn partition(
    nodes: &[NodeId],
    requested: usize,
    hints: &HashMap<NodeId, usize>,
    channels: &[Channel],
) -> Partition {
    let shards = requested.max(1).min(nodes.len().max(1));
    if shards == 1 {
        return single_shard(nodes);
    }
    let block = nodes.len().div_ceil(shards);
    let shard_of_node: HashMap<NodeId, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, hints.get(&n).map_or(i / block, |&h| h % shards)))
        .collect();
    let lookahead = channels
        .iter()
        .filter(|c| shard_of_node[&c.from] != shard_of_node[&c.to])
        .map(|c| c.delay_ns)
        .min()
        .unwrap_or(SimTime::MAX);
    if lookahead == 0 {
        return single_shard(nodes);
    }
    Partition {
        shard_of_node,
        shards,
        lookahead,
    }
}

fn single_shard(nodes: &[NodeId]) -> Partition {
    Partition {
        shard_of_node: nodes.iter().map(|&n| (n, 0)).collect(),
        shards: 1,
        lookahead: SimTime::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueDiscipline;

    fn chan(from: NodeId, to: NodeId, delay_ns: u64) -> Channel {
        Channel::new(
            from,
            to,
            1_000_000_000,
            delay_ns,
            QueueDiscipline::Fifo { capacity: 4 },
        )
    }

    #[test]
    fn blocks_nodes_and_takes_min_cross_delay() {
        let nodes = [0, 1, 2, 3];
        let channels = [chan(0, 1, 700), chan(1, 2, 300), chan(2, 3, 900)];
        let p = partition(&nodes, 2, &HashMap::new(), &channels);
        assert_eq!(p.shards, 2);
        assert_eq!(p.shard_of_node[&0], 0);
        assert_eq!(p.shard_of_node[&1], 0);
        assert_eq!(p.shard_of_node[&2], 1);
        assert_eq!(p.shard_of_node[&3], 1);
        // Only 1->2 crosses the cut.
        assert_eq!(p.lookahead, 300);
    }

    #[test]
    fn hints_override_block_placement() {
        let nodes = [0, 1, 2, 3];
        let hints = HashMap::from([(0, 1), (3, 0)]);
        let channels = [chan(0, 3, 250)];
        let p = partition(&nodes, 2, &hints, &channels);
        assert_eq!(p.shard_of_node[&0], 1);
        assert_eq!(p.shard_of_node[&3], 0);
        assert_eq!(p.lookahead, 250);
    }

    #[test]
    fn degenerate_cases_fall_back_to_one_shard() {
        let nodes = [0, 1];
        // Zero-delay cross-shard link: no usable lookahead.
        let p = partition(&nodes, 2, &HashMap::new(), &[chan(0, 1, 0)]);
        assert_eq!(p.shards, 1);
        assert_eq!(p.lookahead, SimTime::MAX);
        // More shards than nodes clamps.
        let p = partition(&nodes, 8, &HashMap::new(), &[chan(0, 1, 5)]);
        assert!(p.shards <= 2);
        // No cross-shard channels: unbounded lookahead.
        let p = partition(&[7], 1, &HashMap::new(), &[]);
        assert_eq!(p.shards, 1);
        assert_eq!(p.lookahead, SimTime::MAX);
    }
}
