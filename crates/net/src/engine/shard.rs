//! One shard of the sharded engine: a subset of nodes, the channels
//! they transmit on, and a private event wheel.
//!
//! # Canonical event keys
//!
//! Within one timestamp, shard-local events execute in the order of
//! [`LocalEvent::key`] — `(class, a, b)` tuples built only from stable
//! identifiers (flow ids, node ids, global channel indices). The key
//! never encodes *which shard* scheduled the event or *when* it was
//! inserted, so a run partitioned into N shards pops exactly the same
//! event sequence per node as a single-shard run: byte-identical
//! reports at any shard count.
//!
//! Every key is unique at its timestamp: a flow emits at most once per
//! instant (inter-packet gaps are ≥ 1 ns), a channel completes at most
//! one serialization per instant per incarnation (serialization times
//! are ≥ 1 ns), and an `Arrive` is pinned to its (node, channel) lane —
//! a channel delivers at most one packet per instant for the same
//! reason.
//!
//! # What shards may touch
//!
//! During an epoch a shard mutates only its own state plus the shared
//! *read-only* snapshot in [`SharedCtx`]. Effects on other shards
//! (cross-shard arrivals) are buffered in `outbox`; effects on global
//! accounting (a foreign channel's drop counter, a fault record's loss
//! tally, telemetry) are buffered in commutative per-shard deltas the
//! coordinator folds in deterministically.

use super::wheel::EventWheel;
use crate::event::SimTime;
use crate::link::{Channel, OfferResult};
use crate::node::Node;
use crate::policer::TokenBucket;
use crate::sim::{FlowTemplate, SimPacket};
use crate::stats::{FlowId, FlowStats};
use crate::traffic::{ClosedLoopSpec, FlowSpec, TrafficPattern};
use mpls_control::{LinkId, NodeId};
use mpls_packet::MplsPacket;
use mpls_router::{Action, DiscardCause, Forwarding};
use mpls_telemetry::{Histogram, TelemetrySink};
use rand::rngs::StdRng;
use std::collections::{HashMap, VecDeque};
use std::marker::PhantomData;

/// Canonical ordering key for same-timestamp events: `(class, a, b)`.
pub(crate) type EventKey = (u8, u64, u64);

/// Lane marker distinguishing source-injected arrivals from wire
/// arrivals in the key's `b` component (channel indices stay below it).
/// Doubles as the port-space offset for source-injected packets, so a
/// router's per-ingress flow cache never conflates a source lane with a
/// wire channel.
const SOURCE_LANE: u64 = 1 << 32;

/// Up to how many same-instant arrivals for one node drain as a single
/// batch (`MPLS_SIM_BATCH`, default 32; 1 disables batching). A batch
/// resolves the node once and streams the packets through its data
/// plane back to back; the drain is a conditional peek at the wheel's
/// head, so the consumed event sequence — and therefore the report —
/// is identical at any batch bound.
pub(crate) fn batch_limit() -> usize {
    static B: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *B.get_or_init(|| {
        std::env::var("MPLS_SIM_BATCH")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&b| b >= 1)
            .unwrap_or(32)
    })
}

/// A shard-local event.
#[derive(Debug)]
pub(crate) enum LocalEvent {
    /// A traffic source emits its next packet.
    SourceEmit {
        /// Index into the flow table.
        flow: FlowId,
    },
    /// A packet reaches a node's input and is handed to its router.
    Arrive {
        /// Receiving node.
        node: NodeId,
        /// The packet.
        packet: SimPacket,
        /// The (global channel index, incarnation) the packet traveled,
        /// when it came over a wire rather than from a local source. If
        /// the channel's incarnation has moved on by delivery time, the
        /// link was cut while the packet was propagating and it is lost.
        via: Option<(usize, u64)>,
    },
    /// A channel finished serializing its current packet.
    TransmitDone {
        /// Global channel index.
        channel: usize,
        /// Channel incarnation at scheduling time; stale if it moved on.
        gen: u64,
    },
    /// A node's periodic tick (see [`Node::tick_interval`]).
    NodeTick {
        /// The ticking node.
        node: NodeId,
    },
    /// A closed-loop delivery acknowledgment reaching the flow's ingress:
    /// scheduled at delivery time plus the static shortest-path
    /// propagation delay back to the ingress (an uncongested, reliable
    /// reverse path — the forward direction is the one under test). The
    /// delay is never below the engines' cross-shard lookahead bounds,
    /// so acks ride the normal outbox exchange safely.
    Ack {
        /// The acked flow.
        flow: FlowId,
        /// The acked emission's sequence number.
        seq: u64,
        /// Echoed congestion mark.
        ecn: bool,
    },
    /// A closed-loop transfer-arrival candidate (thinned nonhomogeneous
    /// Poisson process) at the flow's ingress.
    XferArrive {
        /// The flow whose subscriber aggregate the arrival belongs to.
        flow: FlowId,
    },
    /// A closed-loop retransmission-timeout check at the flow's ingress.
    RtoCheck {
        /// The flow under the timer.
        flow: FlowId,
    },
}

impl LocalEvent {
    /// The canonical same-timestamp ordering key. Emissions first, then
    /// arrivals, then transmit completions, then ticks — matching the
    /// causal chains `SourceEmit -> Arrive` and
    /// `Arrive -> TransmitDone` that occur at one instant.
    pub fn key(&self) -> EventKey {
        match *self {
            LocalEvent::SourceEmit { flow } => (0, flow as u64, 0),
            LocalEvent::Arrive {
                node,
                ref packet,
                via,
            } => {
                let lane = match via {
                    Some((chan, _)) => chan as u64,
                    // Offset by flow id: distinct flows sharing an ingress
                    // may inject at the same instant.
                    None => SOURCE_LANE + packet.flow as u64,
                };
                (1, node as u64, lane)
            }
            LocalEvent::TransmitDone { channel, gen } => (2, channel as u64, gen),
            LocalEvent::NodeTick { node } => (3, node as u64, 0),
            // Unique per timestamp: seqs are unique per flow, and the
            // chain/timer flags keep at most one XferArrive / RtoCheck
            // pending per flow.
            LocalEvent::Ack { flow, seq, .. } => (4, flow as u64, seq),
            LocalEvent::XferArrive { flow } => (5, flow as u64, 0),
            LocalEvent::RtoCheck { flow } => (6, flow as u64, 0),
        }
    }
}

/// Liveness snapshot of one channel, refreshed by the coordinator after
/// every global event — i.e. constant within an epoch.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChanState {
    /// Whether the channel is live.
    pub up: bool,
    /// Current incarnation.
    pub gen: u64,
}

/// Shared tables every shard reads during an epoch. Immutable while
/// shards run; the coordinator owns the mutable masters.
pub(crate) struct SharedCtx<'a> {
    pub flows: &'a [FlowSpec],
    /// Interned per-flow packet constants, parallel to `flows`. Packets
    /// in flight carry only deltas; the wire image is materialized from
    /// here at the router boundary.
    pub templates: &'a [FlowTemplate],
    pub chan_index: &'a HashMap<(NodeId, NodeId), usize>,
    pub chan_link: &'a [LinkId],
    /// Per-global-channel liveness snapshot.
    pub chan_state: &'a [ChanState],
    /// `(owning shard, local index)` of every global channel.
    pub chan_owner: &'a [(usize, usize)],
    /// Shard owning each channel's *receiving* node.
    pub chan_dest_shard: &'a [usize],
    /// Most recent fault record per link.
    pub fault_of_link: &'a HashMap<LinkId, usize>,
    /// Shard owning each flow's ingress node — the destination of its
    /// delivery acks.
    pub flow_shard: &'a [usize],
    /// Per closed-loop ingress: static shortest-path propagation delay
    /// from every reachable node back to that ingress, over the full
    /// (fault-free) channel graph. Lower-bounds nothing and is bounded
    /// below by every cross-shard lookahead on the reverse path, which
    /// is what makes ack scheduling conservative-safe (see
    /// `Engine::ack_distances`).
    pub ack_dist: &'a HashMap<NodeId, HashMap<NodeId, SimTime>>,
}

/// A flow's traffic source: its private RNG stream and edge policer.
/// Lives on the flow's ingress shard.
pub(crate) struct EmitState {
    /// Inter-packet gap RNG, seeded from (run seed, flow id) only, so
    /// the emission schedule is identical at any shard count. Closed-loop
    /// flows draw their arrival gaps, thinning accepts and transfer
    /// sizes from the same stream — the draw order is fixed by the
    /// canonical event order of this flow's own events, so it too is
    /// shard-invariant.
    pub rng: StdRng,
    /// Edge policer, if the flow is policed.
    pub policer: Option<TokenBucket>,
    /// Congestion-control state, for closed-loop flows only.
    pub cl: Option<ClosedLoopState>,
}

/// Sender-side state of one closed-loop flow: a serial server of
/// transfers under an AIMD congestion window.
///
/// Loss recovery is a Tahoe-style timeout: every emission carries a
/// fresh sequence number (retransmissions included), the receiver acks
/// whatever arrives, and the sender counts *acked packets* toward the
/// transfer rather than tracking which seq carried which chunk. A
/// stalled window (no ack within `rto_ns`) presumes everything in
/// flight lost, re-queues it for sending and collapses the window. A
/// spurious timeout can therefore complete a transfer with fewer
/// retransmitted deliveries than re-sends — the overshoot shows up
/// honestly in `sent`/`retransmits`, and the conservation identity is
/// untouched because every emission is tracked individually in the
/// data plane.
pub(crate) struct ClosedLoopState {
    /// Congestion window, in packets.
    pub cwnd: u64,
    /// Slow-start threshold.
    pub ssthresh: u64,
    /// Acks accumulated toward the next +1 in congestion avoidance.
    pub ca_acks: u64,
    /// Emissions outstanding (unacked, not yet presumed lost).
    pub inflight: u64,
    /// Packets of the current transfer still owed an emission
    /// (first-time sends plus presumed-lost re-sends).
    pub unsent: u64,
    /// Deliveries still owed before the current transfer completes.
    pub remaining: u64,
    /// Arrival time of the transfer in service (FCT includes queue wait).
    pub birth_ns: SimTime,
    /// Transfers waiting for service: (arrival time, size in packets).
    pub pending: VecDeque<(SimTime, u64)>,
    /// Whether a transfer is in service.
    pub active: bool,
    /// Whether an emission-chain `SourceEmit` is pending in the wheel.
    pub chain_live: bool,
    /// Whether an `RtoCheck` is pending in the wheel.
    pub rto_live: bool,
    /// Time of the last ack (or transfer start / timeout action) —
    /// the RTO stall reference.
    pub last_progress_ns: SimTime,
    /// ECN halvings only apply to acks of packets sent after the last
    /// halving: acks with `seq` below this barrier don't cut again.
    pub ecn_barrier_seq: u64,
}

impl ClosedLoopState {
    pub fn new(spec: &ClosedLoopSpec) -> Self {
        Self {
            cwnd: 1,
            ssthresh: spec.max_cwnd.max(2),
            ca_acks: 0,
            inflight: 0,
            unsent: 0,
            remaining: 0,
            birth_ns: 0,
            pending: VecDeque::new(),
            active: false,
            chain_live: false,
            rto_live: false,
            last_progress_ns: 0,
            ecn_barrier_seq: 0,
        }
    }

    /// Begins serving a transfer: fresh slow start, window of 1.
    fn start_transfer(&mut self, spec: &ClosedLoopSpec, birth: SimTime, size: u64, now: SimTime) {
        self.active = true;
        self.birth_ns = birth;
        self.remaining = size;
        self.unsent = size;
        self.inflight = 0;
        self.cwnd = 1;
        self.ssthresh = spec.max_cwnd.max(2);
        self.ca_acks = 0;
        self.last_progress_ns = now;
    }
}

/// Per-flow telemetry buffered shard-locally and folded into the sink
/// at the end of the run (sums and histogram merges commute).
pub(crate) struct FlowDelta {
    pub sent: u64,
    pub delivered: u64,
    pub conform: u64,
    pub exceed: u64,
    pub delay: Histogram,
    pub jitter: Histogram,
}

impl FlowDelta {
    pub fn new(bounds: &[u64]) -> Self {
        Self {
            sent: 0,
            delivered: 0,
            conform: 0,
            exceed: 0,
            delay: Histogram::new(bounds.to_vec()),
            jitter: Histogram::new(bounds.to_vec()),
        }
    }
}

/// One shard: its nodes, owned channels, event wheel and buffered
/// effects. The sink type parameter only carries
/// [`TelemetrySink::ENABLED`] so delta recording compiles away on
/// untelemetered runs; the sink itself stays with the coordinator.
pub(crate) struct ShardState<S> {
    pub id: usize,
    pub wheel: EventWheel,
    pub nodes: Vec<Box<dyn Node>>,
    pub node_local: HashMap<NodeId, usize>,
    /// Channels this shard transmits on (its nodes are the `from` ends).
    pub channels: Vec<Channel>,
    /// Traffic sources whose ingress lives here, by local index.
    pub emit: Vec<EmitState>,
    /// Flow id -> local emit index.
    pub emit_of_flow: HashMap<FlowId, usize>,
    /// Full-width per-flow stats; only the flows this shard touched are
    /// non-zero. Folded with [`FlowStats::absorb`] at the end.
    pub stats: Vec<FlowStats>,
    /// Cross-shard events buffered until the epoch barrier, tagged with
    /// their destination shard (wire arrivals go to the receiving
    /// node's shard; closed-loop acks to the flow's ingress shard).
    pub outbox: Vec<(SimTime, usize, LocalEvent)>,
    /// `fault_drops` owed to channels owned by other shards (stale-gen
    /// arrivals observed here), by global channel index.
    pub foreign_fault_drops: Vec<u64>,
    /// Packet losses owed to fault records, by record index.
    pub record_loss: HashMap<usize, u64>,
    /// Per-flow telemetry deltas; empty unless `S::ENABLED`.
    pub deltas: Vec<FlowDelta>,
    /// Events this shard executed (engine stats / conservation checks).
    pub events_processed: u64,
    /// Timestamp of the most recently executed event.
    pub last_time: SimTime,
    /// Exclusive upper bound for the current round, set by the
    /// coordinator before the parallel section. Under the epoch barrier
    /// every shard gets the same bound; under the channel-merge
    /// scheduler each shard gets its own (see `Engine::run_merge`).
    pub round_end: SimTime,
    /// Batch drain bound (see [`batch_limit`]); reusable scratch
    /// buffers keep the hot loop allocation-free.
    pub batch: usize,
    pub batch_items: Vec<(SimPacket, Option<(usize, u64)>)>,
    pub batch_live: Vec<(MplsPacket, FlowId, u64, SimTime, bool, u64)>,
    pub batch_outs: Vec<(Forwarding, FlowId, u64, SimTime, bool)>,
    pub _sink: PhantomData<fn() -> S>,
}

impl<S: TelemetrySink> ShardState<S> {
    /// Executes every local event strictly before `end`.
    pub fn run_until(&mut self, end: SimTime, ctx: &SharedCtx<'_>) {
        while let Some((t, ev)) = self.wheel.pop_next(end) {
            self.events_processed += 1;
            self.last_time = t;
            match ev {
                LocalEvent::SourceEmit { flow } => self.on_source_emit(t, flow, ctx),
                LocalEvent::Arrive { node, packet, via } => {
                    // Same-instant arrivals for one node are consecutive
                    // in canonical pop order (class 1, keyed by node);
                    // drain them and stream the whole batch through the
                    // router in one go. Arrival processing only schedules
                    // later-class or later-time events, so nothing can
                    // slot in between — the event sequence is exactly the
                    // unbatched one.
                    let mut items = std::mem::take(&mut self.batch_items);
                    items.clear();
                    items.push((packet, via));
                    while items.len() < self.batch {
                        match self.wheel.pop_arrival_for(t, node as u64) {
                            Some(LocalEvent::Arrive { packet, via, .. }) => {
                                self.events_processed += 1;
                                items.push((packet, via));
                            }
                            _ => break,
                        }
                    }
                    self.on_arrive_batch(t, node, &mut items, ctx);
                    self.batch_items = items;
                }
                LocalEvent::TransmitDone { channel, gen } => {
                    self.on_transmit_done(t, channel, gen, ctx)
                }
                LocalEvent::NodeTick { node } => self.on_node_tick(t, node),
                LocalEvent::Ack { flow, seq, ecn } => self.on_ack(t, flow, seq, ecn, ctx),
                LocalEvent::XferArrive { flow } => self.on_xfer_arrive(t, flow, ctx),
                LocalEvent::RtoCheck { flow } => self.on_rto_check(t, flow, ctx),
            }
        }
    }

    fn on_source_emit(&mut self, now: SimTime, flow: FlowId, ctx: &SharedCtx<'_>) {
        let spec = &ctx.flows[flow];
        if let TrafficPattern::ClosedLoop(cl) = spec.pattern {
            return self.on_cl_emit(now, flow, &cl, ctx);
        }
        if now >= spec.stop_ns {
            return;
        }
        let seq = self.stats[flow].sent;
        self.stats[flow].on_sent();
        if S::ENABLED {
            self.deltas[flow].sent += 1;
        }
        let packet = ctx.templates[flow].emit(flow, seq, now);
        let li = self.emit_of_flow[&flow];
        // Edge policing: non-conforming packets never enter the network.
        let conforms = match &mut self.emit[li].policer {
            Some(bucket) => bucket.conform(now, packet.wire_len()),
            None => true,
        };
        if S::ENABLED && self.emit[li].policer.is_some() {
            if conforms {
                self.deltas[flow].conform += 1;
            } else {
                self.deltas[flow].exceed += 1;
            }
        }
        if conforms {
            self.wheel.schedule(
                now,
                LocalEvent::Arrive {
                    node: spec.ingress,
                    packet,
                    via: None,
                },
            );
        } else {
            self.stats[flow].policer_dropped += 1;
        }
        let gap = spec
            .pattern
            .next_gap(now - spec.start_ns, &mut self.emit[li].rng);
        let next = now.saturating_add(gap);
        if next < spec.stop_ns {
            self.wheel.schedule(next, LocalEvent::SourceEmit { flow });
        }
    }

    /// Emits one packet of a closed-loop flow's transfer in service, then
    /// continues the emission chain while the window has room. A chain is
    /// a series of `SourceEmit`s spaced `pacing_ns` apart; exactly one is
    /// pending per flow (`chain_live`), and restarts triggered by acks,
    /// arrivals or timeouts always land at `now + pacing` — never at
    /// `now` — so an instant's canonical order is never re-entered.
    fn on_cl_emit(&mut self, now: SimTime, flow: FlowId, cl: &ClosedLoopSpec, ctx: &SharedCtx<'_>) {
        let spec = &ctx.flows[flow];
        let li = self.emit_of_flow[&flow];
        let st = self.emit[li]
            .cl
            .as_mut()
            .expect("closed-loop flow has cl state");
        st.chain_live = false;
        if now >= spec.stop_ns || !st.active || st.unsent == 0 || st.inflight >= st.cwnd {
            return;
        }
        st.unsent -= 1;
        st.inflight += 1;
        let cwnd = st.cwnd;
        self.stats[flow].cwnd_peak = self.stats[flow].cwnd_peak.max(cwnd);
        let seq = self.stats[flow].sent;
        self.stats[flow].on_sent();
        if S::ENABLED {
            self.deltas[flow].sent += 1;
        }
        let packet = ctx.templates[flow].emit(flow, seq, now);
        let conforms = match &mut self.emit[li].policer {
            Some(bucket) => bucket.conform(now, packet.wire_len()),
            None => true,
        };
        if S::ENABLED && self.emit[li].policer.is_some() {
            if conforms {
                self.deltas[flow].conform += 1;
            } else {
                self.deltas[flow].exceed += 1;
            }
        }
        if conforms {
            self.wheel.schedule(
                now,
                LocalEvent::Arrive {
                    node: spec.ingress,
                    packet,
                    via: None,
                },
            );
        } else {
            // Still counted in flight: the RTO recovers the loss just
            // like any other unacked emission.
            self.stats[flow].policer_dropped += 1;
        }
        let st = self.emit[li].cl.as_mut().expect("cl state");
        // Lazily arm the stall timer whenever data is outstanding.
        if !st.rto_live {
            st.rto_live = true;
            self.wheel.schedule(
                now.saturating_add(cl.rto_ns.max(1)),
                LocalEvent::RtoCheck { flow },
            );
        }
        let st = self.emit[li].cl.as_mut().expect("cl state");
        if st.unsent > 0 && st.inflight < st.cwnd {
            let at = now.saturating_add(cl.pacing_ns.max(1));
            if at < spec.stop_ns {
                st.chain_live = true;
                self.wheel.schedule(at, LocalEvent::SourceEmit { flow });
            }
        }
    }

    /// A transfer-arrival candidate of the flow's thinned nonhomogeneous
    /// Poisson process. The RNG draw order per candidate is fixed — gap,
    /// accept, then size if accepted — so the stream stays shard-
    /// invariant.
    fn on_xfer_arrive(&mut self, now: SimTime, flow: FlowId, ctx: &SharedCtx<'_>) {
        let spec = &ctx.flows[flow];
        let TrafficPattern::ClosedLoop(cl) = spec.pattern else {
            return;
        };
        if now >= spec.stop_ns {
            return;
        }
        let li = self.emit_of_flow[&flow];
        let elapsed = now.saturating_sub(spec.start_ns);
        let gap = cl.next_arrival_gap(&mut self.emit[li].rng);
        let accepted = cl.accept(elapsed, &mut self.emit[li].rng);
        let next = now.saturating_add(gap);
        if next < spec.stop_ns {
            self.wheel.schedule(next, LocalEvent::XferArrive { flow });
        }
        if !accepted {
            return;
        }
        let size = cl.draw_size(&mut self.emit[li].rng);
        self.stats[flow].transfers_started += 1;
        let st = self.emit[li].cl.as_mut().expect("cl state");
        if st.active {
            st.pending.push_back((now, size));
            return;
        }
        st.start_transfer(&cl, now, size, now);
        let at = now.saturating_add(cl.pacing_ns.max(1));
        if at < spec.stop_ns && !st.chain_live {
            st.chain_live = true;
            self.wheel.schedule(at, LocalEvent::SourceEmit { flow });
        }
    }

    /// A delivery ack reaching the flow's ingress: window update, then
    /// transfer progress, then (maybe) a chain restart.
    fn on_ack(&mut self, now: SimTime, flow: FlowId, seq: u64, ecn: bool, ctx: &SharedCtx<'_>) {
        let spec = &ctx.flows[flow];
        let TrafficPattern::ClosedLoop(cl) = spec.pattern else {
            return;
        };
        let li = self.emit_of_flow[&flow];
        let st = self.emit[li].cl.as_mut().expect("cl state");
        if !st.active {
            // Late ack of a transfer a spurious RTO already finished (the
            // timeout's re-sends covered the tail): nothing left to credit.
            return;
        }
        st.inflight = st.inflight.saturating_sub(1);
        st.last_progress_ns = now;
        if ecn && seq >= st.ecn_barrier_seq {
            // One multiplicative decrease per window of marks: further
            // marks on packets sent before this point don't cut again.
            st.cwnd = (st.cwnd / 2).max(1);
            st.ssthresh = st.cwnd.max(2);
            st.ca_acks = 0;
            st.ecn_barrier_seq = self.stats[flow].sent;
            self.stats[flow].cwnd_cuts += 1;
        } else if !ecn {
            if st.cwnd < st.ssthresh {
                st.cwnd += 1;
            } else {
                st.ca_acks += 1;
                if st.ca_acks >= st.cwnd {
                    st.cwnd += 1;
                    st.ca_acks = 0;
                }
            }
            st.cwnd = st.cwnd.min(cl.max_cwnd.max(1));
        }
        if st.remaining > 0 {
            st.remaining -= 1;
            if st.remaining == 0 {
                // Transfer complete: FCT spans arrival (queue wait
                // included) to last ack.
                let fct = now.saturating_sub(st.birth_ns);
                st.active = false;
                st.inflight = 0;
                st.unsent = 0;
                let next = st.pending.pop_front();
                self.stats[flow].transfers_completed += 1;
                self.stats[flow].fct_sum_ns += fct;
                self.stats[flow].fct_hist.record(fct);
                if cl.sla_fct_ns > 0 && fct > cl.sla_fct_ns {
                    self.stats[flow].sla_violations += 1;
                }
                if let Some((birth, size)) = next {
                    let st = self.emit[li].cl.as_mut().expect("cl state");
                    st.start_transfer(&cl, birth, size, now);
                    let at = now.saturating_add(cl.pacing_ns.max(1));
                    if at < spec.stop_ns && !st.chain_live {
                        st.chain_live = true;
                        self.wheel.schedule(at, LocalEvent::SourceEmit { flow });
                    }
                }
                return;
            }
        }
        let st = self.emit[li].cl.as_mut().expect("cl state");
        if st.active && st.unsent > 0 && st.inflight < st.cwnd && !st.chain_live {
            let at = now.saturating_add(cl.pacing_ns.max(1));
            if at < spec.stop_ns {
                st.chain_live = true;
                self.wheel.schedule(at, LocalEvent::SourceEmit { flow });
            }
        }
    }

    /// The flow's lazy stall timer: if no ack landed within `rto_ns`,
    /// presume the whole window lost (Tahoe), re-queue it and collapse
    /// the window; either way re-arm while the run is still inside the
    /// flow's active window.
    fn on_rto_check(&mut self, now: SimTime, flow: FlowId, ctx: &SharedCtx<'_>) {
        let spec = &ctx.flows[flow];
        let TrafficPattern::ClosedLoop(cl) = spec.pattern else {
            return;
        };
        let li = self.emit_of_flow[&flow];
        let st = self.emit[li].cl.as_mut().expect("cl state");
        st.rto_live = false;
        if now >= spec.stop_ns {
            // Let the run drain: no timer outlives the flow's window.
            return;
        }
        if st.active && st.inflight > 0 && now.saturating_sub(st.last_progress_ns) >= cl.rto_ns {
            let lost = st.inflight;
            st.unsent += lost;
            st.inflight = 0;
            st.ssthresh = (st.cwnd / 2).max(2);
            st.cwnd = 1;
            st.ca_acks = 0;
            st.last_progress_ns = now;
            self.stats[flow].retransmits += lost;
            self.stats[flow].cwnd_cuts += 1;
            let st = self.emit[li].cl.as_mut().expect("cl state");
            if !st.chain_live {
                let at = now.saturating_add(cl.pacing_ns.max(1));
                if at < spec.stop_ns {
                    st.chain_live = true;
                    self.wheel.schedule(at, LocalEvent::SourceEmit { flow });
                }
            }
        }
        let st = self.emit[li].cl.as_mut().expect("cl state");
        if st.active && (st.inflight > 0 || st.unsent > 0) {
            st.rto_live = true;
            self.wheel.schedule(
                now.saturating_add(cl.rto_ns.max(1)),
                LocalEvent::RtoCheck { flow },
            );
        }
    }

    /// Processes a drained batch of same-instant arrivals at `node`:
    /// stale-incarnation losses are taken first, then the node's router
    /// is resolved *once* and the surviving packets stream through its
    /// data plane back to back, then the resulting actions apply in
    /// packet order. Each phase preserves the per-packet order of the
    /// unbatched loop, and no phase's effects feed an earlier phase, so
    /// the outcome is identical to processing one event at a time.
    fn on_arrive_batch(
        &mut self,
        now: SimTime,
        node: NodeId,
        items: &mut Vec<(SimPacket, Option<(usize, u64)>)>,
        ctx: &SharedCtx<'_>,
    ) {
        let mut live = std::mem::take(&mut self.batch_live);
        live.clear();
        for (packet, via) in items.drain(..) {
            // A packet that was on the wire when its link was cut never
            // arrives: the channel's incarnation has moved on.
            if let Some((chan, gen)) = via {
                if ctx.chan_state[chan].gen != gen {
                    let (owner, local) = ctx.chan_owner[chan];
                    if owner == self.id {
                        self.channels[local].fault_drops += 1;
                    } else {
                        self.foreign_fault_drops[chan] += 1;
                    }
                    self.count_fault_loss(ctx.chan_link[chan], packet.flow, ctx);
                    continue;
                }
            }
            let port = match via {
                Some((chan, _)) => chan as u64,
                // Same value as the event key's lane: stable across
                // shard counts, disjoint from wire channel indices.
                None => SOURCE_LANE + packet.flow as u64,
            };
            // The router boundary: materialize the wire packet from the
            // flow's interned template plus the in-flight delta. The ECN
            // mark rides alongside — routers don't read it.
            let inner = ctx.templates[packet.flow].materialize(&packet.stack, packet.seq);
            live.push((
                inner,
                packet.flow,
                packet.seq,
                packet.sent_ns,
                packet.ecn,
                port,
            ));
        }
        let mut outs = std::mem::take(&mut self.batch_outs);
        outs.clear();
        let li = self.node_local[&node];
        let router = &mut self.nodes[li];
        for (inner, flow, seq, sent_ns, ecn, port) in live.drain(..) {
            outs.push((
                router.on_packet_via(now, inner, port),
                flow,
                seq,
                sent_ns,
                ecn,
            ));
        }
        for (out, flow, seq, sent_ns, ecn) in outs.drain(..) {
            self.apply_forwarding(now, node, out, flow, seq, sent_ns, ecn, ctx);
        }
        self.batch_live = live;
        self.batch_outs = outs;
    }

    /// Applies one forwarding decision: transmit, deliver or account the
    /// drop.
    #[allow(clippy::too_many_arguments)]
    fn apply_forwarding(
        &mut self,
        now: SimTime,
        node: NodeId,
        out: Forwarding,
        flow: FlowId,
        seq: u64,
        sent_ns: SimTime,
        ecn: bool,
        ctx: &SharedCtx<'_>,
    ) {
        let done = now + out.latency_ns;
        match out.action {
            Action::Forward {
                next,
                packet: inner,
            } => {
                let Some(&chan) = ctx.chan_index.get(&(node, next)) else {
                    // Misconfigured next hop onto a non-adjacent node.
                    self.stats[flow].on_discarded(DiscardCause::NoNextHop);
                    return;
                };
                let (owner, local) = ctx.chan_owner[chan];
                debug_assert_eq!(owner, self.id, "a node transmits only on its own channels");
                // Back to delta form for the wire: only the stack (and
                // its derived EtherType) changed inside the router.
                let sp = ctx.templates[flow].delta_of(inner, flow, seq, sent_ns, ecn);
                if !ctx.chan_state[chan].up {
                    // Steered onto a dead link by stale forwarding state.
                    self.channels[local].fault_drops += 1;
                    self.count_fault_loss(ctx.chan_link[chan], flow, ctx);
                    return;
                }
                self.offer_to_channel(chan, local, sp, done, ctx);
            }
            Action::Deliver(inner) => {
                let wire = inner.wire_len();
                let delay = done - sent_ns;
                if S::ENABLED {
                    self.deltas[flow].delivered += 1;
                    self.deltas[flow].delay.record(delay);
                    // Jitter differences against the previous delivery's
                    // delay, so read it before on_delivered overwrites it.
                    if let Some(prev) = self.stats[flow].last_delay_ns() {
                        self.deltas[flow].jitter.record(prev.abs_diff(delay));
                    }
                }
                self.stats[flow].on_delivered(done, delay, wire);
                // Closed-loop delivery: echo an ack (with the congestion
                // mark) back to the ingress, arriving one static
                // shortest-path propagation delay later. The reverse
                // path is modeled reliable and uncongested; its delay is
                // never below any cross-shard lookahead on the route, so
                // the ack can cross shards through the normal outbox
                // without violating either engine's conservative bound.
                if matches!(ctx.flows[flow].pattern, TrafficPattern::ClosedLoop(_)) {
                    let ingress = ctx.flows[flow].ingress;
                    let d = ctx
                        .ack_dist
                        .get(&ingress)
                        .and_then(|m| m.get(&node))
                        .copied();
                    if let Some(d) = d {
                        let at = done.saturating_add(d.max(1));
                        let ev = LocalEvent::Ack { flow, seq, ecn };
                        let dest = ctx.flow_shard[flow];
                        if dest == self.id {
                            self.wheel.schedule(at, ev);
                        } else {
                            self.outbox.push((at, dest, ev));
                        }
                    }
                    // A delivering node with no static path back to the
                    // ingress can't ack; the sender's RTO covers it, and
                    // the (deterministic) omission is identical at every
                    // shard count.
                }
            }
            Action::Discard(cause) => {
                self.stats[flow].on_discarded(cause);
            }
        }
    }

    fn offer_to_channel(
        &mut self,
        chan: usize,
        local: usize,
        mut packet: SimPacket,
        at: SimTime,
        ctx: &SharedCtx<'_>,
    ) {
        let flow = packet.flow;
        // ECN-style congestion marking: a closed-loop flow's packet gets
        // marked when it meets a queue at or past the flow's threshold.
        // Marked before the offer so a packet that ends up tail-dropped
        // was seen as congestion either way.
        if !packet.ecn {
            if let TrafficPattern::ClosedLoop(cl) = ctx.flows[flow].pattern {
                if cl.ecn_threshold > 0
                    && self.channels[local].queue.len() as u32 >= cl.ecn_threshold
                {
                    packet.ecn = true;
                    self.stats[flow].ecn_marks += 1;
                }
            }
        }
        let c = &mut self.channels[local];
        match c.offer(packet) {
            OfferResult::Dropped => {
                self.stats[flow].queue_dropped += 1;
            }
            OfferResult::Queued => {}
            OfferResult::StartTransmit => {
                let p = c.queue.pop().expect("just offered");
                let ser = c.serialization_ns(p.wire_len());
                c.busy = true;
                c.busy_ns += ser;
                let gen = c.gen;
                c.in_flight = Some(p);
                self.wheel
                    .schedule(at + ser, LocalEvent::TransmitDone { channel: chan, gen });
            }
        }
    }

    fn on_transmit_done(&mut self, now: SimTime, chan: usize, gen: u64, ctx: &SharedCtx<'_>) {
        let local = ctx.chan_owner[chan].1;
        let c = &mut self.channels[local];
        if c.gen != gen {
            // The link was cut mid-serialization; take_down already
            // flushed and counted the packet.
            return;
        }
        let p = c.in_flight.take().expect("transmit completed with cargo");
        c.transmitted += 1;
        let to = c.to;
        let delay = c.delay_ns;
        let cur_gen = c.gen;
        let loss_prob = c.loss_prob;
        // Start the next queued packet, if any.
        if let Some(next) = c.queue.pop() {
            let ser = c.serialization_ns(next.wire_len());
            c.busy_ns += ser;
            c.in_flight = Some(next);
            self.wheel.schedule(
                now + ser,
                LocalEvent::TransmitDone {
                    channel: chan,
                    gen: cur_gen,
                },
            );
        } else {
            c.busy = false;
        }
        // Random wire loss claims the packet after serialization. The
        // draw comes from the channel's private RNG, so the outcome is
        // a function of this channel's transmission sequence alone.
        if loss_prob > 0.0 && self.channels[local].loss_roll() < loss_prob {
            self.channels[local].loss_drops += 1;
            self.stats[p.flow].on_discarded(DiscardCause::LinkLoss);
            return;
        }
        let ev = LocalEvent::Arrive {
            node: to,
            packet: p,
            via: Some((chan, cur_gen)),
        };
        let at = now + delay;
        if ctx.chan_dest_shard[chan] == self.id {
            self.wheel.schedule(at, ev);
        } else {
            self.outbox.push((at, ctx.chan_dest_shard[chan], ev));
        }
    }

    fn on_node_tick(&mut self, now: SimTime, node: NodeId) {
        let li = self.node_local[&node];
        self.nodes[li].on_tick(now);
        if let Some(iv) = self.nodes[li].tick_interval() {
            self.wheel
                .schedule(now + iv.max(1), LocalEvent::NodeTick { node });
        }
    }

    /// Counts one packet lost to `link`'s outage against its flow and
    /// (via the shard-local delta) the link's current fault record.
    fn count_fault_loss(&mut self, link: LinkId, flow: FlowId, ctx: &SharedCtx<'_>) {
        // Mirror of the coordinator-side planted bug (see
        // `Engine::count_fault_loss`): conservation breaks on odd links
        // so the chaos oracles have something real to catch.
        #[cfg(feature = "chaos-bug")]
        if link % 2 == 1 {
            return;
        }
        self.stats[flow].on_discarded(DiscardCause::LinkDown);
        if let Some(&rec) = ctx.fault_of_link.get(&link) {
            *self.record_loss.entry(rec).or_insert(0) += 1;
        }
    }
}
