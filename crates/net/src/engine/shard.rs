//! One shard of the sharded engine: a subset of nodes, the channels
//! they transmit on, and a private event wheel.
//!
//! # Canonical event keys
//!
//! Within one timestamp, shard-local events execute in the order of
//! [`LocalEvent::key`] — `(class, a, b)` tuples built only from stable
//! identifiers (flow ids, node ids, global channel indices). The key
//! never encodes *which shard* scheduled the event or *when* it was
//! inserted, so a run partitioned into N shards pops exactly the same
//! event sequence per node as a single-shard run: byte-identical
//! reports at any shard count.
//!
//! Every key is unique at its timestamp: a flow emits at most once per
//! instant (inter-packet gaps are ≥ 1 ns), a channel completes at most
//! one serialization per instant per incarnation (serialization times
//! are ≥ 1 ns), and an `Arrive` is pinned to its (node, channel) lane —
//! a channel delivers at most one packet per instant for the same
//! reason.
//!
//! # What shards may touch
//!
//! During an epoch a shard mutates only its own state plus the shared
//! *read-only* snapshot in [`SharedCtx`]. Effects on other shards
//! (cross-shard arrivals) are buffered in `outbox`; effects on global
//! accounting (a foreign channel's drop counter, a fault record's loss
//! tally, telemetry) are buffered in commutative per-shard deltas the
//! coordinator folds in deterministically.

use super::wheel::EventWheel;
use crate::event::SimTime;
use crate::link::{Channel, OfferResult};
use crate::node::Node;
use crate::policer::TokenBucket;
use crate::sim::{FlowTemplate, SimPacket};
use crate::stats::{FlowId, FlowStats};
use crate::traffic::FlowSpec;
use mpls_control::{LinkId, NodeId};
use mpls_packet::MplsPacket;
use mpls_router::{Action, DiscardCause, Forwarding};
use mpls_telemetry::{Histogram, TelemetrySink};
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::marker::PhantomData;

/// Canonical ordering key for same-timestamp events: `(class, a, b)`.
pub(crate) type EventKey = (u8, u64, u64);

/// Lane marker distinguishing source-injected arrivals from wire
/// arrivals in the key's `b` component (channel indices stay below it).
/// Doubles as the port-space offset for source-injected packets, so a
/// router's per-ingress flow cache never conflates a source lane with a
/// wire channel.
const SOURCE_LANE: u64 = 1 << 32;

/// Up to how many same-instant arrivals for one node drain as a single
/// batch (`MPLS_SIM_BATCH`, default 32; 1 disables batching). A batch
/// resolves the node once and streams the packets through its data
/// plane back to back; the drain is a conditional peek at the wheel's
/// head, so the consumed event sequence — and therefore the report —
/// is identical at any batch bound.
pub(crate) fn batch_limit() -> usize {
    static B: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *B.get_or_init(|| {
        std::env::var("MPLS_SIM_BATCH")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&b| b >= 1)
            .unwrap_or(32)
    })
}

/// A shard-local event.
#[derive(Debug)]
pub(crate) enum LocalEvent {
    /// A traffic source emits its next packet.
    SourceEmit {
        /// Index into the flow table.
        flow: FlowId,
    },
    /// A packet reaches a node's input and is handed to its router.
    Arrive {
        /// Receiving node.
        node: NodeId,
        /// The packet.
        packet: SimPacket,
        /// The (global channel index, incarnation) the packet traveled,
        /// when it came over a wire rather than from a local source. If
        /// the channel's incarnation has moved on by delivery time, the
        /// link was cut while the packet was propagating and it is lost.
        via: Option<(usize, u64)>,
    },
    /// A channel finished serializing its current packet.
    TransmitDone {
        /// Global channel index.
        channel: usize,
        /// Channel incarnation at scheduling time; stale if it moved on.
        gen: u64,
    },
    /// A node's periodic tick (see [`Node::tick_interval`]).
    NodeTick {
        /// The ticking node.
        node: NodeId,
    },
}

impl LocalEvent {
    /// The canonical same-timestamp ordering key. Emissions first, then
    /// arrivals, then transmit completions, then ticks — matching the
    /// causal chains `SourceEmit -> Arrive` and
    /// `Arrive -> TransmitDone` that occur at one instant.
    pub fn key(&self) -> EventKey {
        match *self {
            LocalEvent::SourceEmit { flow } => (0, flow as u64, 0),
            LocalEvent::Arrive {
                node,
                ref packet,
                via,
            } => {
                let lane = match via {
                    Some((chan, _)) => chan as u64,
                    // Offset by flow id: distinct flows sharing an ingress
                    // may inject at the same instant.
                    None => SOURCE_LANE + packet.flow as u64,
                };
                (1, node as u64, lane)
            }
            LocalEvent::TransmitDone { channel, gen } => (2, channel as u64, gen),
            LocalEvent::NodeTick { node } => (3, node as u64, 0),
        }
    }
}

/// Liveness snapshot of one channel, refreshed by the coordinator after
/// every global event — i.e. constant within an epoch.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChanState {
    /// Whether the channel is live.
    pub up: bool,
    /// Current incarnation.
    pub gen: u64,
}

/// Shared tables every shard reads during an epoch. Immutable while
/// shards run; the coordinator owns the mutable masters.
pub(crate) struct SharedCtx<'a> {
    pub flows: &'a [FlowSpec],
    /// Interned per-flow packet constants, parallel to `flows`. Packets
    /// in flight carry only deltas; the wire image is materialized from
    /// here at the router boundary.
    pub templates: &'a [FlowTemplate],
    pub chan_index: &'a HashMap<(NodeId, NodeId), usize>,
    pub chan_link: &'a [LinkId],
    /// Per-global-channel liveness snapshot.
    pub chan_state: &'a [ChanState],
    /// `(owning shard, local index)` of every global channel.
    pub chan_owner: &'a [(usize, usize)],
    /// Shard owning each channel's *receiving* node.
    pub chan_dest_shard: &'a [usize],
    /// Most recent fault record per link.
    pub fault_of_link: &'a HashMap<LinkId, usize>,
}

/// A flow's traffic source: its private RNG stream and edge policer.
/// Lives on the flow's ingress shard.
pub(crate) struct EmitState {
    /// Inter-packet gap RNG, seeded from (run seed, flow id) only, so
    /// the emission schedule is identical at any shard count.
    pub rng: StdRng,
    /// Edge policer, if the flow is policed.
    pub policer: Option<TokenBucket>,
}

/// Per-flow telemetry buffered shard-locally and folded into the sink
/// at the end of the run (sums and histogram merges commute).
pub(crate) struct FlowDelta {
    pub sent: u64,
    pub delivered: u64,
    pub conform: u64,
    pub exceed: u64,
    pub delay: Histogram,
    pub jitter: Histogram,
}

impl FlowDelta {
    pub fn new(bounds: &[u64]) -> Self {
        Self {
            sent: 0,
            delivered: 0,
            conform: 0,
            exceed: 0,
            delay: Histogram::new(bounds.to_vec()),
            jitter: Histogram::new(bounds.to_vec()),
        }
    }
}

/// One shard: its nodes, owned channels, event wheel and buffered
/// effects. The sink type parameter only carries
/// [`TelemetrySink::ENABLED`] so delta recording compiles away on
/// untelemetered runs; the sink itself stays with the coordinator.
pub(crate) struct ShardState<S> {
    pub id: usize,
    pub wheel: EventWheel,
    pub nodes: Vec<Box<dyn Node>>,
    pub node_local: HashMap<NodeId, usize>,
    /// Channels this shard transmits on (its nodes are the `from` ends).
    pub channels: Vec<Channel>,
    /// Traffic sources whose ingress lives here, by local index.
    pub emit: Vec<EmitState>,
    /// Flow id -> local emit index.
    pub emit_of_flow: HashMap<FlowId, usize>,
    /// Full-width per-flow stats; only the flows this shard touched are
    /// non-zero. Folded with [`FlowStats::absorb`] at the end.
    pub stats: Vec<FlowStats>,
    /// Cross-shard arrivals buffered until the epoch barrier.
    pub outbox: Vec<(SimTime, LocalEvent)>,
    /// `fault_drops` owed to channels owned by other shards (stale-gen
    /// arrivals observed here), by global channel index.
    pub foreign_fault_drops: Vec<u64>,
    /// Packet losses owed to fault records, by record index.
    pub record_loss: HashMap<usize, u64>,
    /// Per-flow telemetry deltas; empty unless `S::ENABLED`.
    pub deltas: Vec<FlowDelta>,
    /// Events this shard executed (engine stats / conservation checks).
    pub events_processed: u64,
    /// Timestamp of the most recently executed event.
    pub last_time: SimTime,
    /// Exclusive upper bound for the current round, set by the
    /// coordinator before the parallel section. Under the epoch barrier
    /// every shard gets the same bound; under the channel-merge
    /// scheduler each shard gets its own (see `Engine::run_merge`).
    pub round_end: SimTime,
    /// Batch drain bound (see [`batch_limit`]); reusable scratch
    /// buffers keep the hot loop allocation-free.
    pub batch: usize,
    pub batch_items: Vec<(SimPacket, Option<(usize, u64)>)>,
    pub batch_live: Vec<(MplsPacket, FlowId, u64, SimTime, u64)>,
    pub batch_outs: Vec<(Forwarding, FlowId, u64, SimTime)>,
    pub _sink: PhantomData<fn() -> S>,
}

impl<S: TelemetrySink> ShardState<S> {
    /// Executes every local event strictly before `end`.
    pub fn run_until(&mut self, end: SimTime, ctx: &SharedCtx<'_>) {
        while let Some((t, ev)) = self.wheel.pop_next(end) {
            self.events_processed += 1;
            self.last_time = t;
            match ev {
                LocalEvent::SourceEmit { flow } => self.on_source_emit(t, flow, ctx),
                LocalEvent::Arrive { node, packet, via } => {
                    // Same-instant arrivals for one node are consecutive
                    // in canonical pop order (class 1, keyed by node);
                    // drain them and stream the whole batch through the
                    // router in one go. Arrival processing only schedules
                    // later-class or later-time events, so nothing can
                    // slot in between — the event sequence is exactly the
                    // unbatched one.
                    let mut items = std::mem::take(&mut self.batch_items);
                    items.clear();
                    items.push((packet, via));
                    while items.len() < self.batch {
                        match self.wheel.pop_arrival_for(t, node as u64) {
                            Some(LocalEvent::Arrive { packet, via, .. }) => {
                                self.events_processed += 1;
                                items.push((packet, via));
                            }
                            _ => break,
                        }
                    }
                    self.on_arrive_batch(t, node, &mut items, ctx);
                    self.batch_items = items;
                }
                LocalEvent::TransmitDone { channel, gen } => {
                    self.on_transmit_done(t, channel, gen, ctx)
                }
                LocalEvent::NodeTick { node } => self.on_node_tick(t, node),
            }
        }
    }

    fn on_source_emit(&mut self, now: SimTime, flow: FlowId, ctx: &SharedCtx<'_>) {
        let spec = &ctx.flows[flow];
        if now >= spec.stop_ns {
            return;
        }
        let seq = self.stats[flow].sent;
        self.stats[flow].on_sent();
        if S::ENABLED {
            self.deltas[flow].sent += 1;
        }
        let packet = ctx.templates[flow].emit(flow, seq, now);
        let li = self.emit_of_flow[&flow];
        // Edge policing: non-conforming packets never enter the network.
        let conforms = match &mut self.emit[li].policer {
            Some(bucket) => bucket.conform(now, packet.wire_len()),
            None => true,
        };
        if S::ENABLED && self.emit[li].policer.is_some() {
            if conforms {
                self.deltas[flow].conform += 1;
            } else {
                self.deltas[flow].exceed += 1;
            }
        }
        if conforms {
            self.wheel.schedule(
                now,
                LocalEvent::Arrive {
                    node: spec.ingress,
                    packet,
                    via: None,
                },
            );
        } else {
            self.stats[flow].policer_dropped += 1;
        }
        let gap = spec
            .pattern
            .next_gap(now - spec.start_ns, &mut self.emit[li].rng);
        let next = now + gap;
        if next < spec.stop_ns {
            self.wheel.schedule(next, LocalEvent::SourceEmit { flow });
        }
    }

    /// Processes a drained batch of same-instant arrivals at `node`:
    /// stale-incarnation losses are taken first, then the node's router
    /// is resolved *once* and the surviving packets stream through its
    /// data plane back to back, then the resulting actions apply in
    /// packet order. Each phase preserves the per-packet order of the
    /// unbatched loop, and no phase's effects feed an earlier phase, so
    /// the outcome is identical to processing one event at a time.
    fn on_arrive_batch(
        &mut self,
        now: SimTime,
        node: NodeId,
        items: &mut Vec<(SimPacket, Option<(usize, u64)>)>,
        ctx: &SharedCtx<'_>,
    ) {
        let mut live = std::mem::take(&mut self.batch_live);
        live.clear();
        for (packet, via) in items.drain(..) {
            // A packet that was on the wire when its link was cut never
            // arrives: the channel's incarnation has moved on.
            if let Some((chan, gen)) = via {
                if ctx.chan_state[chan].gen != gen {
                    let (owner, local) = ctx.chan_owner[chan];
                    if owner == self.id {
                        self.channels[local].fault_drops += 1;
                    } else {
                        self.foreign_fault_drops[chan] += 1;
                    }
                    self.count_fault_loss(ctx.chan_link[chan], packet.flow, ctx);
                    continue;
                }
            }
            let port = match via {
                Some((chan, _)) => chan as u64,
                // Same value as the event key's lane: stable across
                // shard counts, disjoint from wire channel indices.
                None => SOURCE_LANE + packet.flow as u64,
            };
            // The router boundary: materialize the wire packet from the
            // flow's interned template plus the in-flight delta.
            let inner = ctx.templates[packet.flow].materialize(&packet.stack, packet.seq);
            live.push((inner, packet.flow, packet.seq, packet.sent_ns, port));
        }
        let mut outs = std::mem::take(&mut self.batch_outs);
        outs.clear();
        let li = self.node_local[&node];
        let router = &mut self.nodes[li];
        for (inner, flow, seq, sent_ns, port) in live.drain(..) {
            outs.push((router.on_packet_via(now, inner, port), flow, seq, sent_ns));
        }
        for (out, flow, seq, sent_ns) in outs.drain(..) {
            self.apply_forwarding(now, node, out, flow, seq, sent_ns, ctx);
        }
        self.batch_live = live;
        self.batch_outs = outs;
    }

    /// Applies one forwarding decision: transmit, deliver or account the
    /// drop.
    #[allow(clippy::too_many_arguments)]
    fn apply_forwarding(
        &mut self,
        now: SimTime,
        node: NodeId,
        out: Forwarding,
        flow: FlowId,
        seq: u64,
        sent_ns: SimTime,
        ctx: &SharedCtx<'_>,
    ) {
        let done = now + out.latency_ns;
        match out.action {
            Action::Forward {
                next,
                packet: inner,
            } => {
                let Some(&chan) = ctx.chan_index.get(&(node, next)) else {
                    // Misconfigured next hop onto a non-adjacent node.
                    self.stats[flow].on_discarded(DiscardCause::NoNextHop);
                    return;
                };
                let (owner, local) = ctx.chan_owner[chan];
                debug_assert_eq!(owner, self.id, "a node transmits only on its own channels");
                // Back to delta form for the wire: only the stack (and
                // its derived EtherType) changed inside the router.
                let sp = ctx.templates[flow].delta_of(inner, flow, seq, sent_ns);
                if !ctx.chan_state[chan].up {
                    // Steered onto a dead link by stale forwarding state.
                    self.channels[local].fault_drops += 1;
                    self.count_fault_loss(ctx.chan_link[chan], flow, ctx);
                    return;
                }
                self.offer_to_channel(chan, local, sp, done);
            }
            Action::Deliver(inner) => {
                let wire = inner.wire_len();
                let delay = done - sent_ns;
                if S::ENABLED {
                    self.deltas[flow].delivered += 1;
                    self.deltas[flow].delay.record(delay);
                    // Jitter differences against the previous delivery's
                    // delay, so read it before on_delivered overwrites it.
                    if let Some(prev) = self.stats[flow].last_delay_ns() {
                        self.deltas[flow].jitter.record(prev.abs_diff(delay));
                    }
                }
                self.stats[flow].on_delivered(done, delay, wire);
            }
            Action::Discard(cause) => {
                self.stats[flow].on_discarded(cause);
            }
        }
    }

    fn offer_to_channel(&mut self, chan: usize, local: usize, packet: SimPacket, at: SimTime) {
        let flow = packet.flow;
        let c = &mut self.channels[local];
        match c.offer(packet) {
            OfferResult::Dropped => {
                self.stats[flow].queue_dropped += 1;
            }
            OfferResult::Queued => {}
            OfferResult::StartTransmit => {
                let p = c.queue.pop().expect("just offered");
                let ser = c.serialization_ns(p.wire_len());
                c.busy = true;
                c.busy_ns += ser;
                let gen = c.gen;
                c.in_flight = Some(p);
                self.wheel
                    .schedule(at + ser, LocalEvent::TransmitDone { channel: chan, gen });
            }
        }
    }

    fn on_transmit_done(&mut self, now: SimTime, chan: usize, gen: u64, ctx: &SharedCtx<'_>) {
        let local = ctx.chan_owner[chan].1;
        let c = &mut self.channels[local];
        if c.gen != gen {
            // The link was cut mid-serialization; take_down already
            // flushed and counted the packet.
            return;
        }
        let p = c.in_flight.take().expect("transmit completed with cargo");
        c.transmitted += 1;
        let to = c.to;
        let delay = c.delay_ns;
        let cur_gen = c.gen;
        let loss_prob = c.loss_prob;
        // Start the next queued packet, if any.
        if let Some(next) = c.queue.pop() {
            let ser = c.serialization_ns(next.wire_len());
            c.busy_ns += ser;
            c.in_flight = Some(next);
            self.wheel.schedule(
                now + ser,
                LocalEvent::TransmitDone {
                    channel: chan,
                    gen: cur_gen,
                },
            );
        } else {
            c.busy = false;
        }
        // Random wire loss claims the packet after serialization. The
        // draw comes from the channel's private RNG, so the outcome is
        // a function of this channel's transmission sequence alone.
        if loss_prob > 0.0 && self.channels[local].loss_roll() < loss_prob {
            self.channels[local].loss_drops += 1;
            self.stats[p.flow].on_discarded(DiscardCause::LinkLoss);
            return;
        }
        let ev = LocalEvent::Arrive {
            node: to,
            packet: p,
            via: Some((chan, cur_gen)),
        };
        let at = now + delay;
        if ctx.chan_dest_shard[chan] == self.id {
            self.wheel.schedule(at, ev);
        } else {
            self.outbox.push((at, ev));
        }
    }

    fn on_node_tick(&mut self, now: SimTime, node: NodeId) {
        let li = self.node_local[&node];
        self.nodes[li].on_tick(now);
        if let Some(iv) = self.nodes[li].tick_interval() {
            self.wheel
                .schedule(now + iv.max(1), LocalEvent::NodeTick { node });
        }
    }

    /// Counts one packet lost to `link`'s outage against its flow and
    /// (via the shard-local delta) the link's current fault record.
    fn count_fault_loss(&mut self, link: LinkId, flow: FlowId, ctx: &SharedCtx<'_>) {
        // Mirror of the coordinator-side planted bug (see
        // `Engine::count_fault_loss`): conservation breaks on odd links
        // so the chaos oracles have something real to catch.
        #[cfg(feature = "chaos-bug")]
        if link % 2 == 1 {
            return;
        }
        self.stats[flow].on_discarded(DiscardCause::LinkDown);
        if let Some(&rec) = ctx.fault_of_link.get(&link) {
            *self.record_loss.entry(rec).or_insert(0) += 1;
        }
    }
}
