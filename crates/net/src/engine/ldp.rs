//! The engine's half of the distributed control plane: schedules the
//! fabric's PDUs over the simulated channels and folds its session
//! events into fault detection, convergence timing and telemetry.
//!
//! The [`mpls_ldp::LdpFabric`] itself is passive and lives entirely on
//! the coordinator; its PDUs travel as [`ControlEvent::LdpDeliver`]
//! globals, so shard determinism holds trivially — shards never see the
//! protocol, only the reprogrammed forwarding state between epochs.
//!
//! # Channel model
//!
//! Control PDUs ride a strict-priority control sub-channel of each
//! link: they pay the link's serialization time (at its bandwidth) and
//! propagation delay, transmit FIFO per channel (`busy_until` per
//! direction — LDP relies on in-order delivery within a session), but
//! do not contend with data packets for queue space. A PDU in flight
//! across a failing channel is lost: delivery checks the channel's
//! liveness generation, exactly like data packets.

use super::{stream_seed, Engine};
use crate::event::{ControlEvent, SimTime};
use crate::fault::PduChaos;
use crate::sim::ControlSummary;
use mpls_control::{NodeConfig, NodeId};
use mpls_ldp::{FecKey, LdpEvent, LdpFabric, LdpSend};
use mpls_packet::LdpPdu;
use mpls_telemetry::TelemetrySink;
use std::collections::{BTreeMap, BTreeSet};

/// An LDP PDU on the wire.
struct InFlightPdu {
    from: NodeId,
    to: NodeId,
    /// Global channel index it is crossing.
    chan: usize,
    /// Channel liveness generation at transmit time; a mismatch at
    /// delivery means the link failed (or flapped) underneath it.
    gen: u64,
    pdu: LdpPdu,
    /// True for session/label messages (not hello/keepalive chatter):
    /// while any is in flight the protocol has not settled.
    protocol: bool,
    /// Bytes were flipped by a [`PduChaos`] window: at delivery the
    /// decoder is exercised on the damaged image and the PDU is handed
    /// to the fabric's malformed path instead of its semantic one.
    corrupted: bool,
}

/// Everything the engine tracks for a `--control ldp` run.
pub(crate) struct LdpRuntime {
    pub(crate) fabric: LdpFabric,
    /// Hello/keepalive timer period.
    tick_ns: u64,
    /// In-flight PDU slots referenced by [`ControlEvent::LdpDeliver`].
    msgs: Vec<Option<InFlightPdu>>,
    free: Vec<usize>,
    /// In-flight session/label messages.
    live_protocol: usize,
    /// When each channel's control sub-channel frees up (FIFO per
    /// direction).
    chan_busy: Vec<SimTime>,
    /// Control-PDU chaos windows from the fault plan.
    pub(crate) chaos: Vec<PduChaos>,
    /// Per-channel xorshift state for chaos draws — a dedicated RNG
    /// stream (class 5) keyed by global channel index, so outcomes are
    /// independent of shard layout, exactly like wire loss.
    chaos_rng: Vec<u64>,
    /// Time of the last FIB change of the initial convergence, captured
    /// once the protocol first settles and frozen by the first fault.
    pub(crate) convergence_ns: Option<u64>,
    /// Outstanding reconvergence measurements: `(fault record,
    /// routed-pairs snapshot taken at the cut)`. Resolved at the first
    /// settled instant whose routing covers the snapshot again.
    pending_restore: Vec<(usize, BTreeSet<(NodeId, FecKey)>)>,
    pub(crate) pdus_sent: u64,
    pub(crate) pdus_delivered: u64,
    pub(crate) pdus_lost: u64,
}

impl LdpRuntime {
    pub(crate) fn new(fabric: LdpFabric, nchans: usize, seed: u64) -> Self {
        let tick_ns = fabric.config().hello_interval_ns.max(1);
        Self {
            fabric,
            tick_ns,
            msgs: Vec::new(),
            free: Vec::new(),
            live_protocol: 0,
            chan_busy: vec![0; nchans],
            chaos: Vec::new(),
            // Zero is mapped off the degenerate all-zero xorshift state.
            chaos_rng: (0..nchans)
                .map(|g| stream_seed(seed, 5, g as u64) | 1)
                .collect(),
            convergence_ns: None,
            pending_restore: Vec::new(),
            pdus_sent: 0,
            pdus_delivered: 0,
            pdus_lost: 0,
        }
    }

    fn alloc_slot(&mut self, pdu: InFlightPdu) -> usize {
        if let Some(i) = self.free.pop() {
            self.msgs[i] = Some(pdu);
            i
        } else {
            self.msgs.push(Some(pdu));
            self.msgs.len() - 1
        }
    }

    /// Next uniform value in [0, 1) from `chan`'s chaos stream.
    fn chaos_roll(&mut self, chan: usize) -> f64 {
        let mut x = self.chaos_rng[chan];
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.chaos_rng[chan] = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The chaos window covering `link` at `now`, if any (first match
    /// wins — windows on the same link should not overlap).
    fn chaos_at(&self, link: mpls_control::LinkId, now: SimTime) -> Option<PduChaos> {
        self.chaos
            .iter()
            .find(|c| c.link == link && c.from_ns <= now && now < c.until_ns)
            .copied()
    }
}

impl<S: TelemetrySink> Engine<S> {
    /// The periodic protocol timer: hellos, keepalives, session
    /// initiation and hold-timer expiry. Re-arms unconditionally — the
    /// run ends at the horizon, not by queue drain, in ldp mode.
    pub(super) fn on_ldp_tick(&mut self) {
        let Some(mut rt) = self.ldp.take() else {
            return;
        };
        let (sends, events) = rt.fabric.tick(self.now);
        self.dispatch_ldp(&mut rt, sends);
        self.process_ldp_events(&mut rt, events);
        self.reprogram_ldp_dirty(&mut rt);
        self.ldp_settle_check(&mut rt);
        self.globals
            .schedule(self.now + rt.tick_ns, ControlEvent::LdpTick);
        self.ldp = Some(rt);
    }

    /// An LDP PDU arrives (or dies with the channel it was crossing).
    pub(super) fn on_ldp_deliver(&mut self, msg: usize) {
        let Some(mut rt) = self.ldp.take() else {
            return;
        };
        let Some(inflight) = rt.msgs[msg].take() else {
            self.ldp = Some(rt);
            return;
        };
        rt.free.push(msg);
        if inflight.protocol {
            rt.live_protocol -= 1;
        }
        let st = self.chan_state[inflight.chan];
        if !st.up
            || st.gen != inflight.gen
            || self.partitioned.contains(&self.chan_link[inflight.chan])
        {
            rt.pdus_lost += 1;
        } else if inflight.corrupted {
            rt.pdus_delivered += 1;
            // Exercise the decoder on the damaged wire image: flip a
            // byte (position from the channel's chaos stream) and also
            // try a truncated prefix. Both must return errors, never
            // panic — this is the fabric-layer panic-freedom proof the
            // per-peer malformed counter hangs off.
            let mut bytes = inflight.pdu.encode();
            if !bytes.is_empty() {
                let pos = (rt.chaos_roll(inflight.chan) * bytes.len() as f64) as usize;
                let pos = pos.min(bytes.len() - 1);
                bytes[pos] ^= 0xFF;
                let _ = LdpPdu::decode(&bytes);
                let _ = LdpPdu::decode(&bytes[..bytes.len() / 2]);
            }
            let (sends, events) = rt
                .fabric
                .note_malformed(self.now, inflight.from, inflight.to);
            self.dispatch_ldp(&mut rt, sends);
            self.process_ldp_events(&mut rt, events);
            self.reprogram_ldp_dirty(&mut rt);
        } else {
            rt.pdus_delivered += 1;
            let (sends, events) =
                rt.fabric
                    .deliver(self.now, inflight.from, inflight.to, &inflight.pdu);
            self.dispatch_ldp(&mut rt, sends);
            self.process_ldp_events(&mut rt, events);
            self.reprogram_ldp_dirty(&mut rt);
        }
        self.ldp_settle_check(&mut rt);
        self.ldp = Some(rt);
    }

    /// Called from `on_link_down`: snapshot what was routable so the
    /// settle check can tell when reconvergence has covered it again.
    pub(super) fn ldp_note_link_down(&mut self, rec: usize) {
        if let Some(rt) = &mut self.ldp {
            let snapshot = rt.fabric.routed_pairs();
            rt.pending_restore.push((rec, snapshot));
        }
    }

    /// Transmits the fabric's outgoing PDUs: serialization at link
    /// bandwidth, FIFO per channel, propagation delay, lost outright on
    /// a dark or partitioned channel. An active [`PduChaos`] window on
    /// the link may additionally drop, duplicate, delay (reorder) or
    /// corrupt each PDU, drawn from the channel's chaos stream.
    fn dispatch_ldp(&mut self, rt: &mut LdpRuntime, sends: Vec<LdpSend>) {
        for s in sends {
            let Some(&chan) = self.chan_index.get(&(s.from, s.to)) else {
                continue;
            };
            rt.pdus_sent += 1;
            let st = self.chan_state[chan];
            if !st.up || self.partitioned.contains(&self.chan_link[chan]) {
                rt.pdus_lost += 1;
                continue;
            }
            // Fixed draw order per PDU inside a window keeps the stream
            // aligned regardless of which effects fire.
            let mut copies = 1usize;
            let mut extra_ns = 0u64;
            let mut corrupted = false;
            if let Some(cz) = rt.chaos_at(self.chan_link[chan], self.now) {
                let lost = rt.chaos_roll(chan) < cz.loss;
                if rt.chaos_roll(chan) < cz.duplicate {
                    copies = 2;
                }
                let reordered = rt.chaos_roll(chan) < cz.reorder;
                corrupted = rt.chaos_roll(chan) < cz.corrupt;
                if lost {
                    rt.pdus_lost += 1;
                    continue;
                }
                if reordered {
                    // Held back long enough to overtake anything sent in
                    // the next few ticks — the FIFO promise is broken.
                    extra_ns = 2 * rt.tick_ns + (rt.chaos_roll(chan) * rt.tick_ns as f64) as u64;
                }
            }
            let c = self.chan(chan);
            let delay_ns = c.delay_ns;
            let ser = c.serialization_ns(s.pdu.wire_len());
            for _ in 0..copies {
                // A duplicate pays the wire twice: it is a real second
                // transmission, not a free copy.
                let start = self.now.max(rt.chan_busy[chan]);
                let deliver = start + ser + delay_ns + extra_ns;
                rt.chan_busy[chan] = start + ser;
                let protocol = s.pdu.message.is_protocol_work();
                if protocol {
                    rt.live_protocol += 1;
                }
                let slot = rt.alloc_slot(InFlightPdu {
                    from: s.from,
                    to: s.to,
                    chan,
                    gen: st.gen,
                    pdu: s.pdu.clone(),
                    protocol,
                    corrupted,
                });
                self.globals
                    .schedule(deliver, ControlEvent::LdpDeliver { msg: slot });
            }
        }
    }

    /// Session transitions: telemetry events, and a hold-timer expiry
    /// on a physically dead link is this control plane's *detection* of
    /// the fault.
    fn process_ldp_events(&mut self, _rt: &mut LdpRuntime, events: Vec<LdpEvent>) {
        for ev in events {
            match ev {
                LdpEvent::SessionUp { at, peer, link } => {
                    if S::ENABLED {
                        self.sink.event(
                            self.now,
                            "ldp_session_up",
                            format!("{at}-{peer} link{link}"),
                        );
                    }
                }
                LdpEvent::SessionDown { at, peer, link } => {
                    if S::ENABLED {
                        self.sink.event(
                            self.now,
                            "ldp_session_down",
                            format!("{at}-{peer} link{link}"),
                        );
                    }
                    let [a, _] = self.channels_of(link);
                    if self.chan(a).up {
                        continue; // lossy-wire expiry, not an outage
                    }
                    if let Some(&rec) = self.fault_of_link.get(&link) {
                        if self.records[rec].detected_ns.is_none() {
                            self.records[rec].detected_ns = Some(self.now);
                            if S::ENABLED {
                                self.sink
                                    .event(self.now, "fault_detected", format!("link{link}"));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Downloads fresh forwarding state into every node whose
    /// FIB-relevant protocol state changed.
    pub(super) fn reprogram_ldp_dirty(&mut self, rt: &mut LdpRuntime) {
        for id in rt.fabric.take_dirty() {
            let cfg = rt.fabric.config_for(id);
            for sh in &mut self.shards {
                if let Some(&l) = sh.node_local.get(&id) {
                    sh.nodes[l].reprogram(&cfg);
                }
            }
        }
    }

    /// A settled instant: no session/label message is in flight, so no
    /// further FIB change can occur without new stimulus (a timer
    /// expiry or a link event). Convergence and reconvergence times
    /// read the fabric's last-FIB-change clock here.
    fn ldp_settle_check(&mut self, rt: &mut LdpRuntime) {
        if rt.live_protocol > 0 {
            return;
        }
        let settled_at = rt.fabric.last_fib_change_ns();
        if self.records.is_empty() {
            // Still fault-free: the protocol's own bring-up. Overwritten
            // at every settled instant until the first fault freezes it.
            rt.convergence_ns = Some(settled_at);
        }
        if rt.pending_restore.is_empty() {
            return;
        }
        let routed = rt.fabric.routed_pairs();
        let mut restored: Vec<(usize, SimTime)> = Vec::new();
        rt.pending_restore.retain(|(rec, snapshot)| {
            let r = &self.records[*rec];
            if r.restored_ns.is_some() {
                return false; // the link flapped back before detection
            }
            if r.detected_ns.is_none() {
                return true; // sessions still running on borrowed time
            }
            if snapshot.is_subset(&routed) {
                restored.push((*rec, settled_at.max(r.down_ns)));
                return false;
            }
            true
        });
        for (rec, t) in restored {
            self.records[rec].restored_ns = Some(t);
            if S::ENABLED {
                self.sink.event(
                    t,
                    "service_restored",
                    format!("link{}", self.records[rec].link),
                );
                if let Some(span) = self.instr.fault_spans.remove(&rec) {
                    self.sink.span_end(t, span);
                }
            }
        }
    }

    /// Builds the report's control-plane summary and (in ldp mode) the
    /// converged per-node FIBs, and exports the protocol's telemetry:
    /// the bring-up convergence span, per-node session/label counters
    /// and the reconvergence histogram.
    pub(super) fn finish_control(
        &mut self,
    ) -> (ControlSummary, Option<BTreeMap<NodeId, NodeConfig>>) {
        if self.sr.is_some() {
            return self.finish_sr();
        }
        let Some(rt) = &self.ldp else {
            return (ControlSummary::default(), None);
        };
        let stats = rt.fabric.stats();
        let summary = ControlSummary {
            mode: crate::sim::ControlMode::Ldp,
            convergence_ns: rt.convergence_ns,
            sessions_established: stats.sessions_established,
            session_downs: stats.session_downs,
            pdus_sent: rt.pdus_sent,
            pdus_delivered: rt.pdus_delivered,
            pdus_lost: rt.pdus_lost,
            loop_rejections: stats.loop_rejections,
            session_retries: stats.session_retries,
            sequence_violations: stats.sequence_violations,
            malformed_pdus: stats.malformed_pdus,
            last_fib_change_ns: rt.fabric.last_fib_change_ns(),
        };
        let fibs: BTreeMap<NodeId, NodeConfig> = rt
            .fabric
            .node_ids()
            .into_iter()
            .map(|id| (id, rt.fabric.config_for(id)))
            .collect();
        if S::ENABLED {
            if let Some(t) = rt.convergence_ns {
                let span = self.sink.span_begin(0, "ldp.convergence");
                self.sink.span_end(t, span);
            }
            // 1 µs .. ~1 s in octaves, same scale as the latency
            // histograms.
            let bounds: Vec<u64> = (0..21).map(|i| 1000u64 << i).collect();
            let hist = self.sink.histogram("ldp.reconverge_ns", bounds);
            for r in &self.records {
                if let Some(ttr) = r.time_to_restore_ns() {
                    self.sink.hist_record(hist, ttr);
                }
            }
            let per_node: Vec<(NodeId, mpls_ldp::LdpNodeStats)> =
                rt.fabric.node_stats().map(|(id, s)| (id, *s)).collect();
            for (id, s) in per_node {
                for (name, value) in [
                    ("pdus_rx", s.pdus_rx),
                    ("mappings_rx", s.mappings_rx),
                    ("withdraws_rx", s.withdraws_rx),
                    ("releases_rx", s.releases_rx),
                    ("loop_rejections", s.loop_rejections),
                    ("session_ups", s.session_ups),
                    ("session_downs", s.session_downs),
                    ("session_retries", s.session_retries),
                    ("sequence_violations", s.sequence_violations),
                    ("malformed_pdus", s.malformed_pdus),
                ] {
                    let c = self.sink.counter(&format!("node{id}.ldp.{name}"));
                    self.sink.counter_add(c, value);
                }
            }
        }
        (summary, Some(fibs))
    }
}
