//! The engine's half of the segment-routing control plane.
//!
//! Unlike LDP, SR keeps no per-LSP signaling state in the network: the
//! ingress carries the whole route in the label stack, so "recovery" is
//! just recompiling source routes on the coordinator and downloading
//! the handful of changed node configurations. Detection still costs
//! the centralized detection delay; once it fires, every reachable pair
//! is rerouted in the same instant — there is no withdraw/remap cascade
//! to wait out, which is exactly the operational story EXT-16 measures
//! against LDP.

use super::Engine;
use crate::sim::{ControlMode, ControlSummary};
use mpls_control::{LinkId, NodeConfig, NodeId};
use mpls_telemetry::TelemetrySink;
use std::collections::BTreeMap;

/// Everything the engine tracks for a `--control sr` run.
pub(crate) struct SrRuntime {
    /// The compiled fabric: SIDs, source routes, ECMP sets.
    pub(crate) fabric: mpls_sr::SrFabric,
    /// When a recompile last changed any node's configuration (ns).
    pub(crate) last_fib_change_ns: u64,
}

impl SrRuntime {
    pub(crate) fn new(fabric: mpls_sr::SrFabric) -> Self {
        Self {
            fabric,
            last_fib_change_ns: 0,
        }
    }
}

impl<S: TelemetrySink> Engine<S> {
    /// Downloads fresh forwarding state into every node whose compiled
    /// configuration changed. Crashed nodes are skipped — their FIBs
    /// stay cold until `NodeReprovision` fires, the same cold-FIB window
    /// the centralized solver leaves.
    pub(super) fn reprogram_sr_dirty(&mut self, rt: &mut SrRuntime) {
        let mut any = false;
        for id in rt.fabric.take_dirty() {
            if self.dead_nodes.contains(&id) {
                continue;
            }
            any = true;
            let cfg = rt.fabric.config_for(id);
            for sh in &mut self.shards {
                if let Some(&l) = sh.node_local.get(&id) {
                    sh.nodes[l].reprogram(&cfg);
                }
            }
        }
        if any {
            rt.last_fib_change_ns = rt.last_fib_change_ns.max(self.now);
        }
    }

    /// Detection fired on a dead link: recompile every source route with
    /// the link unusable and download the changed configurations. The
    /// record is restored in the same instant — the ingress stacks are
    /// the only per-path state, and they are already rewritten.
    pub(super) fn sr_fault_detected(&mut self, link: LinkId, rec: usize) {
        let Some(mut rt) = self.sr.take() else {
            return;
        };
        rt.fabric.fail_link(link);
        self.reprogram_sr_dirty(&mut rt);
        self.sr = Some(rt);
        self.set_restored(rec);
    }

    /// A held-down link returns to service: recompile with it usable.
    pub(super) fn sr_hold_down_expired(&mut self, link: LinkId) {
        let Some(mut rt) = self.sr.take() else {
            return;
        };
        rt.fabric.restore_link(link);
        self.reprogram_sr_dirty(&mut rt);
        self.sr = Some(rt);
    }

    /// The coordinator re-downloads a restarted node's compiled
    /// configuration, ending its cold-FIB window.
    pub(super) fn sr_reprovision(&mut self, node: NodeId) {
        let Some(rt) = &self.sr else {
            return;
        };
        let cfg = rt.fabric.config_for(node);
        self.reprogram_node(node, &cfg);
    }

    /// The report's control summary and converged FIBs for an SR run.
    /// Bring-up happens before t=0 (like the centralized solver), so
    /// `convergence_ns` stays `None`; `last_fib_change_ns` advances only
    /// when a fault recompile actually changed a node, which is what the
    /// chaos quiesce oracle watches.
    pub(super) fn finish_sr(&self) -> (ControlSummary, Option<BTreeMap<NodeId, NodeConfig>>) {
        let rt = self.sr.as_ref().expect("caller checked");
        let summary = ControlSummary {
            mode: ControlMode::Sr,
            last_fib_change_ns: rt.last_fib_change_ns,
            ..ControlSummary::default()
        };
        let fibs = rt.fabric.configs().clone();
        (summary, Some(fibs))
    }
}
