//! The sharded discrete-event engine.
//!
//! The topology is partitioned into shards (see [`partition`]), each
//! with its own event wheel. The coordinator alternates between two
//! modes:
//!
//! * **Global events** ([`ControlEvent`]) — faults, recovery and
//!   telemetry samples — run on the coordinator thread with exclusive
//!   access to everything, in `(time, insertion)` order.
//! * **Epochs** — between globals, shards execute their local events in
//!   parallel up to a conservative barrier
//!   `end = min(next_global, earliest_local + lookahead, horizon + 1)`,
//!   where `lookahead` is the minimum cross-shard propagation delay. An
//!   event at time `u >= earliest_local` can reach another shard no
//!   earlier than `u + lookahead >= end`, so nothing a shard does in an
//!   epoch can affect another shard *within* that epoch; cross-shard
//!   arrivals are exchanged at the barrier.
//!
//! At equal timestamps, globals run before locals — a fixed rule that
//! holds at every shard count. Combined with the canonical per-shard
//! event ordering (see [`shard`]) and sharding-invariant RNG streams
//! (per-flow gap RNGs, per-channel loss RNGs), a run's [`SimReport`]
//! and telemetry export are byte-identical for any `--shards` value.

mod ldp;
mod partition;
mod shard;
mod sr;
mod wheel;

pub(crate) use ldp::LdpRuntime;
pub(crate) use sr::SrRuntime;

use crate::event::{ControlEvent, EventQueue, SimTime};
use crate::fault::{FaultRecord, RecoveryMode, RestorationPolicy};
use crate::link::Channel;
use crate::node::Node;
use crate::policer::TokenBucket;
use crate::sim::{FlowTemplate, LinkUsage, SimInstruments, SimReport};
use crate::stats::{FlowId, FlowStats};
use crate::traffic::{FlowSpec, TrafficPattern};
use mpls_control::{ControlPlane, LinkId, LspRequest, NodeConfig, NodeId};
use mpls_router::DiscardCause;
use mpls_telemetry::TelemetrySink;
use partition::partition;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shard::{
    batch_limit, ChanState, ClosedLoopState, EmitState, FlowDelta, LocalEvent, ShardState,
    SharedCtx,
};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};
use std::marker::PhantomData;
use wheel::EventWheel;

/// Which coordination scheme keeps shards causally safe. Both produce
/// byte-identical reports — the knob only trades coordination overhead,
/// exactly like the shard count itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The global epoch barrier: every shard advances to the same
    /// conservative bound `min(next_global, earliest_local + lookahead)`
    /// where `lookahead` is the *global* minimum cross-shard delay. One
    /// slow pair of shards throttles everyone.
    #[default]
    Barrier,
    /// The channel-merge scheduler: each shard advances to its own
    /// bound, the minimum over incoming cross-shard channels of the
    /// sending shard's clock plus that pair's minimum channel delay.
    /// Idle neighbors (empty wheels) impose no bound at all — the
    /// coordinator's per-round clock gather is the null-message
    /// heartbeat — so no shard ever waits on the global minimum.
    Merge,
}

impl EngineKind {
    /// Parses a CLI/scenario/env spelling (`"barrier"`/`"epoch"` or
    /// `"merge"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "barrier" | "epoch" => Some(Self::Barrier),
            "merge" => Some(Self::Merge),
            _ => None,
        }
    }

    /// The canonical spelling, as printed in reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::Barrier => "barrier",
            Self::Merge => "merge",
        }
    }
}

/// How the engine executed a run: shard count, barrier statistics and
/// per-shard event counts. Not serialized — the simulation outcome is
/// identical at any shard count, so this is operational metadata only.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Coordination scheme the run used.
    pub kind: EngineKind,
    /// Shards the run actually used (after degenerate fallbacks).
    pub shards: usize,
    /// Conservative lookahead, `None` when no channel crossed shards.
    /// (The barrier engine's global bound; the merge engine's per-pair
    /// bounds are at least this wide.)
    pub lookahead_ns: Option<u64>,
    /// Parallel rounds executed (epochs under the barrier engine, merge
    /// rounds under the channel-merge scheduler).
    pub epochs: u64,
    /// Coordinator (control) events executed.
    pub global_events: u64,
    /// Packet-level events executed, per shard.
    pub shard_events: Vec<u64>,
}

impl EngineStats {
    /// Total events executed across the coordinator and every shard.
    pub fn total_events(&self) -> u64 {
        self.global_events + self.shard_events.iter().sum::<u64>()
    }
}

/// Mixes a (run seed, stream class, index) triple into an independent
/// RNG seed — splitmix64 finalization over the combined words. Stream
/// assignment depends only on stable ids, never on shard layout.
pub(crate) fn stream_seed(seed: u64, stream: u64, idx: u64) -> u64 {
    let mut z =
        seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ idx.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A head-end re-signaling attempt in progress (make-before-break: the
/// broken LSP keeps steering — and losing — traffic until the
/// replacement is up, then is torn down).
struct PendingResignal {
    /// Index into `Engine::records`.
    record: usize,
    /// The broken LSP, torn down once the replacement is established.
    old_lsp: mpls_control::LspId,
    /// The broken LSP's original request (explicit route dropped —
    /// restoration outranks pinning).
    request: LspRequest,
    /// Attempts completed so far.
    attempt: u32,
    /// Set once the LSP is re-established (or retries are exhausted).
    done: bool,
}

/// Everything a [`Simulation`](crate::sim::Simulation) hands the engine
/// to execute a run.
pub(crate) struct EngineParts<S> {
    pub channels: Vec<Channel>,
    pub chan_index: HashMap<(NodeId, NodeId), usize>,
    pub chan_link: Vec<LinkId>,
    pub nodes: Vec<Box<dyn Node>>,
    pub cp: ControlPlane,
    pub flows: Vec<FlowSpec>,
    pub policers: Vec<Option<TokenBucket>>,
    pub globals: EventQueue<ControlEvent>,
    pub seed: u64,
    pub policy: RestorationPolicy,
    pub sink: S,
    pub instr: SimInstruments,
    pub shards: usize,
    pub hints: HashMap<NodeId, usize>,
    pub engine: EngineKind,
    pub ldp: Option<LdpRuntime>,
    pub sr: Option<SrRuntime>,
    pub pdu_chaos: Vec<crate::fault::PduChaos>,
}

/// The coordinator: owns the shards, the global event queue, the
/// control plane and all fault/telemetry state.
pub(crate) struct Engine<S: TelemetrySink> {
    shards: Vec<ShardState<S>>,
    globals: EventQueue<ControlEvent>,
    flows: Vec<FlowSpec>,
    /// Interned per-flow packet constants, parallel to `flows`.
    templates: Vec<FlowTemplate>,
    chan_index: HashMap<(NodeId, NodeId), usize>,
    chan_link: Vec<LinkId>,
    /// `(owning shard, local index)` per global channel index.
    chan_owner: Vec<(usize, usize)>,
    /// Shard of each channel's receiving node.
    chan_dest_shard: Vec<usize>,
    /// Liveness snapshot shards read; refreshed after channel mutations.
    chan_state: Vec<ChanState>,
    lookahead: SimTime,
    kind: EngineKind,
    /// `min_delay[from * shards + to]`: minimum channel delay between
    /// each ordered shard pair (`SimTime::MAX` when no channel connects
    /// the pair). The merge scheduler's per-shard bounds come from this
    /// matrix instead of the single global `lookahead`.
    min_delay: Vec<SimTime>,
    /// Shard owning each flow's ingress node (ack destination).
    flow_shard: Vec<usize>,
    /// Per closed-loop ingress: static shortest-path delay from every
    /// node that can reach it back to the ingress (see
    /// [`Engine::ack_distances`]). Empty when no flow is closed-loop.
    ack_dist: HashMap<NodeId, HashMap<NodeId, SimTime>>,
    /// Scratch: per-shard wheel peek times, refreshed every iteration.
    peeks: Vec<Option<SimTime>>,
    now: SimTime,
    cp: ControlPlane,
    policy: RestorationPolicy,
    records: Vec<FaultRecord>,
    /// Per-record count of broken LSPs still awaiting recovery.
    outstanding: Vec<usize>,
    /// Most recent fault record per link (kept after the link returns so
    /// straggler losses still attribute to the right outage).
    fault_of_link: HashMap<LinkId, usize>,
    pending: Vec<PendingResignal>,
    /// Present on `--control ldp` runs: the distributed control plane
    /// and its in-flight PDUs (see [`ldp`]).
    ldp: Option<LdpRuntime>,
    /// Present on `--control sr` runs: the compiled segment-routing
    /// fabric (see [`sr`]).
    sr: Option<SrRuntime>,
    /// Nodes currently crashed: incident links stay down and stray
    /// `LinkUp` events cannot revive their ports.
    dead_nodes: HashSet<NodeId>,
    /// Links with an active control-channel partition: control PDUs
    /// drop (counted lost) while data traffic keeps flowing.
    partitioned: HashSet<LinkId>,
    sink: S,
    instr: SimInstruments,
    epochs: u64,
    global_events: u64,
}

impl<S: TelemetrySink> Engine<S> {
    pub fn new(parts: EngineParts<S>) -> Self {
        let nflows = parts.flows.len();
        let nchans = parts.channels.len();
        let node_ids: Vec<NodeId> = parts.nodes.iter().map(|n| n.id()).collect();
        let part = partition(&node_ids, parts.shards, &parts.hints, &parts.channels);
        // Slot width is a performance knob only; pop order is canonical.
        let slot_ns = if part.lookahead == SimTime::MAX {
            65_536
        } else {
            (part.lookahead / 8).clamp(1, 1 << 20)
        };
        let mut shards: Vec<ShardState<S>> = (0..part.shards)
            .map(|id| ShardState {
                id,
                wheel: EventWheel::new(slot_ns),
                nodes: Vec::new(),
                node_local: HashMap::new(),
                channels: Vec::new(),
                emit: Vec::new(),
                emit_of_flow: HashMap::new(),
                stats: vec![FlowStats::default(); nflows],
                outbox: Vec::new(),
                foreign_fault_drops: vec![0; nchans],
                record_loss: HashMap::new(),
                deltas: Vec::new(),
                events_processed: 0,
                last_time: 0,
                round_end: 0,
                batch: batch_limit(),
                batch_items: Vec::new(),
                batch_live: Vec::new(),
                batch_outs: Vec::new(),
                _sink: PhantomData,
            })
            .collect();
        if S::ENABLED {
            // Same octave bounds the per-flow histograms were registered
            // with, so shard-local deltas merge cleanly.
            let bounds: Vec<u64> = (0..21).map(|i| 1000u64 << i).collect();
            for sh in &mut shards {
                sh.deltas = (0..nflows).map(|_| FlowDelta::new(&bounds)).collect();
            }
        }
        for node in parts.nodes {
            let sh = &mut shards[part.shard_of_node[&node.id()]];
            sh.node_local.insert(node.id(), sh.nodes.len());
            if let Some(iv) = node.tick_interval() {
                sh.wheel
                    .schedule(iv.max(1), LocalEvent::NodeTick { node: node.id() });
            }
            sh.nodes.push(node);
        }
        let ack_dist = Self::ack_distances(&parts.flows, &parts.channels);
        let flow_shard: Vec<usize> = parts
            .flows
            .iter()
            .map(|spec| part.shard_of_node[&spec.ingress])
            .collect();
        let mut chan_owner = Vec::with_capacity(nchans);
        let mut chan_dest_shard = Vec::with_capacity(nchans);
        let mut chan_state = Vec::with_capacity(nchans);
        // Per-ordered-shard-pair minimum channel delay: the conservative
        // bound the merge scheduler applies per *pair* where the barrier
        // engine applies the global minimum to everyone.
        let mut min_delay = vec![SimTime::MAX; part.shards * part.shards];
        for c in parts.channels {
            let owner = part.shard_of_node[&c.from];
            let dest = part.shard_of_node[&c.to];
            chan_dest_shard.push(dest);
            chan_state.push(ChanState {
                up: c.up,
                gen: c.gen,
            });
            if owner != dest {
                let cell = &mut min_delay[owner * part.shards + dest];
                *cell = (*cell).min(c.delay_ns);
            }
            let sh = &mut shards[owner];
            chan_owner.push((owner, sh.channels.len()));
            sh.channels.push(c);
        }
        for (f, (spec, policer)) in parts.flows.iter().zip(parts.policers).enumerate() {
            let sh = &mut shards[part.shard_of_node[&spec.ingress]];
            sh.emit_of_flow.insert(f, sh.emit.len());
            let cl = match spec.pattern {
                TrafficPattern::ClosedLoop(ref c) => Some(ClosedLoopState::new(c)),
                _ => None,
            };
            sh.emit.push(EmitState {
                rng: StdRng::seed_from_u64(stream_seed(parts.seed, 1, f as u64)),
                policer,
                cl,
            });
            // Open-loop sources start emitting immediately; closed-loop
            // sources start their transfer-arrival process instead and
            // only emit once a transfer is in service.
            let ev = if matches!(spec.pattern, TrafficPattern::ClosedLoop(_)) {
                LocalEvent::XferArrive { flow: f }
            } else {
                LocalEvent::SourceEmit { flow: f }
            };
            sh.wheel.schedule(spec.start_ns, ev);
        }
        let mut ldp = parts.ldp;
        if let Some(rt) = &mut ldp {
            rt.chaos = parts.pdu_chaos;
        }
        let nsh = shards.len();
        let templates = parts.flows.iter().map(FlowTemplate::of).collect();
        Self {
            shards,
            globals: parts.globals,
            flows: parts.flows,
            templates,
            chan_index: parts.chan_index,
            chan_link: parts.chan_link,
            chan_owner,
            chan_dest_shard,
            chan_state,
            lookahead: part.lookahead,
            kind: parts.engine,
            min_delay,
            flow_shard,
            ack_dist,
            peeks: vec![None; nsh],
            now: 0,
            cp: parts.cp,
            policy: parts.policy,
            records: Vec::new(),
            outstanding: Vec::new(),
            fault_of_link: HashMap::new(),
            pending: Vec::new(),
            ldp,
            sr: parts.sr,
            dead_nodes: HashSet::new(),
            partitioned: HashSet::new(),
            sink: parts.sink,
            instr: parts.instr,
            epochs: 0,
            global_events: 0,
        }
    }

    /// Static reverse-path delays for closed-loop acks: for each
    /// distinct closed-loop ingress, the shortest-path delay (by summed
    /// `delay_ns` over the full, fault-free channel graph) from every
    /// node that can reach it. One Dijkstra per ingress, over reversed
    /// edges.
    ///
    /// Causal safety of `ack at = delivery + dist`: collapse the
    /// shortest node path onto the shard graph — every crossed
    /// shard-pair channel contributes at least that pair's `min_delay`
    /// entry, intra-shard hops at least zero — so `dist` is never below
    /// the merge scheduler's transitive bound between the delivering
    /// shard and the ingress shard, nor (when they differ) below the
    /// barrier engine's global lookahead. The ack therefore always
    /// lands at or after the receiving shard's round end and rides the
    /// ordinary outbox exchange.
    fn ack_distances(
        flows: &[FlowSpec],
        channels: &[Channel],
    ) -> HashMap<NodeId, HashMap<NodeId, SimTime>> {
        let ingresses: HashSet<NodeId> = flows
            .iter()
            .filter(|s| matches!(s.pattern, TrafficPattern::ClosedLoop(_)))
            .map(|s| s.ingress)
            .collect();
        let mut out = HashMap::new();
        if ingresses.is_empty() {
            return out;
        }
        // Reverse adjacency: a forward channel `from -> to` lets an ack
        // retrace `to -> from`.
        let mut radj: HashMap<NodeId, Vec<(NodeId, SimTime)>> = HashMap::new();
        for c in channels {
            radj.entry(c.to).or_default().push((c.from, c.delay_ns));
        }
        for &ing in &ingresses {
            let mut dist: HashMap<NodeId, SimTime> = HashMap::new();
            let mut heap = BinaryHeap::new();
            dist.insert(ing, 0);
            heap.push(Reverse((0u64, ing)));
            while let Some(Reverse((d, n))) = heap.pop() {
                if dist.get(&n) != Some(&d) {
                    continue;
                }
                if let Some(edges) = radj.get(&n) {
                    for &(m, w) in edges {
                        let nd = d.saturating_add(w);
                        if dist.get(&m).is_none_or(|&cur| nd < cur) {
                            dist.insert(m, nd);
                            heap.push(Reverse((nd, m)));
                        }
                    }
                }
            }
            out.insert(ing, dist);
        }
        out
    }

    /// Runs until every queue drains or `horizon_ns` passes, then
    /// merges the shards into a report.
    pub fn run(self, horizon_ns: SimTime) -> SimReport {
        match self.kind {
            EngineKind::Barrier => self.run_barrier(horizon_ns),
            EngineKind::Merge => self.run_merge(horizon_ns),
        }
    }

    /// Refreshes the per-shard wheel peeks and decides the next step:
    /// `None` when everything drained or passed the horizon,
    /// `Some(true)` when the next global event should run now,
    /// `Some(false)` when a parallel round should run. Globals run
    /// before locals at the same instant, at every shard count.
    fn next_step(&mut self, horizon_ns: SimTime) -> Option<bool> {
        let tg = self.globals.peek_time();
        for i in 0..self.shards.len() {
            self.peeks[i] = self.shards[i].wheel.peek_time();
        }
        let tl = self.peeks.iter().flatten().min().copied();
        let next = match (tg, tl) {
            (None, None) => return None,
            (Some(g), None) => g,
            (None, Some(l)) => l,
            (Some(g), Some(l)) => g.min(l),
        };
        if next > horizon_ns {
            return None;
        }
        Some(match (tg, tl) {
            (Some(g), Some(l)) => g <= l,
            (Some(_), None) => true,
            _ => false,
        })
    }

    fn pop_global(&mut self) {
        let (t, ev) = self.globals.pop().expect("peeked");
        self.now = t;
        self.global_events += 1;
        self.handle_global(ev);
    }

    /// The epoch-barrier coordinator: every round, every shard advances
    /// to the same conservative bound
    /// `end = min(next_global, earliest_local + lookahead, horizon + 1)`
    /// where `lookahead` is the global minimum cross-shard delay.
    fn run_barrier(mut self, horizon_ns: SimTime) -> SimReport {
        loop {
            match self.next_step(horizon_ns) {
                None => break,
                Some(true) => {
                    self.pop_global();
                    continue;
                }
                Some(false) => {}
            }
            let tg = self.globals.peek_time();
            let tl = self
                .peeks
                .iter()
                .flatten()
                .min()
                .copied()
                .expect("local events pending");
            let end = tg
                .unwrap_or(SimTime::MAX)
                .min(tl.saturating_add(self.lookahead))
                .min(horizon_ns.saturating_add(1));
            for s in &mut self.shards {
                s.round_end = end;
            }
            self.run_round();
        }
        self.finish()
    }

    /// The channel-merge coordinator. Each round, shard `i` advances to
    /// its own bound
    ///
    /// ```text
    /// out_j = min(t_j, min over k with a channel k -> j
    ///                      of (out_k + min_delay[k][j]))
    /// end_i = min(next_global, horizon + 1,
    ///             min over shards j != i with a channel j -> i
    ///                 of (out_j + min_delay[j][i]))
    /// ```
    ///
    /// where `t_j` is shard `j`'s earliest pending event and `out_j`
    /// (a shortest-path fixpoint over the channel graph, seeded by the
    /// busy shards) is the earliest instant `j` could *ever* put an
    /// arrival on an outgoing channel — whether from its own wheel or
    /// by forwarding something it has not even received yet. This is
    /// the conservative null-message rule with the coordinator's clock
    /// gather standing in for explicit null messages; propagating
    /// through `out` rather than reading raw clocks is what makes the
    /// lookahead *transitive*: an idle shard `j` relays its upstream's
    /// bound (shifted by the channel delays) instead of imposing none,
    /// while a shard with no busy upstream at all (`out_j = MAX`) truly
    /// cannot wake and never stalls its receiver — an idle or one-way
    /// channel costs nothing, and a shard with no busy ancestors runs
    /// all the way to the horizon.
    ///
    /// Liveness: every `out_j >= t_min`, the globally minimal clock, so
    /// the shard holding `t_min` gets `end_i >= t_min + min cross-shard
    /// delay > t_min` (zero-delay cuts degrade to one shard at
    /// partition time), and every round executes at least one event —
    /// no deadlock, no starvation.
    ///
    /// Determinism: any arrival that ever reaches shard `i` traces back
    /// to an event pending *now* on some shard `k`, through a channel
    /// path whose delays sum to at least `out`'s shortest path, so it is
    /// stamped `>= end_i` and reaches the receiving wheel (at a round
    /// boundary) before the receiver executes any event at that time.
    /// Per-shard pop order is canonical in `(time, key)` regardless of
    /// round boundaries, and globals still outrank locals at equal
    /// instants, so the report is byte-identical to the barrier
    /// engine's at any shard count.
    fn run_merge(mut self, horizon_ns: SimTime) -> SimReport {
        let nsh = self.shards.len();
        let mut out: Vec<SimTime> = Vec::with_capacity(nsh);
        loop {
            match self.next_step(horizon_ns) {
                None => break,
                Some(true) => {
                    self.pop_global();
                    continue;
                }
                Some(false) => {}
            }
            let cap = self
                .globals
                .peek_time()
                .unwrap_or(SimTime::MAX)
                .min(horizon_ns.saturating_add(1));
            // Earliest-possible-output fixpoint (Bellman-Ford over the
            // shard channel graph; nsh is small and cross-shard delays
            // are positive, so this settles in < nsh sweeps).
            out.clear();
            out.extend((0..nsh).map(|j| self.peeks[j].unwrap_or(SimTime::MAX)));
            loop {
                let mut changed = false;
                for j in 0..nsh {
                    for k in 0..nsh {
                        if k == j {
                            continue;
                        }
                        let d = self.min_delay[k * nsh + j];
                        if d == SimTime::MAX || out[k] == SimTime::MAX {
                            continue;
                        }
                        let cand = out[k].saturating_add(d);
                        if cand < out[j] {
                            out[j] = cand;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            for i in 0..nsh {
                let mut end = cap;
                for (j, &oj) in out.iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    let d = self.min_delay[j * nsh + i];
                    if d != SimTime::MAX && oj != SimTime::MAX {
                        end = end.min(oj.saturating_add(d));
                    }
                }
                self.shards[i].round_end = end;
            }
            self.run_round();
        }
        self.finish()
    }

    /// One conservative round: shard `i` executes its local events
    /// strictly before its `round_end` (in parallel when there are
    /// multiple shards), then cross-shard arrivals are exchanged at the
    /// round boundary.
    fn run_round(&mut self) {
        self.epochs += 1;
        let ctx = SharedCtx {
            flows: &self.flows,
            templates: &self.templates,
            chan_index: &self.chan_index,
            chan_link: &self.chan_link,
            chan_state: &self.chan_state,
            chan_owner: &self.chan_owner,
            chan_dest_shard: &self.chan_dest_shard,
            fault_of_link: &self.fault_of_link,
            flow_shard: &self.flow_shard,
            ack_dist: &self.ack_dist,
        };
        if self.shards.len() == 1 {
            let end = self.shards[0].round_end;
            self.shards[0].run_until(end, &ctx);
        } else {
            use rayon::prelude::*;
            self.shards
                .par_iter_mut()
                .for_each(|s| s.run_until(s.round_end, &ctx));
        }
        for i in 0..self.shards.len() {
            let outbox = std::mem::take(&mut self.shards[i].outbox);
            for (t, dest, ev) in outbox {
                debug_assert!(
                    matches!(
                        ev,
                        LocalEvent::Arrive { via: Some(_), .. } | LocalEvent::Ack { .. }
                    ),
                    "only wire arrivals and closed-loop acks cross shards"
                );
                self.shards[dest].wheel.schedule(t, ev);
            }
        }
        if let Some(t) = self.shards.iter().map(|s| s.last_time).max() {
            self.now = self.now.max(t);
        }
    }

    fn handle_global(&mut self, ev: ControlEvent) {
        match ev {
            ControlEvent::LinkDown { link } => self.on_link_down(link),
            ControlEvent::LinkUp { link } => self.on_link_up(link),
            ControlEvent::FaultDetected { link } => self.on_fault_detected(link),
            ControlEvent::Resignal { pending } => self.on_resignal(pending),
            ControlEvent::HoldDownExpired { link } => self.on_hold_down_expired(link),
            ControlEvent::TeardownLsp { lsp } => self.on_teardown_lsp(lsp),
            ControlEvent::TelemetrySample => self.on_telemetry_sample(),
            ControlEvent::LdpTick => self.on_ldp_tick(),
            ControlEvent::LdpDeliver { msg } => self.on_ldp_deliver(msg),
            ControlEvent::NodeDown { node } => self.on_node_down(node),
            ControlEvent::NodeUp { node } => self.on_node_up(node),
            ControlEvent::NodeReprovision { node } => self.on_node_reprovision(node),
            ControlEvent::PartitionStart { link } => self.on_partition_start(link),
            ControlEvent::PartitionEnd { link } => self.on_partition_end(link),
        }
    }

    // ---- channel plumbing --------------------------------------------------

    fn chan(&self, g: usize) -> &Channel {
        let (s, l) = self.chan_owner[g];
        &self.shards[s].channels[l]
    }

    fn chan_mut(&mut self, g: usize) -> &mut Channel {
        let (s, l) = self.chan_owner[g];
        &mut self.shards[s].channels[l]
    }

    /// Re-freezes a channel's liveness snapshot after mutating it.
    fn refresh_chan_state(&mut self, g: usize) {
        let c = self.chan(g);
        let snap = ChanState {
            up: c.up,
            gen: c.gen,
        };
        self.chan_state[g] = snap;
    }

    /// Indices of the two channels (one per direction) of `link`.
    fn channels_of(&self, link: LinkId) -> [usize; 2] {
        let mut found = [usize::MAX; 2];
        let mut n = 0;
        for (i, &l) in self.chan_link.iter().enumerate() {
            if l == link {
                found[n] = i;
                n += 1;
                if n == 2 {
                    break;
                }
            }
        }
        debug_assert_eq!(n, 2, "every link has exactly two channels");
        found
    }

    // ---- fault machinery ---------------------------------------------------

    /// Marks `rec` restored now (first caller wins), closes its outage
    /// span and emits the restoration event.
    fn set_restored(&mut self, rec: usize) {
        if self.records[rec].restored_ns.is_some() {
            return;
        }
        self.records[rec].restored_ns = Some(self.now);
        if S::ENABLED {
            self.sink.event(
                self.now,
                "service_restored",
                format!("link{}", self.records[rec].link),
            );
            if let Some(span) = self.instr.fault_spans.remove(&rec) {
                self.sink.span_end(self.now, span);
            }
        }
    }

    /// Counts one packet lost to `link`'s outage against its flow and
    /// the link's current fault record. (Coordinator-side flow losses
    /// land in shard 0's stats table and merge with the rest.)
    fn count_fault_loss(&mut self, link: LinkId, flow: FlowId) {
        // A deliberately planted accounting bug for the chaos harness to
        // catch: losses on odd-numbered links vanish from the per-flow
        // stats, breaking packet conservation. Never enabled in normal
        // builds — it exists to prove the oracles and minimizer fire.
        #[cfg(feature = "chaos-bug")]
        if link % 2 == 1 {
            return;
        }
        self.shards[0].stats[flow].on_discarded(DiscardCause::LinkDown);
        if let Some(&rec) = self.fault_of_link.get(&link) {
            self.records[rec].packets_lost += 1;
        }
    }

    /// Rebuilds every router's forwarding state from the (mutated)
    /// control plane. Statistics survive; stale flow-cache entries do
    /// not.
    fn reprogram_routers(&mut self) {
        for sh in &mut self.shards {
            for node in &mut sh.nodes {
                let cfg = self.cp.config_for(node.id());
                node.reprogram(&cfg);
            }
        }
    }

    /// How long a retired LSP's transit state must outlive the
    /// switchover so packets already in its pipeline either deliver or
    /// hit the dead link (and are counted there): twice the path's
    /// propagation plus a queueing allowance.
    fn drain_grace_ns(&self, lsp: mpls_control::LspId) -> u64 {
        let Some(l) = self.cp.lsp(lsp) else {
            return 0;
        };
        let topo = self.cp.topology();
        let prop: u64 = topo
            .path_links(&l.path)
            .map(|links| {
                links
                    .iter()
                    .filter_map(|&k| topo.link(k).map(|s| s.delay_ns))
                    .sum()
            })
            .unwrap_or(0);
        2 * prop + 1_000_000
    }

    fn on_teardown_lsp(&mut self, lsp: mpls_control::LspId) {
        // The husk may already be gone (a later fault's standby sweep).
        if self.cp.lsp(lsp).is_some() {
            let _ = self.cp.teardown_lsp(lsp);
            self.reprogram_routers();
        }
    }

    fn on_link_down(&mut self, link: LinkId) {
        let [a, b] = self.channels_of(link);
        if !self.chan(a).up {
            return; // already down (overlapping schedules)
        }
        let rec = self.records.len();
        self.records.push(FaultRecord {
            link,
            down_ns: self.now,
            detected_ns: None,
            restored_ns: None,
            link_up_ns: None,
            packets_lost: 0,
            mode: self.policy.mode,
        });
        self.outstanding.push(0);
        self.fault_of_link.insert(link, rec);
        if S::ENABLED {
            self.sink
                .event(self.now, "link_down", format!("link{link}"));
            let span = self
                .sink
                .span_begin(self.now, &format!("outage.link{link}"));
            self.instr.fault_spans.insert(rec, span);
        }
        // Cut both directions: queued and in-flight packets are lost now.
        for chan in [a, b] {
            let lost = self.chan_mut(chan).take_down();
            self.refresh_chan_state(chan);
            for p in lost {
                self.count_fault_loss(link, p.flow);
            }
        }
        if self.ldp.is_some() {
            // Distributed mode: detection is the session hold-timer, and
            // recovery is the protocol's own withdraw/remap cascade.
            self.ldp_note_link_down(rec);
        } else if self.policy.mode != RecoveryMode::None {
            self.globals.schedule(
                self.now + self.policy.detection_delay_ns,
                ControlEvent::FaultDetected { link },
            );
        }
    }

    fn on_link_up(&mut self, link: LinkId) {
        let [a, b] = self.channels_of(link);
        if self.chan(a).up {
            return; // already up
        }
        {
            // A link cannot return while either endpoint is crashed; the
            // node's own restart brings its ports back.
            let c = self.chan(a);
            if self.dead_nodes.contains(&c.from) || self.dead_nodes.contains(&c.to) {
                return;
            }
        }
        for chan in [a, b] {
            self.chan_mut(chan).bring_up();
            self.refresh_chan_state(chan);
        }
        if S::ENABLED {
            self.sink.event(self.now, "link_up", format!("link{link}"));
        }
        let Some(&rec) = self.fault_of_link.get(&link) else {
            return;
        };
        self.records[rec].link_up_ns = Some(self.now);
        if self.records[rec].detected_ns.is_none() {
            // The control plane never reacted (flap shorter than the
            // detection delay, or no recovery configured): the stale
            // forwarding state simply works again.
            self.set_restored(rec);
        } else if self.ldp.is_none() {
            // Detection fired, so the control plane has the link marked
            // failed; hold it down before reusing it. (In ldp mode the
            // link returns to service by session re-formation instead.)
            self.globals.schedule(
                self.now + self.policy.hold_down_ns,
                ControlEvent::HoldDownExpired { link },
            );
        }
    }

    fn on_fault_detected(&mut self, link: LinkId) {
        let [a, _] = self.channels_of(link);
        if self.chan(a).up {
            return; // the flap cleared before anyone noticed
        }
        let Some(&rec) = self.fault_of_link.get(&link) else {
            return;
        };
        if self.records[rec].detected_ns.is_some() {
            return; // a probe from an earlier outage already reported it
        }
        self.records[rec].detected_ns = Some(self.now);
        if S::ENABLED {
            self.sink
                .event(self.now, "fault_detected", format!("link{link}"));
        }
        if self.sr.is_some() {
            // Segment routing: recompile the source routes around the
            // cut. No per-LSP re-signaling exists to wait for.
            self.sr_fault_detected(link, rec);
            return;
        }
        let affected = self.cp.fail_link(link);
        let mut changed = false;
        for id in affected {
            if self.cp.lsp_is_standby(id) {
                // A broken standby protects nothing; release it.
                let _ = self.cp.teardown_standby(id);
                changed = true;
                continue;
            }
            // Protection: fail over onto a pre-signaled disjoint backup —
            // service is back one detection delay after the cut. The
            // broken primary becomes a husk whose transit state drains
            // the pipeline, then is garbage-collected.
            if self.policy.mode == RecoveryMode::Protection {
                if let Some(backup) = self.cp.backup_of(id) {
                    if self.cp.lsp_is_intact(backup) {
                        let grace = self.drain_grace_ns(id);
                        self.cp.activate_backup(id);
                        self.globals
                            .schedule(self.now + grace, ControlEvent::TeardownLsp { lsp: id });
                        changed = true;
                        continue;
                    }
                }
            }
            // Restoration (or protection without a viable backup):
            // re-signal around the failure; the first attempt completes
            // one signaling latency from now. The broken LSP keeps
            // steering — and losing — traffic until then
            // (make-before-break), so outage loss stays attributed to
            // the dead link.
            let request = self
                .cp
                .lsp(id)
                .expect("fail_link reported a live LSP")
                .request
                .clone();
            self.outstanding[rec] += 1;
            let idx = self.pending.len();
            self.pending.push(PendingResignal {
                record: rec,
                old_lsp: id,
                request,
                attempt: 0,
                done: false,
            });
            self.globals.schedule(
                self.now + self.policy.resignal_delay_ns,
                ControlEvent::Resignal { pending: idx },
            );
        }
        if self.outstanding[rec] == 0 {
            // Nothing is waiting on re-signaling: every broken LSP failed
            // over (or none existed) — service restored at detection.
            self.set_restored(rec);
        }
        if changed {
            self.reprogram_routers();
        }
    }

    fn on_resignal(&mut self, pending: usize) {
        let (rec, old_lsp, attempt, request) = {
            let p = &self.pending[pending];
            if p.done {
                return;
            }
            (p.record, p.old_lsp, p.attempt, p.request.clone())
        };
        let mut request = request;
        request.explicit_route = None;
        match self.cp.establish_lsp(request) {
            Ok(_) => {
                // Break only after the make: the replacement is up; the
                // broken original retires to a husk (transit state keeps
                // draining the pipeline into the dead link, where loss is
                // counted) and is garbage-collected after the grace.
                let grace = self.drain_grace_ns(old_lsp);
                let _ = self.cp.retire_lsp(old_lsp);
                self.globals
                    .schedule(self.now + grace, ControlEvent::TeardownLsp { lsp: old_lsp });
                self.pending[pending].done = true;
                self.outstanding[rec] -= 1;
                if self.outstanding[rec] == 0 {
                    self.set_restored(rec);
                }
                self.reprogram_routers();
            }
            Err(_) => {
                let next_attempt = attempt + 1;
                if next_attempt > self.policy.max_retries {
                    // Gave up: the record stays unrestored.
                    self.pending[pending].done = true;
                    return;
                }
                self.pending[pending].attempt = next_attempt;
                let backoff = self.policy.resignal_delay_ns.saturating_mul(
                    (self.policy.backoff_factor.max(1) as u64).saturating_pow(next_attempt),
                );
                self.globals
                    .schedule(self.now + backoff, ControlEvent::Resignal { pending });
            }
        }
    }

    fn on_hold_down_expired(&mut self, link: LinkId) {
        let [a, _] = self.channels_of(link);
        if !self.chan(a).up {
            return; // failed again before the hold-down expired
        }
        if self.sr.is_some() {
            self.sr_hold_down_expired(link);
            return;
        }
        self.cp.restore_link(link);
    }

    // ---- node crash / restart ----------------------------------------------

    /// Links incident to `node` — each contributes exactly one channel
    /// whose transmitting end is `node`.
    fn links_of_node(&self, node: NodeId) -> Vec<LinkId> {
        (0..self.chan_owner.len())
            .filter(|&g| self.chan(g).from == node)
            .map(|g| self.chan_link[g])
            .collect()
    }

    /// Replaces `node`'s forwarding state with `cfg` (statistics
    /// survive, exactly like [`Self::reprogram_routers`]).
    fn reprogram_node(&mut self, node: NodeId, cfg: &NodeConfig) {
        for sh in &mut self.shards {
            if let Some(&l) = sh.node_local.get(&node) {
                sh.nodes[l].reprogram(cfg);
            }
        }
    }

    /// A node crashes: its FIB is wiped cold, every incident link goes
    /// dark (queued and in-flight packets are lost and counted), and
    /// under `--control ldp` all of its protocol state is lost — peers
    /// notice by hold-timer silence, exactly as they would a dead LSR.
    fn on_node_down(&mut self, node: NodeId) {
        if !self.dead_nodes.insert(node) {
            return; // already down (overlapping schedules)
        }
        if S::ENABLED {
            self.sink
                .event(self.now, "node_down", format!("node{node}"));
        }
        self.reprogram_node(node, &NodeConfig::default());
        for link in self.links_of_node(node) {
            self.on_link_down(link);
        }
        if let Some(mut rt) = self.ldp.take() {
            rt.fabric.crash_node(self.now, node);
            self.reprogram_ldp_dirty(&mut rt);
            self.ldp = Some(rt);
        }
    }

    /// A crashed node restarts cold: incident links return, but the FIB
    /// stays empty until the control plane reprovisions it — one
    /// detection delay later for the centralized solver, or however long
    /// session re-formation and label re-learning take under LDP. That
    /// gap is the cold-FIB window protection LSPs must cover.
    fn on_node_up(&mut self, node: NodeId) {
        if !self.dead_nodes.remove(&node) {
            return; // not down
        }
        if S::ENABLED {
            self.sink.event(self.now, "node_up", format!("node{node}"));
        }
        for link in self.links_of_node(node) {
            self.on_link_up(link);
        }
        if let Some(mut rt) = self.ldp.take() {
            rt.fabric.restart_node(self.now, node);
            self.reprogram_ldp_dirty(&mut rt);
            self.ldp = Some(rt);
        } else if self.policy.mode != RecoveryMode::None {
            self.globals.schedule(
                self.now + self.policy.detection_delay_ns,
                ControlEvent::NodeReprovision { node },
            );
        }
    }

    /// The centralized control plane re-downloads a restarted node's
    /// configuration, ending its cold-FIB window.
    fn on_node_reprovision(&mut self, node: NodeId) {
        if self.dead_nodes.contains(&node) {
            return; // crashed again before the download landed
        }
        if self.sr.is_some() {
            self.sr_reprovision(node);
            if S::ENABLED {
                self.sink
                    .event(self.now, "node_reprovisioned", format!("node{node}"));
            }
            return;
        }
        let cfg = self.cp.config_for(node);
        self.reprogram_node(node, &cfg);
        if S::ENABLED {
            self.sink
                .event(self.now, "node_reprovisioned", format!("node{node}"));
        }
    }

    // ---- control-channel partitions ----------------------------------------

    fn on_partition_start(&mut self, link: LinkId) {
        if self.partitioned.insert(link) && S::ENABLED {
            self.sink
                .event(self.now, "partition_start", format!("link{link}"));
        }
    }

    fn on_partition_end(&mut self, link: LinkId) {
        if self.partitioned.remove(&link) && S::ENABLED {
            self.sink
                .event(self.now, "partition_end", format!("link{link}"));
        }
    }

    // ---- telemetry ---------------------------------------------------------

    /// Periodic sample point: read the channels, then re-arm only while
    /// other work is pending so sampling never keeps a finished run
    /// alive.
    fn on_telemetry_sample(&mut self) {
        self.sample_channels();
        let pending = self.shards.iter().any(|s| !s.wheel.is_empty()) || !self.globals.is_empty();
        if pending {
            self.globals.schedule(
                self.now + self.instr.sample_interval_ns,
                ControlEvent::TelemetrySample,
            );
        }
    }

    /// Pushes one queue-depth and one utilization point per channel, in
    /// global channel order.
    fn sample_channels(&mut self) {
        if !S::ENABLED {
            return;
        }
        let dt = self.now.saturating_sub(self.instr.last_sample_ns);
        for g in 0..self.chan_owner.len() {
            let (s, l) = self.chan_owner[g];
            let c = &self.shards[s].channels[l];
            let depth = c.queue.len() + usize::from(c.in_flight.is_some());
            let busy_ns = c.busy_ns;
            self.sink
                .series_push(self.instr.chan_depth[g], self.now, depth as f64);
            if dt > 0 {
                let busy = busy_ns.saturating_sub(self.instr.chan_busy_prev[g]);
                let util = (busy as f64 / dt as f64).min(1.0);
                self.sink
                    .series_push(self.instr.chan_util[g], self.now, util);
                self.instr.chan_busy_prev[g] = busy_ns;
            }
        }
        self.instr.last_sample_ns = self.now;
    }

    /// End-of-run scrape: final channel sample, per-router pipeline and
    /// FSM counters, per-channel totals. Mirrors reading a hardware
    /// device's counter block after the experiment.
    fn finalize_telemetry(&mut self) {
        if !S::ENABLED {
            return;
        }
        self.sample_channels();
        let elapsed = self.now.max(1);
        let mut nodes: Vec<(NodeId, usize, usize)> = Vec::new();
        for (s, sh) in self.shards.iter().enumerate() {
            for (&id, &l) in &sh.node_local {
                nodes.push((id, s, l));
            }
        }
        nodes.sort_unstable_by_key(|&(id, ..)| id);
        for (node, s, l) in nodes {
            let stats = self.shards[s].nodes[l].stats();
            for (name, value) in [
                ("packets_in", stats.packets_in),
                ("forwarded", stats.forwarded),
                ("delivered", stats.delivered),
                ("discarded", stats.discarded),
                ("flow_installs", stats.flow_installs),
                ("total_cycles", stats.total_cycles),
            ] {
                let id = self.sink.counter(&format!("node{node}.router.{name}"));
                self.sink.counter_add(id, value);
            }
            for (stage, cycles) in stats.stage_cycles.iter() {
                let id = self
                    .sink
                    .counter(&format!("node{node}.pipeline.{stage}_cycles"));
                self.sink.counter_add(id, cycles);
            }
            if let Some(perf) = self.shards[s].nodes[l].core_perf() {
                let state_cycles = perf.state_cycles();
                let depth = perf.search_depth.clone();
                let hits = perf.search_hits;
                let misses = perf.search_misses;
                for (state, cycles) in state_cycles {
                    let id = self.sink.counter(&format!("node{node}.fsm.{state}"));
                    self.sink.counter_add(id, cycles);
                }
                self.sink
                    .import_histogram(&format!("node{node}.ib.search_depth"), &depth);
                let id = self.sink.counter(&format!("node{node}.ib.search_hits"));
                self.sink.counter_add(id, hits);
                let id = self.sink.counter(&format!("node{node}.ib.search_misses"));
                self.sink.counter_add(id, misses);
            }
        }
        for g in 0..self.chan_owner.len() {
            let (s, l) = self.chan_owner[g];
            let c = &self.shards[s].channels[l];
            let (from, to) = (c.from, c.to);
            let values = [
                ("transmitted", c.transmitted),
                ("queue_drops", c.drops),
                ("fault_drops", c.fault_drops),
                ("loss_drops", c.loss_drops),
            ];
            let busy_ns = c.busy_ns;
            let prefix = format!("link.{from}->{to}");
            for (name, value) in values {
                let id = self.sink.counter(&format!("{prefix}.{name}"));
                self.sink.counter_add(id, value);
            }
            let id = self.sink.gauge(&format!("{prefix}.mean_utilization"));
            self.sink.gauge_set(id, busy_ns as f64 / elapsed as f64);
        }
        self.sink.event(self.now, "telemetry_end", String::new());
    }

    // ---- merge -------------------------------------------------------------

    /// Folds every shard's buffered effects together and assembles the
    /// report. Deltas are commutative (sums and histogram merges), and
    /// they are folded in a fixed order (shard index, then subject
    /// index), so the result does not depend on epoch timing.
    fn finish(mut self) -> SimReport {
        // Channel counters owed across shards must land before the
        // telemetry scrape reads the channels.
        for s in 0..self.shards.len() {
            let drops = std::mem::take(&mut self.shards[s].foreign_fault_drops);
            for (g, d) in drops.into_iter().enumerate() {
                if d > 0 {
                    self.chan_mut(g).fault_drops += d;
                }
            }
            let losses = std::mem::take(&mut self.shards[s].record_loss);
            for (rec, d) in losses {
                self.records[rec].packets_lost += d;
            }
        }
        if S::ENABLED {
            for f in 0..self.flows.len() {
                for s in 0..self.shards.len() {
                    let (sent, delivered, conform, exceed) = {
                        let d = &self.shards[s].deltas[f];
                        (d.sent, d.delivered, d.conform, d.exceed)
                    };
                    self.sink.counter_add(self.instr.flow_sent[f], sent);
                    self.sink
                        .counter_add(self.instr.flow_delivered[f], delivered);
                    self.sink
                        .counter_add(self.instr.policer_conform[f], conform);
                    self.sink.counter_add(self.instr.policer_exceed[f], exceed);
                    self.sink
                        .hist_merge(self.instr.flow_delay[f], &self.shards[s].deltas[f].delay);
                    self.sink
                        .hist_merge(self.instr.flow_jitter[f], &self.shards[s].deltas[f].jitter);
                }
            }
        }
        let (control, fibs) = self.finish_control();
        self.finalize_telemetry();
        let mut stats = vec![FlowStats::default(); self.flows.len()];
        for sh in &self.shards {
            for (f, st) in sh.stats.iter().enumerate() {
                stats[f].absorb(st);
            }
        }
        let nchans = self.chan_owner.len();
        let elapsed = self.now.max(1);
        let mut queue_drops = 0;
        let mut link_drops = 0;
        let mut loss_drops = 0;
        let mut links = Vec::with_capacity(nchans);
        for g in 0..nchans {
            let c = self.chan(g);
            queue_drops += c.drops;
            link_drops += c.fault_drops;
            loss_drops += c.loss_drops;
            links.push(LinkUsage {
                from: c.from,
                to: c.to,
                transmitted: c.transmitted,
                drops: c.drops,
                fault_drops: c.fault_drops,
                loss_drops: c.loss_drops,
                utilization: c.busy_ns as f64 / elapsed as f64,
            });
        }
        let mut routers = BTreeMap::new();
        for sh in &self.shards {
            for node in &sh.nodes {
                routers.insert(node.id(), node.stats());
            }
        }
        let engine = EngineStats {
            kind: self.kind,
            shards: self.shards.len(),
            lookahead_ns: (self.lookahead != SimTime::MAX).then_some(self.lookahead),
            epochs: self.epochs,
            global_events: self.global_events,
            shard_events: self.shards.iter().map(|s| s.events_processed).collect(),
        };
        let telemetry = self.sink.into_report();
        SimReport {
            flows: self.flows.into_iter().zip(stats).collect(),
            routers,
            queue_drops,
            link_drops,
            loss_drops,
            links,
            faults: self.records,
            elapsed_ns: self.now,
            telemetry,
            engine,
            control,
            fibs,
        }
    }
}
