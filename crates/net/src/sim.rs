//! The simulation engine: routers wired to channels, driven by an event
//! queue.

use crate::event::{EventKind, EventQueue, SimTime};
use crate::link::{Channel, OfferResult};
use crate::queue::QueueDiscipline;
use crate::stats::{FlowId, FlowStats};
use crate::traffic::FlowSpec;
use mpls_control::{ControlPlane, NodeId};
use mpls_core::ClockSpec;
use mpls_packet::{
    EtherType, EthernetFrame, Ipv4Header, MacAddr, MplsPacket,
};
use mpls_router::{
    Action, EmbeddedRouter, MplsForwarder, RouterStats, SoftwareRouter, SwTimingModel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// A packet in flight through the simulation.
#[derive(Debug, Clone)]
pub struct SimPacket {
    /// The wire packet.
    pub inner: MplsPacket,
    /// Owning flow.
    pub flow: FlowId,
    /// Per-flow sequence number.
    pub seq: u64,
    /// Emission timestamp.
    pub sent_ns: SimTime,
}

impl SimPacket {
    /// The CoS class used by priority queues: the top label's CoS bits, or
    /// the IP precedence for unlabeled packets.
    pub fn cos_class(&self) -> u8 {
        match self.inner.stack.top() {
            Some(e) => e.cos.value(),
            None => self.inner.ip.precedence(),
        }
    }

    /// Bytes on the wire.
    pub fn wire_len(&self) -> usize {
        self.inner.wire_len()
    }
}

/// Which router implementation populates the nodes.
#[derive(Debug, Clone, Copy)]
pub enum RouterKind {
    /// The embedded (hardware-model) router at a given clock.
    Embedded {
        /// FPGA clock.
        clock: ClockSpec,
    },
    /// Software router with hash-map lookups.
    SoftwareHash {
        /// Latency model.
        timing: SwTimingModel,
    },
    /// Software router with linear-scan lookups.
    SoftwareLinear {
        /// Latency model.
        timing: SwTimingModel,
    },
}

/// Per-channel usage in a report.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct LinkUsage {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Packets fully transmitted.
    pub transmitted: u64,
    /// Packets tail-dropped at this channel's queue.
    pub drops: u64,
    /// Fraction of the run the channel spent serializing (0.0-1.0).
    pub utilization: f64,
}

/// The outcome of a run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SimReport {
    /// Per-flow specs and stats, index-aligned with flow ids.
    pub flows: Vec<(FlowSpec, FlowStats)>,
    /// Per-router data-plane statistics.
    pub routers: HashMap<NodeId, RouterStats>,
    /// Total packets dropped at link queues.
    pub queue_drops: u64,
    /// Per-channel usage.
    pub links: Vec<LinkUsage>,
    /// Simulated duration actually executed.
    pub elapsed_ns: SimTime,
}

impl SimReport {
    /// Finds a flow's stats by name.
    pub fn flow(&self, name: &str) -> Option<&FlowStats> {
        self.flows
            .iter()
            .find(|(spec, _)| spec.name == name)
            .map(|(_, s)| s)
    }
}

/// The discrete-event simulation.
pub struct Simulation {
    channels: Vec<Channel>,
    chan_index: HashMap<(NodeId, NodeId), usize>,
    routers: HashMap<NodeId, Box<dyn MplsForwarder + Send>>,
    flows: Vec<FlowSpec>,
    stats: Vec<FlowStats>,
    policers: Vec<Option<crate::policer::TokenBucket>>,
    events: EventQueue,
    rng: StdRng,
    now: SimTime,
}

impl Simulation {
    /// Builds a simulation over the control plane's topology: every node
    /// gets a router of `kind` programmed with its configuration, every
    /// link two channels with `discipline` queues.
    pub fn build(
        cp: &ControlPlane,
        kind: RouterKind,
        discipline: QueueDiscipline,
        seed: u64,
    ) -> Self {
        let topo = cp.topology();
        let mut channels = Vec::new();
        let mut chan_index = HashMap::new();
        for (link_id, spec) in topo.links().iter().enumerate() {
            // Failed links get no channels: packets steered onto them
            // blackhole at the sending router (counted as router drops),
            // exactly what a down interface does.
            if cp.link_is_failed(link_id as u32) {
                continue;
            }
            for (from, to) in [(spec.a, spec.b), (spec.b, spec.a)] {
                chan_index.insert((from, to), channels.len());
                channels.push(Channel::new(
                    from,
                    to,
                    spec.bandwidth_bps,
                    spec.delay_ns,
                    discipline,
                ));
            }
        }
        let mut routers: HashMap<NodeId, Box<dyn MplsForwarder + Send>> = HashMap::new();
        for node in topo.nodes() {
            let cfg = cp.config_for(node.id);
            let boxed: Box<dyn MplsForwarder + Send> = match kind {
                RouterKind::Embedded { clock } => {
                    Box::new(EmbeddedRouter::new(node.id, node.role, &cfg, clock))
                }
                RouterKind::SoftwareHash { timing } => {
                    Box::new(SoftwareRouter::<mpls_dataplane::HashTable>::new(
                        node.id, node.role, &cfg, timing,
                    ))
                }
                RouterKind::SoftwareLinear { timing } => {
                    Box::new(SoftwareRouter::<mpls_dataplane::LinearTable>::new(
                        node.id, node.role, &cfg, timing,
                    ))
                }
            };
            routers.insert(node.id, boxed);
        }
        Self {
            channels,
            chan_index,
            routers,
            flows: Vec::new(),
            stats: Vec::new(),
            policers: Vec::new(),
            events: EventQueue::new(),
            rng: StdRng::seed_from_u64(seed),
            now: 0,
        }
    }

    /// Registers a flow; its first packet is scheduled at `spec.start_ns`.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        let id = self.flows.len();
        self.events
            .schedule(spec.start_ns, EventKind::SourceEmit { flow: id });
        self.policers
            .push(spec.police.map(crate::policer::TokenBucket::new));
        self.flows.push(spec);
        self.stats.push(FlowStats::default());
        id
    }

    /// Runs until the event queue drains or `horizon_ns` passes, then
    /// reports.
    pub fn run(mut self, horizon_ns: SimTime) -> SimReport {
        while let Some((time, kind)) = self.events.pop() {
            if time > horizon_ns {
                break;
            }
            self.now = time;
            match kind {
                EventKind::SourceEmit { flow } => self.on_source_emit(flow),
                EventKind::Arrive { node, packet } => self.on_arrive(node, packet),
                EventKind::TransmitDone { channel } => self.on_transmit_done(channel),
            }
        }
        let queue_drops = self.channels.iter().map(|c| c.drops).sum();
        let elapsed = self.now.max(1);
        let links = self
            .channels
            .iter()
            .map(|c| LinkUsage {
                from: c.from,
                to: c.to,
                transmitted: c.transmitted,
                drops: c.drops,
                utilization: c.busy_ns as f64 / elapsed as f64,
            })
            .collect();
        SimReport {
            flows: self.flows.into_iter().zip(self.stats).collect(),
            routers: self
                .routers
                .iter()
                .map(|(&id, r)| (id, r.stats()))
                .collect(),
            queue_drops,
            links,
            elapsed_ns: self.now,
        }
    }

    fn on_source_emit(&mut self, flow: FlowId) {
        let spec = self.flows[flow].clone();
        if self.now >= spec.stop_ns {
            return;
        }
        let seq = self.stats[flow].sent;
        self.stats[flow].on_sent();
        let packet = SimPacket {
            inner: make_packet(&spec, seq),
            flow,
            seq,
            sent_ns: self.now,
        };
        // Edge policing: non-conforming packets never enter the network.
        let conforms = match &mut self.policers[flow] {
            Some(bucket) => bucket.conform(self.now, packet.wire_len()),
            None => true,
        };
        if conforms {
            self.events.schedule(
                self.now,
                EventKind::Arrive {
                    node: spec.ingress,
                    packet,
                },
            );
        } else {
            self.stats[flow].policer_dropped += 1;
        }
        let elapsed = self.now - spec.start_ns;
        let gap = spec.pattern.next_gap(elapsed, &mut self.rng);
        let next = self.now + gap;
        if next < spec.stop_ns {
            self.events.schedule(next, EventKind::SourceEmit { flow });
        }
    }

    fn on_arrive(&mut self, node: NodeId, packet: SimPacket) {
        let SimPacket {
            inner, flow, seq, sent_ns,
        } = packet;
        let router = self
            .routers
            .get_mut(&node)
            .expect("packets only travel between known nodes");
        let out = router.handle(inner);
        let done = self.now + out.latency_ns;
        match out.action {
            Action::Forward { next, packet: inner } => {
                let Some(&chan) = self.chan_index.get(&(node, next)) else {
                    // Misconfigured next hop onto a non-adjacent node.
                    self.stats[flow].router_dropped += 1;
                    return;
                };
                let sp = SimPacket {
                    inner,
                    flow,
                    seq,
                    sent_ns,
                };
                self.offer_to_channel(chan, sp, done);
            }
            Action::Deliver(inner) => {
                let wire = inner.wire_len();
                self.stats[flow].on_delivered(done, done - sent_ns, wire);
            }
            Action::Discard(_) => {
                self.stats[flow].router_dropped += 1;
            }
        }
    }

    fn offer_to_channel(&mut self, chan: usize, packet: SimPacket, at: SimTime) {
        let flow = packet.flow;
        let c = &mut self.channels[chan];
        match c.offer(packet) {
            OfferResult::Dropped => {
                self.stats[flow].queue_dropped += 1;
            }
            OfferResult::Queued => {}
            OfferResult::StartTransmit => {
                let p = c.queue.pop().expect("just offered");
                let ser = c.serialization_ns(p.wire_len());
                c.busy = true;
                c.busy_ns += ser;
                c.in_flight = Some(p);
                self.events
                    .schedule(at + ser, EventKind::TransmitDone { channel: chan });
            }
        }
    }

    fn on_transmit_done(&mut self, chan: usize) {
        let c = &mut self.channels[chan];
        let p = c.in_flight.take().expect("transmit completed with cargo");
        c.transmitted += 1;
        let to = c.to;
        let delay = c.delay_ns;
        // Start the next queued packet, if any.
        if let Some(next) = c.queue.pop() {
            let ser = c.serialization_ns(next.wire_len());
            c.busy_ns += ser;
            c.in_flight = Some(next);
            self.events
                .schedule(self.now + ser, EventKind::TransmitDone { channel: chan });
        } else {
            c.busy = false;
        }
        self.events.schedule(
            self.now + delay,
            EventKind::Arrive { node: to, packet: p },
        );
    }
}

/// Runs the same scenario across many seeds in parallel (rayon) and
/// returns one report per seed, in seed order. Simulations are
/// independent, so this is an embarrassingly parallel ensemble — the
/// standard way to put confidence intervals on stochastic workloads.
pub fn run_ensemble(
    cp: &ControlPlane,
    kind: RouterKind,
    discipline: QueueDiscipline,
    flows: &[FlowSpec],
    horizon_ns: SimTime,
    seeds: &[u64],
) -> Vec<SimReport> {
    use rayon::prelude::*;
    seeds
        .par_iter()
        .map(|&seed| {
            let mut sim = Simulation::build(cp, kind, discipline, seed);
            for f in flows {
                sim.add_flow(f.clone());
            }
            sim.run(horizon_ns)
        })
        .collect()
}

/// Mean and sample standard deviation of a metric across ensemble
/// reports.
pub fn ensemble_stat<F: Fn(&SimReport) -> f64>(reports: &[SimReport], metric: F) -> (f64, f64) {
    let n = reports.len() as f64;
    if reports.is_empty() {
        return (0.0, 0.0);
    }
    let values: Vec<f64> = reports.iter().map(metric).collect();
    let mean = values.iter().sum::<f64>() / n;
    if reports.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Builds the unlabeled wire packet for one emission.
fn make_packet(spec: &FlowSpec, seq: u64) -> MplsPacket {
    let mut ip = Ipv4Header::new(
        spec.src_addr,
        spec.dst_addr,
        Ipv4Header::PROTO_UDP,
        64,
        spec.payload_bytes,
    );
    ip.tos = spec.precedence << 5;
    ip.ident = (seq & 0xffff) as u16;
    MplsPacket::ipv4(
        EthernetFrame {
            dst: MacAddr::from_node(spec.ingress, 0),
            src: MacAddr::from_node(u32::MAX, 0),
            ethertype: EtherType::Ipv4,
        },
        ip,
        bytes::Bytes::from(vec![0u8; spec.payload_bytes]),
    )
}

/// Helpers shared by this crate's unit tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    /// A minimal unlabeled packet with the given IP precedence.
    pub fn packet_with_cos(precedence: u8, seq: u64) -> SimPacket {
        let spec = FlowSpec {
            name: "t".into(),
            ingress: 0,
            src_addr: 1,
            dst_addr: 2,
            payload_bytes: 64,
            precedence,
            pattern: crate::traffic::TrafficPattern::Cbr { interval_ns: 1 },
            start_ns: 0,
            stop_ns: 1,
            police: None,
        };
        SimPacket {
            inner: make_packet(&spec, seq),
            flow: 0,
            seq,
            sent_ns: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpls_control::{LspRequest, Topology};
    use mpls_dataplane::ftn::Prefix;
    use mpls_packet::ipv4::parse_addr;

    fn plane_with_lsp() -> ControlPlane {
        let mut cp = ControlPlane::new(Topology::figure1_example());
        cp.establish_lsp(LspRequest::best_effort(
            0,
            1,
            Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
        ))
        .unwrap();
        cp
    }

    fn cbr_flow(name: &str, interval_ns: u64) -> FlowSpec {
        FlowSpec {
            name: name.into(),
            ingress: 0,
            src_addr: parse_addr("10.0.0.1").unwrap(),
            dst_addr: parse_addr("192.168.1.5").unwrap(),
            payload_bytes: 146,
            precedence: 5,
            pattern: crate::traffic::TrafficPattern::Cbr { interval_ns },
            start_ns: 0,
            stop_ns: 10_000_000, // 10 ms
            police: None,
        }
    }

    #[test]
    fn end_to_end_delivery_over_embedded_routers() {
        let cp = plane_with_lsp();
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            1,
        );
        sim.add_flow(cbr_flow("cbr", 1_000_000)); // 1 packet/ms
        let report = sim.run(1_000_000_000);
        let s = report.flow("cbr").unwrap();
        assert_eq!(s.sent, 10);
        assert_eq!(s.delivered, 10, "all packets arrive");
        assert_eq!(s.router_dropped, 0);
        assert_eq!(s.queue_dropped, 0);
        // Three links at 0.5 ms propagation each dominate the delay.
        assert!(s.mean_delay_ns() > 1_500_000.0);
        assert!(s.mean_delay_ns() < 1_700_000.0, "{}", s.mean_delay_ns());
        // Routers saw traffic.
        assert!(report.routers[&0].packets_in >= 10);
        assert_eq!(report.routers[&1].delivered, 10);
    }

    #[test]
    fn software_routers_deliver_identically() {
        let cp = plane_with_lsp();
        let run = |kind| {
            let mut sim = Simulation::build(
                &cp,
                kind,
                QueueDiscipline::Fifo { capacity: 64 },
                1,
            );
            sim.add_flow(cbr_flow("cbr", 1_000_000));
            sim.run(1_000_000_000)
        };
        let hw = run(RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        });
        let sw = run(RouterKind::SoftwareHash {
            timing: SwTimingModel::default(),
        });
        assert_eq!(
            hw.flow("cbr").unwrap().delivered,
            sw.flow("cbr").unwrap().delivered
        );
    }

    #[test]
    fn congestion_drops_in_fifo_queue() {
        let cp = plane_with_lsp();
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 4 },
            7,
        );
        // 1500-byte payloads every 10 µs ≈ 1.2 Gb/s offered onto 1 Gb/s
        // links: the first-hop queue must overflow.
        let mut f = cbr_flow("hot", 10_000);
        f.payload_bytes = 1500;
        sim.add_flow(f);
        let report = sim.run(50_000_000);
        let s = report.flow("hot").unwrap();
        assert!(s.queue_dropped > 0, "expected tail drops");
        assert!(s.delivered > 0);
    }

    #[test]
    fn unroutable_flow_is_router_dropped() {
        let cp = plane_with_lsp();
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 4 },
            7,
        );
        let mut f = cbr_flow("lost", 1_000_000);
        f.dst_addr = parse_addr("172.31.0.1").unwrap(); // no LSP, no route
        sim.add_flow(f);
        let report = sim.run(1_000_000_000);
        let s = report.flow("lost").unwrap();
        assert_eq!(s.delivered, 0);
        assert_eq!(s.router_dropped, s.sent);
    }

    #[test]
    fn ensemble_matches_sequential_runs() {
        let cp = plane_with_lsp();
        let flows = vec![cbr_flow("cbr", 1_000_000)];
        let seeds = [1u64, 2, 3, 4];
        let reports = run_ensemble(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            &flows,
            1_000_000_000,
            &seeds,
        );
        assert_eq!(reports.len(), 4);
        for (i, &seed) in seeds.iter().enumerate() {
            let mut sim = Simulation::build(
                &cp,
                RouterKind::Embedded {
                    clock: ClockSpec::STRATIX_50MHZ,
                },
                QueueDiscipline::Fifo { capacity: 64 },
                seed,
            );
            sim.add_flow(flows[0].clone());
            let seq = sim.run(1_000_000_000);
            assert_eq!(
                reports[i].flow("cbr").unwrap().delay_sum_ns,
                seq.flow("cbr").unwrap().delay_sum_ns,
                "seed {seed} diverged between parallel and sequential runs"
            );
        }
        let (mean, std) = ensemble_stat(&reports, |r| r.flow("cbr").unwrap().mean_delay_ns());
        assert!(mean > 0.0);
        assert!(std >= 0.0);
    }

    #[test]
    fn ensemble_stat_math() {
        // Degenerate cases.
        let empty: Vec<SimReport> = vec![];
        assert_eq!(ensemble_stat(&empty, |_| 1.0), (0.0, 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let cp = plane_with_lsp();
        let run = |seed| {
            let mut sim = Simulation::build(
                &cp,
                RouterKind::Embedded {
                    clock: ClockSpec::STRATIX_50MHZ,
                },
                QueueDiscipline::Fifo { capacity: 16 },
                seed,
            );
            let mut f = cbr_flow("p", 0);
            f.pattern = crate::traffic::TrafficPattern::Poisson {
                mean_interval_ns: 500_000,
            };
            sim.add_flow(f);
            let r = sim.run(20_000_000);
            let s = r.flow("p").unwrap();
            (s.sent, s.delivered, s.delay_sum_ns)
        };
        assert_eq!(run(3), run(3));
        // Different seeds explore different arrival processes. Any two
        // particular seeds can tie by chance, so check across a range.
        let outcomes: std::collections::HashSet<_> = (0..8).map(run).collect();
        assert!(outcomes.len() > 1, "all seeds produced identical runs");
    }
}
