//! The simulation engine: routers wired to channels, driven by an event
//! queue.
//!
//! # Runtime faults
//!
//! The simulation owns a **clone** of the control plane it was built
//! from. Static failures (`ControlPlane::fail_link` *before*
//! [`Simulation::build`]) start the run with those links dark; to fail a
//! link *mid-run*, attach a [`FaultPlan`](crate::fault::FaultPlan) with
//! [`Simulation::set_fault_plan`]. The plan's link-down/up events flow
//! through the ordinary event queue; the restoration policy then drives
//! the cloned control plane (detection → failover or re-signaling →
//! hold-down) and reprograms the routers in place.

use crate::event::{EventKind, EventQueue, SimTime};
use crate::fault::{FaultKind, FaultPlan, FaultRecord, RecoveryMode, RestorationPolicy};
use crate::link::{Channel, OfferResult};
use crate::queue::QueueDiscipline;
use crate::stats::{FlowId, FlowStats};
use crate::traffic::FlowSpec;
use mpls_control::{ControlPlane, LinkId, LspRequest, NodeId};
use mpls_core::ClockSpec;
use mpls_packet::{EtherType, EthernetFrame, Ipv4Header, MacAddr, MplsPacket};
use mpls_router::{
    Action, DiscardCause, EmbeddedRouter, MplsForwarder, RouterStats, SoftwareRouter, SwTimingModel,
};
use mpls_telemetry::{
    CounterId, HistId, NoopSink, Registry, SeriesId, SpanId, TelemetryConfig, TelemetryReport,
    TelemetrySink,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A packet in flight through the simulation.
#[derive(Debug, Clone)]
pub struct SimPacket {
    /// The wire packet.
    pub inner: MplsPacket,
    /// Owning flow.
    pub flow: FlowId,
    /// Per-flow sequence number.
    pub seq: u64,
    /// Emission timestamp.
    pub sent_ns: SimTime,
}

impl SimPacket {
    /// The CoS class used by priority queues: the top label's CoS bits, or
    /// the IP precedence for unlabeled packets.
    pub fn cos_class(&self) -> u8 {
        match self.inner.stack.top() {
            Some(e) => e.cos.value(),
            None => self.inner.ip.precedence(),
        }
    }

    /// Bytes on the wire.
    pub fn wire_len(&self) -> usize {
        self.inner.wire_len()
    }
}

/// Which router implementation populates the nodes.
#[derive(Debug, Clone, Copy)]
pub enum RouterKind {
    /// The embedded (hardware-model) router at a given clock.
    Embedded {
        /// FPGA clock.
        clock: ClockSpec,
    },
    /// Software router with hash-map lookups.
    SoftwareHash {
        /// Latency model.
        timing: SwTimingModel,
    },
    /// Software router with linear-scan lookups.
    SoftwareLinear {
        /// Latency model.
        timing: SwTimingModel,
    },
}

/// Per-channel usage in a report.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct LinkUsage {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Packets fully transmitted.
    pub transmitted: u64,
    /// Packets tail-dropped at this channel's queue.
    pub drops: u64,
    /// Packets lost because the channel was down.
    pub fault_drops: u64,
    /// Packets lost to random wire loss.
    pub loss_drops: u64,
    /// Fraction of the run the channel spent serializing (0.0-1.0).
    pub utilization: f64,
}

/// The outcome of a run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SimReport {
    /// Per-flow specs and stats, index-aligned with flow ids.
    pub flows: Vec<(FlowSpec, FlowStats)>,
    /// Per-router data-plane statistics.
    pub routers: HashMap<NodeId, RouterStats>,
    /// Total packets dropped at link queues.
    pub queue_drops: u64,
    /// Total packets lost to dead links.
    pub link_drops: u64,
    /// Total packets lost to random wire loss.
    pub loss_drops: u64,
    /// Per-channel usage.
    pub links: Vec<LinkUsage>,
    /// One record per injected outage, in occurrence order.
    pub faults: Vec<FaultRecord>,
    /// Simulated duration actually executed.
    pub elapsed_ns: SimTime,
    /// Metrics snapshot, present when the run was telemetry-enabled
    /// (see [`Simulation::with_telemetry`]).
    pub telemetry: Option<TelemetryReport>,
}

impl SimReport {
    /// Finds a flow's stats by name.
    pub fn flow(&self, name: &str) -> Option<&FlowStats> {
        self.flows
            .iter()
            .find(|(spec, _)| spec.name == name)
            .map(|(_, s)| s)
    }
}

/// A head-end re-signaling attempt in progress (make-before-break: the
/// broken LSP keeps steering — and losing — traffic until the
/// replacement is up, then is torn down).
struct PendingResignal {
    /// Index into `Simulation::records`.
    record: usize,
    /// The broken LSP, torn down once the replacement is established.
    old_lsp: mpls_control::LspId,
    /// The broken LSP's original request (explicit route dropped —
    /// restoration outranks pinning).
    request: LspRequest,
    /// Attempts completed so far.
    attempt: u32,
    /// Set once the LSP is re-established (or retries are exhausted).
    done: bool,
}

/// Per-flow and per-channel instrument handles for a telemetry-enabled
/// run. All vectors are index-aligned with their subject tables; on a
/// [`NoopSink`] run they stay empty and every record site is skipped at
/// compile time via `S::ENABLED`.
#[derive(Default)]
struct SimInstruments {
    /// Queue-depth time series, one per channel.
    chan_depth: Vec<SeriesId>,
    /// Utilization time series, one per channel.
    chan_util: Vec<SeriesId>,
    /// `busy_ns` observed at the previous sample, for utilization deltas.
    chan_busy_prev: Vec<u64>,
    /// Timestamp of the previous sample point.
    last_sample_ns: SimTime,
    /// Sampling period.
    sample_interval_ns: u64,
    /// Per-LSP end-to-end delay histograms, one per flow.
    flow_delay: Vec<HistId>,
    /// Per-LSP inter-packet delay-variation histograms, one per flow.
    flow_jitter: Vec<HistId>,
    /// Packets emitted, one counter per flow.
    flow_sent: Vec<CounterId>,
    /// Packets delivered, one counter per flow.
    flow_delivered: Vec<CounterId>,
    /// Edge-policer conform verdicts, one counter per flow.
    policer_conform: Vec<CounterId>,
    /// Edge-policer exceed verdicts, one counter per flow.
    policer_exceed: Vec<CounterId>,
    /// Open outage spans keyed by fault-record index.
    fault_spans: HashMap<usize, SpanId>,
}

/// The discrete-event simulation.
///
/// The sink type parameter selects the telemetry mode: the default
/// [`NoopSink`] compiles every record site away; converting with
/// [`Simulation::with_telemetry`] swaps in a live [`Registry`] whose
/// snapshot lands in [`SimReport::telemetry`].
pub struct Simulation<S: TelemetrySink = NoopSink> {
    channels: Vec<Channel>,
    chan_index: HashMap<(NodeId, NodeId), usize>,
    /// `chan_link[i]` is the topology link channel `i` belongs to.
    chan_link: Vec<LinkId>,
    routers: HashMap<NodeId, Box<dyn MplsForwarder + Send>>,
    /// The simulation's own control plane — a clone of the one it was
    /// built from, mutated by runtime faults.
    cp: ControlPlane,
    flows: Vec<FlowSpec>,
    stats: Vec<FlowStats>,
    policers: Vec<Option<crate::policer::TokenBucket>>,
    events: EventQueue,
    rng: StdRng,
    now: SimTime,
    policy: RestorationPolicy,
    records: Vec<FaultRecord>,
    /// Per-record count of broken LSPs still awaiting recovery.
    outstanding: Vec<usize>,
    /// Most recent fault record per link (kept after the link returns so
    /// straggler losses still attribute to the right outage).
    fault_of_link: HashMap<LinkId, usize>,
    pending: Vec<PendingResignal>,
    sink: S,
    instr: SimInstruments,
}

impl Simulation {
    /// Builds a simulation over the control plane's topology: every node
    /// gets a router of `kind` programmed with its configuration, every
    /// link two channels with `discipline` queues. Links already marked
    /// failed on `cp` start dark — packets steered onto them count as
    /// link drops. The control plane is cloned: later mutations of `cp`
    /// do not reach this simulation (use
    /// [`Self::set_fault_plan`] for runtime faults).
    pub fn build(
        cp: &ControlPlane,
        kind: RouterKind,
        discipline: QueueDiscipline,
        seed: u64,
    ) -> Self {
        let topo = cp.topology();
        let mut channels = Vec::new();
        let mut chan_index = HashMap::new();
        let mut chan_link = Vec::new();
        for (link_id, spec) in topo.links().iter().enumerate() {
            for (from, to) in [(spec.a, spec.b), (spec.b, spec.a)] {
                chan_index.insert((from, to), channels.len());
                let mut c = Channel::new(from, to, spec.bandwidth_bps, spec.delay_ns, discipline);
                // Statically failed links exist but start dark.
                c.up = !cp.link_is_failed(link_id as LinkId);
                channels.push(c);
                chan_link.push(link_id as LinkId);
            }
        }
        let mut routers: HashMap<NodeId, Box<dyn MplsForwarder + Send>> = HashMap::new();
        for node in topo.nodes() {
            let cfg = cp.config_for(node.id);
            let boxed: Box<dyn MplsForwarder + Send> = match kind {
                RouterKind::Embedded { clock } => {
                    Box::new(EmbeddedRouter::new(node.id, node.role, &cfg, clock))
                }
                RouterKind::SoftwareHash { timing } => {
                    Box::new(SoftwareRouter::<mpls_dataplane::HashTable>::new(
                        node.id, node.role, &cfg, timing,
                    ))
                }
                RouterKind::SoftwareLinear { timing } => {
                    Box::new(SoftwareRouter::<mpls_dataplane::LinearTable>::new(
                        node.id, node.role, &cfg, timing,
                    ))
                }
            };
            routers.insert(node.id, boxed);
        }
        Self {
            channels,
            chan_index,
            chan_link,
            routers,
            cp: cp.clone(),
            flows: Vec::new(),
            stats: Vec::new(),
            policers: Vec::new(),
            events: EventQueue::new(),
            rng: StdRng::seed_from_u64(seed),
            now: 0,
            policy: RestorationPolicy::default(),
            records: Vec::new(),
            outstanding: Vec::new(),
            fault_of_link: HashMap::new(),
            pending: Vec::new(),
            sink: NoopSink,
            instr: SimInstruments::default(),
        }
    }

    /// Converts this simulation into a telemetry-enabled one: a live
    /// [`Registry`] replaces the no-op sink, per-channel queue-depth and
    /// utilization series plus per-flow counters and latency histograms
    /// are registered, every router's FSM cycle counters are switched
    /// on, and periodic sample events start at
    /// `config.sample_interval_ns`. Call after `build` (flows added
    /// before or after the conversion are both instrumented).
    pub fn with_telemetry(self, config: TelemetryConfig) -> Simulation<Registry> {
        let sample_interval_ns = config.sample_interval_ns.max(1);
        let mut sink = Registry::new(config);
        let mut instr = SimInstruments {
            sample_interval_ns,
            ..SimInstruments::default()
        };
        for c in &self.channels {
            let depth = sink.series(format!("link.{}->{}.queue_depth", c.from, c.to));
            let util = sink.series(format!("link.{}->{}.utilization", c.from, c.to));
            instr.chan_depth.push(depth);
            instr.chan_util.push(util);
            instr.chan_busy_prev.push(c.busy_ns);
        }
        let mut sim = Simulation {
            channels: self.channels,
            chan_index: self.chan_index,
            chan_link: self.chan_link,
            routers: self.routers,
            cp: self.cp,
            flows: self.flows,
            stats: self.stats,
            policers: self.policers,
            events: self.events,
            rng: self.rng,
            now: self.now,
            policy: self.policy,
            records: self.records,
            outstanding: self.outstanding,
            fault_of_link: self.fault_of_link,
            pending: self.pending,
            sink,
            instr,
        };
        for flow in 0..sim.flows.len() {
            sim.register_flow_instruments(flow);
        }
        for router in sim.routers.values_mut() {
            router.enable_perf();
        }
        sim.sink.event(sim.now, "telemetry_start", String::new());
        sim.events
            .schedule(sim.now + sample_interval_ns, EventKind::TelemetrySample);
        sim
    }
}

impl<S: TelemetrySink> Simulation<S> {
    /// Attaches a fault plan: its link events enter the event queue, its
    /// loss probabilities program the channels, and its policy governs
    /// detection and recovery.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.policy = plan.policy;
        for ev in &plan.events {
            match ev.kind {
                FaultKind::LinkDown(link) => {
                    self.events.schedule(ev.at_ns, EventKind::LinkDown { link })
                }
                FaultKind::LinkUp(link) => {
                    self.events.schedule(ev.at_ns, EventKind::LinkUp { link })
                }
            }
        }
        for loss in &plan.losses {
            for (i, c) in self.channels.iter_mut().enumerate() {
                if self.chan_link[i] == loss.link {
                    c.loss_prob = loss.probability;
                }
            }
        }
    }

    /// Registers a flow; its first packet is scheduled at `spec.start_ns`.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        let id = self.flows.len();
        self.events
            .schedule(spec.start_ns, EventKind::SourceEmit { flow: id });
        self.policers
            .push(spec.police.map(crate::policer::TokenBucket::new));
        self.flows.push(spec);
        self.stats.push(FlowStats::default());
        self.register_flow_instruments(id);
        id
    }

    /// Registers `flow`'s counters and latency histograms. No-op (and
    /// fully compiled away) on a [`NoopSink`] run.
    fn register_flow_instruments(&mut self, flow: FlowId) {
        if !S::ENABLED {
            return;
        }
        let name = self.flows[flow].name.clone();
        self.instr
            .flow_sent
            .push(self.sink.counter(&format!("flow.{name}.sent")));
        self.instr
            .flow_delivered
            .push(self.sink.counter(&format!("flow.{name}.delivered")));
        self.instr
            .policer_conform
            .push(self.sink.counter(&format!("flow.{name}.policer_conform")));
        self.instr
            .policer_exceed
            .push(self.sink.counter(&format!("flow.{name}.policer_exceed")));
        // 1 µs .. ~1 s in octaves: covers FPGA pipelines through congested
        // software paths.
        let bounds: Vec<u64> = (0..21).map(|i| 1000u64 << i).collect();
        self.instr.flow_delay.push(
            self.sink
                .histogram(&format!("lsp.{name}.delay_ns"), bounds.clone()),
        );
        self.instr.flow_jitter.push(
            self.sink
                .histogram(&format!("lsp.{name}.jitter_ns"), bounds),
        );
    }

    /// Runs until the event queue drains or `horizon_ns` passes, then
    /// reports.
    pub fn run(mut self, horizon_ns: SimTime) -> SimReport {
        while let Some((time, kind)) = self.events.pop() {
            if time > horizon_ns {
                break;
            }
            self.now = time;
            match kind {
                EventKind::SourceEmit { flow } => self.on_source_emit(flow),
                EventKind::Arrive { node, packet, via } => self.on_arrive(node, packet, via),
                EventKind::TransmitDone { channel, gen } => self.on_transmit_done(channel, gen),
                EventKind::LinkDown { link } => self.on_link_down(link),
                EventKind::LinkUp { link } => self.on_link_up(link),
                EventKind::FaultDetected { link } => self.on_fault_detected(link),
                EventKind::Resignal { pending } => self.on_resignal(pending),
                EventKind::HoldDownExpired { link } => self.on_hold_down_expired(link),
                EventKind::TeardownLsp { lsp } => self.on_teardown_lsp(lsp),
                EventKind::TelemetrySample => self.on_telemetry_sample(),
            }
        }
        self.finalize_telemetry();
        let queue_drops = self.channels.iter().map(|c| c.drops).sum();
        let link_drops = self.channels.iter().map(|c| c.fault_drops).sum();
        let loss_drops = self.channels.iter().map(|c| c.loss_drops).sum();
        let elapsed = self.now.max(1);
        let links = self
            .channels
            .iter()
            .map(|c| LinkUsage {
                from: c.from,
                to: c.to,
                transmitted: c.transmitted,
                drops: c.drops,
                fault_drops: c.fault_drops,
                loss_drops: c.loss_drops,
                utilization: c.busy_ns as f64 / elapsed as f64,
            })
            .collect();
        let telemetry = self.sink.into_report();
        SimReport {
            flows: self.flows.into_iter().zip(self.stats).collect(),
            routers: self
                .routers
                .iter()
                .map(|(&id, r)| (id, r.stats()))
                .collect(),
            queue_drops,
            link_drops,
            loss_drops,
            links,
            faults: self.records,
            elapsed_ns: self.now,
            telemetry,
        }
    }

    // ---- telemetry ---------------------------------------------------------

    /// Periodic sample point: read the channels, then re-arm only while
    /// other work is pending so sampling never keeps a finished run alive.
    fn on_telemetry_sample(&mut self) {
        self.sample_channels();
        if !self.events.is_empty() {
            self.events.schedule(
                self.now + self.instr.sample_interval_ns,
                EventKind::TelemetrySample,
            );
        }
    }

    /// Pushes one queue-depth and one utilization point per channel.
    fn sample_channels(&mut self) {
        if !S::ENABLED {
            return;
        }
        let dt = self.now.saturating_sub(self.instr.last_sample_ns);
        for (i, c) in self.channels.iter().enumerate() {
            let depth = c.queue.len() + usize::from(c.in_flight.is_some());
            self.sink
                .series_push(self.instr.chan_depth[i], self.now, depth as f64);
            if dt > 0 {
                let busy = c.busy_ns.saturating_sub(self.instr.chan_busy_prev[i]);
                let util = (busy as f64 / dt as f64).min(1.0);
                self.sink
                    .series_push(self.instr.chan_util[i], self.now, util);
                self.instr.chan_busy_prev[i] = c.busy_ns;
            }
        }
        self.instr.last_sample_ns = self.now;
    }

    /// End-of-run scrape: final channel sample, per-router pipeline and
    /// FSM counters, per-channel totals. Mirrors reading a hardware
    /// device's counter block after the experiment.
    fn finalize_telemetry(&mut self) {
        if !S::ENABLED {
            return;
        }
        self.sample_channels();
        let elapsed = self.now.max(1);
        let mut nodes: Vec<NodeId> = self.routers.keys().copied().collect();
        nodes.sort_unstable();
        for node in nodes {
            let r = &self.routers[&node];
            let stats = r.stats();
            for (name, value) in [
                ("packets_in", stats.packets_in),
                ("forwarded", stats.forwarded),
                ("delivered", stats.delivered),
                ("discarded", stats.discarded),
                ("flow_installs", stats.flow_installs),
                ("total_cycles", stats.total_cycles),
            ] {
                let id = self.sink.counter(&format!("node{node}.router.{name}"));
                self.sink.counter_add(id, value);
            }
            for (stage, cycles) in stats.stage_cycles.iter() {
                let id = self
                    .sink
                    .counter(&format!("node{node}.pipeline.{stage}_cycles"));
                self.sink.counter_add(id, cycles);
            }
            if let Some(perf) = self.routers[&node].core_perf() {
                let state_cycles = perf.state_cycles();
                let depth = perf.search_depth.clone();
                let hits = perf.search_hits;
                let misses = perf.search_misses;
                for (state, cycles) in state_cycles {
                    let id = self.sink.counter(&format!("node{node}.fsm.{state}"));
                    self.sink.counter_add(id, cycles);
                }
                self.sink
                    .import_histogram(&format!("node{node}.ib.search_depth"), &depth);
                let id = self.sink.counter(&format!("node{node}.ib.search_hits"));
                self.sink.counter_add(id, hits);
                let id = self.sink.counter(&format!("node{node}.ib.search_misses"));
                self.sink.counter_add(id, misses);
            }
        }
        for c in &self.channels {
            let prefix = format!("link.{}->{}", c.from, c.to);
            for (name, value) in [
                ("transmitted", c.transmitted),
                ("queue_drops", c.drops),
                ("fault_drops", c.fault_drops),
                ("loss_drops", c.loss_drops),
            ] {
                let id = self.sink.counter(&format!("{prefix}.{name}"));
                self.sink.counter_add(id, value);
            }
            let id = self.sink.gauge(&format!("{prefix}.mean_utilization"));
            self.sink.gauge_set(id, c.busy_ns as f64 / elapsed as f64);
        }
        self.sink.event(self.now, "telemetry_end", String::new());
    }

    // ---- fault machinery ---------------------------------------------------

    /// Indices of the two channels (one per direction) of `link`.
    fn channels_of(&self, link: LinkId) -> [usize; 2] {
        let mut found = [usize::MAX; 2];
        let mut n = 0;
        for (i, &l) in self.chan_link.iter().enumerate() {
            if l == link {
                found[n] = i;
                n += 1;
                if n == 2 {
                    break;
                }
            }
        }
        debug_assert_eq!(n, 2, "every link has exactly two channels");
        found
    }

    /// Marks `rec` restored now (first caller wins), closes its outage
    /// span and emits the restoration event.
    fn set_restored(&mut self, rec: usize) {
        if self.records[rec].restored_ns.is_some() {
            return;
        }
        self.records[rec].restored_ns = Some(self.now);
        if S::ENABLED {
            self.sink.event(
                self.now,
                "service_restored",
                format!("link{}", self.records[rec].link),
            );
            if let Some(span) = self.instr.fault_spans.remove(&rec) {
                self.sink.span_end(self.now, span);
            }
        }
    }

    /// Counts one packet lost to `link`'s outage against its flow and the
    /// link's current fault record.
    fn count_fault_loss(&mut self, link: LinkId, flow: FlowId) {
        self.stats[flow].on_discarded(DiscardCause::LinkDown);
        if let Some(&rec) = self.fault_of_link.get(&link) {
            self.records[rec].packets_lost += 1;
        }
    }

    /// Rebuilds every router's forwarding state from the (mutated)
    /// control plane. Statistics survive; stale flow-cache entries do
    /// not.
    fn reprogram_routers(&mut self) {
        for (&node, router) in self.routers.iter_mut() {
            router.reprogram(&self.cp.config_for(node));
        }
    }

    /// How long a retired LSP's transit state must outlive the
    /// switchover so packets already in its pipeline either deliver or
    /// hit the dead link (and are counted there): twice the path's
    /// propagation plus a queueing allowance.
    fn drain_grace_ns(&self, lsp: mpls_control::LspId) -> u64 {
        let Some(l) = self.cp.lsp(lsp) else {
            return 0;
        };
        let topo = self.cp.topology();
        let prop: u64 = topo
            .path_links(&l.path)
            .map(|links| {
                links
                    .iter()
                    .filter_map(|&k| topo.link(k).map(|s| s.delay_ns))
                    .sum()
            })
            .unwrap_or(0);
        2 * prop + 1_000_000
    }

    fn on_teardown_lsp(&mut self, lsp: mpls_control::LspId) {
        // The husk may already be gone (a later fault's standby sweep).
        if self.cp.lsp(lsp).is_some() {
            let _ = self.cp.teardown_lsp(lsp);
            self.reprogram_routers();
        }
    }

    fn on_link_down(&mut self, link: LinkId) {
        let [a, b] = self.channels_of(link);
        if !self.channels[a].up {
            return; // already down (overlapping schedules)
        }
        let rec = self.records.len();
        self.records.push(FaultRecord {
            link,
            down_ns: self.now,
            detected_ns: None,
            restored_ns: None,
            link_up_ns: None,
            packets_lost: 0,
            mode: self.policy.mode,
        });
        self.outstanding.push(0);
        self.fault_of_link.insert(link, rec);
        if S::ENABLED {
            self.sink
                .event(self.now, "link_down", format!("link{link}"));
            let span = self
                .sink
                .span_begin(self.now, &format!("outage.link{link}"));
            self.instr.fault_spans.insert(rec, span);
        }
        // Cut both directions: queued and in-flight packets are lost now.
        for chan in [a, b] {
            let lost = self.channels[chan].take_down();
            for p in lost {
                self.count_fault_loss(link, p.flow);
            }
        }
        if self.policy.mode != RecoveryMode::None {
            self.events.schedule(
                self.now + self.policy.detection_delay_ns,
                EventKind::FaultDetected { link },
            );
        }
    }

    fn on_link_up(&mut self, link: LinkId) {
        let [a, b] = self.channels_of(link);
        if self.channels[a].up {
            return; // already up
        }
        for chan in [a, b] {
            self.channels[chan].bring_up();
        }
        if S::ENABLED {
            self.sink.event(self.now, "link_up", format!("link{link}"));
        }
        let Some(&rec) = self.fault_of_link.get(&link) else {
            return;
        };
        self.records[rec].link_up_ns = Some(self.now);
        if self.records[rec].detected_ns.is_none() {
            // The control plane never reacted (flap shorter than the
            // detection delay, or no recovery configured): the stale
            // forwarding state simply works again.
            self.set_restored(rec);
        } else {
            // Detection fired, so the control plane has the link marked
            // failed; hold it down before reusing it.
            self.events.schedule(
                self.now + self.policy.hold_down_ns,
                EventKind::HoldDownExpired { link },
            );
        }
    }

    fn on_fault_detected(&mut self, link: LinkId) {
        let [a, _] = self.channels_of(link);
        if self.channels[a].up {
            return; // the flap cleared before anyone noticed
        }
        let Some(&rec) = self.fault_of_link.get(&link) else {
            return;
        };
        if self.records[rec].detected_ns.is_some() {
            return; // a probe from an earlier outage already reported it
        }
        self.records[rec].detected_ns = Some(self.now);
        if S::ENABLED {
            self.sink
                .event(self.now, "fault_detected", format!("link{link}"));
        }
        let affected = self.cp.fail_link(link);
        let mut changed = false;
        for id in affected {
            if self.cp.lsp_is_standby(id) {
                // A broken standby protects nothing; release it.
                let _ = self.cp.teardown_standby(id);
                changed = true;
                continue;
            }
            // Protection: fail over onto a pre-signaled disjoint backup —
            // service is back one detection delay after the cut. The
            // broken primary becomes a husk whose transit state drains
            // the pipeline, then is garbage-collected.
            if self.policy.mode == RecoveryMode::Protection {
                if let Some(backup) = self.cp.backup_of(id) {
                    if self.cp.lsp_is_intact(backup) {
                        let grace = self.drain_grace_ns(id);
                        self.cp.activate_backup(id);
                        self.events
                            .schedule(self.now + grace, EventKind::TeardownLsp { lsp: id });
                        changed = true;
                        continue;
                    }
                }
            }
            // Restoration (or protection without a viable backup):
            // re-signal around the failure; the first attempt completes
            // one signaling latency from now. The broken LSP keeps
            // steering — and losing — traffic until then
            // (make-before-break), so outage loss stays attributed to
            // the dead link.
            let request = self
                .cp
                .lsp(id)
                .expect("fail_link reported a live LSP")
                .request
                .clone();
            self.outstanding[rec] += 1;
            let idx = self.pending.len();
            self.pending.push(PendingResignal {
                record: rec,
                old_lsp: id,
                request,
                attempt: 0,
                done: false,
            });
            self.events.schedule(
                self.now + self.policy.resignal_delay_ns,
                EventKind::Resignal { pending: idx },
            );
        }
        if self.outstanding[rec] == 0 {
            // Nothing is waiting on re-signaling: every broken LSP failed
            // over (or none existed) — service restored at detection.
            self.set_restored(rec);
        }
        if changed {
            self.reprogram_routers();
        }
    }

    fn on_resignal(&mut self, pending: usize) {
        let (rec, old_lsp, attempt, request) = {
            let p = &self.pending[pending];
            if p.done {
                return;
            }
            (p.record, p.old_lsp, p.attempt, p.request.clone())
        };
        let mut request = request;
        request.explicit_route = None;
        match self.cp.establish_lsp(request) {
            Ok(_) => {
                // Break only after the make: the replacement is up; the
                // broken original retires to a husk (transit state keeps
                // draining the pipeline into the dead link, where loss is
                // counted) and is garbage-collected after the grace.
                let grace = self.drain_grace_ns(old_lsp);
                let _ = self.cp.retire_lsp(old_lsp);
                self.events
                    .schedule(self.now + grace, EventKind::TeardownLsp { lsp: old_lsp });
                self.pending[pending].done = true;
                self.outstanding[rec] -= 1;
                if self.outstanding[rec] == 0 {
                    self.set_restored(rec);
                }
                self.reprogram_routers();
            }
            Err(_) => {
                let next_attempt = attempt + 1;
                if next_attempt > self.policy.max_retries {
                    // Gave up: the record stays unrestored.
                    self.pending[pending].done = true;
                    return;
                }
                self.pending[pending].attempt = next_attempt;
                let backoff = self.policy.resignal_delay_ns.saturating_mul(
                    (self.policy.backoff_factor.max(1) as u64).saturating_pow(next_attempt),
                );
                self.events
                    .schedule(self.now + backoff, EventKind::Resignal { pending });
            }
        }
    }

    fn on_hold_down_expired(&mut self, link: LinkId) {
        let [a, _] = self.channels_of(link);
        if !self.channels[a].up {
            return; // failed again before the hold-down expired
        }
        self.cp.restore_link(link);
    }

    fn on_source_emit(&mut self, flow: FlowId) {
        let spec = self.flows[flow].clone();
        if self.now >= spec.stop_ns {
            return;
        }
        let seq = self.stats[flow].sent;
        self.stats[flow].on_sent();
        if S::ENABLED {
            self.sink.counter_add(self.instr.flow_sent[flow], 1);
        }
        let packet = SimPacket {
            inner: make_packet(&spec, seq),
            flow,
            seq,
            sent_ns: self.now,
        };
        // Edge policing: non-conforming packets never enter the network.
        let conforms = match &mut self.policers[flow] {
            Some(bucket) => bucket.conform(self.now, packet.wire_len()),
            None => true,
        };
        if S::ENABLED && self.policers[flow].is_some() {
            let verdict = if conforms {
                self.instr.policer_conform[flow]
            } else {
                self.instr.policer_exceed[flow]
            };
            self.sink.counter_add(verdict, 1);
        }
        if conforms {
            self.events.schedule(
                self.now,
                EventKind::Arrive {
                    node: spec.ingress,
                    packet,
                    via: None,
                },
            );
        } else {
            self.stats[flow].policer_dropped += 1;
        }
        let elapsed = self.now - spec.start_ns;
        let gap = spec.pattern.next_gap(elapsed, &mut self.rng);
        let next = self.now + gap;
        if next < spec.stop_ns {
            self.events.schedule(next, EventKind::SourceEmit { flow });
        }
    }

    fn on_arrive(&mut self, node: NodeId, packet: SimPacket, via: Option<(usize, u64)>) {
        // A packet that was on the wire when its link was cut never
        // arrives: the channel's incarnation has moved on.
        if let Some((chan, gen)) = via {
            if self.channels[chan].gen != gen {
                let link = self.chan_link[chan];
                self.channels[chan].fault_drops += 1;
                self.count_fault_loss(link, packet.flow);
                return;
            }
        }
        let SimPacket {
            inner,
            flow,
            seq,
            sent_ns,
        } = packet;
        let router = self
            .routers
            .get_mut(&node)
            .expect("packets only travel between known nodes");
        let out = router.handle(inner);
        let done = self.now + out.latency_ns;
        match out.action {
            Action::Forward {
                next,
                packet: inner,
            } => {
                let Some(&chan) = self.chan_index.get(&(node, next)) else {
                    // Misconfigured next hop onto a non-adjacent node.
                    self.stats[flow].on_discarded(DiscardCause::NoNextHop);
                    return;
                };
                let sp = SimPacket {
                    inner,
                    flow,
                    seq,
                    sent_ns,
                };
                if !self.channels[chan].up {
                    // Steered onto a dead link by stale forwarding state.
                    let link = self.chan_link[chan];
                    self.channels[chan].fault_drops += 1;
                    self.count_fault_loss(link, flow);
                    return;
                }
                self.offer_to_channel(chan, sp, done);
            }
            Action::Deliver(inner) => {
                let wire = inner.wire_len();
                let delay = done - sent_ns;
                if S::ENABLED {
                    self.sink.counter_add(self.instr.flow_delivered[flow], 1);
                    self.sink.hist_record(self.instr.flow_delay[flow], delay);
                    // Jitter differences against the previous delivery's
                    // delay, so read it before on_delivered overwrites it.
                    if let Some(prev) = self.stats[flow].last_delay_ns() {
                        self.sink
                            .hist_record(self.instr.flow_jitter[flow], prev.abs_diff(delay));
                    }
                }
                self.stats[flow].on_delivered(done, delay, wire);
            }
            Action::Discard(cause) => {
                self.stats[flow].on_discarded(cause);
            }
        }
    }

    fn offer_to_channel(&mut self, chan: usize, packet: SimPacket, at: SimTime) {
        let flow = packet.flow;
        let c = &mut self.channels[chan];
        match c.offer(packet) {
            OfferResult::Dropped => {
                self.stats[flow].queue_dropped += 1;
            }
            OfferResult::Queued => {}
            OfferResult::StartTransmit => {
                let p = c.queue.pop().expect("just offered");
                let ser = c.serialization_ns(p.wire_len());
                c.busy = true;
                c.busy_ns += ser;
                let gen = c.gen;
                c.in_flight = Some(p);
                self.events
                    .schedule(at + ser, EventKind::TransmitDone { channel: chan, gen });
            }
        }
    }

    fn on_transmit_done(&mut self, chan: usize, gen: u64) {
        let c = &mut self.channels[chan];
        if c.gen != gen {
            // The link was cut mid-serialization; take_down already
            // flushed and counted the packet.
            return;
        }
        let p = c.in_flight.take().expect("transmit completed with cargo");
        c.transmitted += 1;
        let to = c.to;
        let delay = c.delay_ns;
        let cur_gen = c.gen;
        let loss_prob = c.loss_prob;
        // Start the next queued packet, if any.
        if let Some(next) = c.queue.pop() {
            let ser = c.serialization_ns(next.wire_len());
            c.busy_ns += ser;
            c.in_flight = Some(next);
            self.events.schedule(
                self.now + ser,
                EventKind::TransmitDone {
                    channel: chan,
                    gen: cur_gen,
                },
            );
        } else {
            c.busy = false;
        }
        // Random wire loss claims the packet after serialization.
        if loss_prob > 0.0 && self.rng.random::<f64>() < loss_prob {
            self.channels[chan].loss_drops += 1;
            self.stats[p.flow].on_discarded(DiscardCause::LinkLoss);
            return;
        }
        self.events.schedule(
            self.now + delay,
            EventKind::Arrive {
                node: to,
                packet: p,
                via: Some((chan, cur_gen)),
            },
        );
    }
}

/// Runs the same scenario across many seeds in parallel (rayon) and
/// returns one report per seed, in seed order. Simulations are
/// independent, so this is an embarrassingly parallel ensemble — the
/// standard way to put confidence intervals on stochastic workloads.
pub fn run_ensemble(
    cp: &ControlPlane,
    kind: RouterKind,
    discipline: QueueDiscipline,
    flows: &[FlowSpec],
    horizon_ns: SimTime,
    seeds: &[u64],
) -> Vec<SimReport> {
    use rayon::prelude::*;
    seeds
        .par_iter()
        .map(|&seed| {
            let mut sim = Simulation::build(cp, kind, discipline, seed);
            for f in flows {
                sim.add_flow(f.clone());
            }
            sim.run(horizon_ns)
        })
        .collect()
}

/// Mean and sample standard deviation of a metric across ensemble
/// reports.
pub fn ensemble_stat<F: Fn(&SimReport) -> f64>(reports: &[SimReport], metric: F) -> (f64, f64) {
    let n = reports.len() as f64;
    if reports.is_empty() {
        return (0.0, 0.0);
    }
    let values: Vec<f64> = reports.iter().map(metric).collect();
    let mean = values.iter().sum::<f64>() / n;
    if reports.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Builds the unlabeled wire packet for one emission.
fn make_packet(spec: &FlowSpec, seq: u64) -> MplsPacket {
    let mut ip = Ipv4Header::new(
        spec.src_addr,
        spec.dst_addr,
        Ipv4Header::PROTO_UDP,
        64,
        spec.payload_bytes,
    );
    ip.tos = spec.precedence << 5;
    ip.ident = (seq & 0xffff) as u16;
    MplsPacket::ipv4(
        EthernetFrame {
            dst: MacAddr::from_node(spec.ingress, 0),
            src: MacAddr::from_node(u32::MAX, 0),
            ethertype: EtherType::Ipv4,
        },
        ip,
        bytes::Bytes::from(vec![0u8; spec.payload_bytes]),
    )
}

/// Helpers shared by this crate's unit tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    /// A minimal unlabeled packet with the given IP precedence.
    pub fn packet_with_cos(precedence: u8, seq: u64) -> SimPacket {
        let spec = FlowSpec {
            name: "t".into(),
            ingress: 0,
            src_addr: 1,
            dst_addr: 2,
            payload_bytes: 64,
            precedence,
            pattern: crate::traffic::TrafficPattern::Cbr { interval_ns: 1 },
            start_ns: 0,
            stop_ns: 1,
            police: None,
        };
        SimPacket {
            inner: make_packet(&spec, seq),
            flow: 0,
            seq,
            sent_ns: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpls_control::{LspRequest, Topology};
    use mpls_dataplane::ftn::Prefix;
    use mpls_packet::ipv4::parse_addr;

    fn plane_with_lsp() -> ControlPlane {
        let mut cp = ControlPlane::new(Topology::figure1_example());
        cp.establish_lsp(LspRequest::best_effort(
            0,
            1,
            Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
        ))
        .unwrap();
        cp
    }

    fn cbr_flow(name: &str, interval_ns: u64) -> FlowSpec {
        FlowSpec {
            name: name.into(),
            ingress: 0,
            src_addr: parse_addr("10.0.0.1").unwrap(),
            dst_addr: parse_addr("192.168.1.5").unwrap(),
            payload_bytes: 146,
            precedence: 5,
            pattern: crate::traffic::TrafficPattern::Cbr { interval_ns },
            start_ns: 0,
            stop_ns: 10_000_000, // 10 ms
            police: None,
        }
    }

    #[test]
    fn end_to_end_delivery_over_embedded_routers() {
        let cp = plane_with_lsp();
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            1,
        );
        sim.add_flow(cbr_flow("cbr", 1_000_000)); // 1 packet/ms
        let report = sim.run(1_000_000_000);
        let s = report.flow("cbr").unwrap();
        assert_eq!(s.sent, 10);
        assert_eq!(s.delivered, 10, "all packets arrive");
        assert_eq!(s.router_dropped, 0);
        assert_eq!(s.queue_dropped, 0);
        // Three links at 0.5 ms propagation each dominate the delay.
        assert!(s.mean_delay_ns() > 1_500_000.0);
        assert!(s.mean_delay_ns() < 1_700_000.0, "{}", s.mean_delay_ns());
        // Routers saw traffic.
        assert!(report.routers[&0].packets_in >= 10);
        assert_eq!(report.routers[&1].delivered, 10);
    }

    #[test]
    fn software_routers_deliver_identically() {
        let cp = plane_with_lsp();
        let run = |kind| {
            let mut sim = Simulation::build(&cp, kind, QueueDiscipline::Fifo { capacity: 64 }, 1);
            sim.add_flow(cbr_flow("cbr", 1_000_000));
            sim.run(1_000_000_000)
        };
        let hw = run(RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        });
        let sw = run(RouterKind::SoftwareHash {
            timing: SwTimingModel::default(),
        });
        assert_eq!(
            hw.flow("cbr").unwrap().delivered,
            sw.flow("cbr").unwrap().delivered
        );
    }

    #[test]
    fn congestion_drops_in_fifo_queue() {
        let cp = plane_with_lsp();
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 4 },
            7,
        );
        // 1500-byte payloads every 10 µs ≈ 1.2 Gb/s offered onto 1 Gb/s
        // links: the first-hop queue must overflow.
        let mut f = cbr_flow("hot", 10_000);
        f.payload_bytes = 1500;
        sim.add_flow(f);
        let report = sim.run(50_000_000);
        let s = report.flow("hot").unwrap();
        assert!(s.queue_dropped > 0, "expected tail drops");
        assert!(s.delivered > 0);
    }

    #[test]
    fn unroutable_flow_is_router_dropped() {
        let cp = plane_with_lsp();
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 4 },
            7,
        );
        let mut f = cbr_flow("lost", 1_000_000);
        f.dst_addr = parse_addr("172.31.0.1").unwrap(); // no LSP, no route
        sim.add_flow(f);
        let report = sim.run(1_000_000_000);
        let s = report.flow("lost").unwrap();
        assert_eq!(s.delivered, 0);
        assert_eq!(s.router_dropped, s.sent);
    }

    #[test]
    fn midrun_outage_is_detected_and_restored() {
        let cp = plane_with_lsp();
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            1,
        );
        let north = cp.topology().link_between(2, 3).unwrap();
        let mut plan = crate::fault::FaultPlan {
            policy: crate::fault::RestorationPolicy {
                detection_delay_ns: 500_000,
                resignal_delay_ns: 500_000,
                backoff_factor: 2,
                max_retries: 4,
                hold_down_ns: 1_000_000,
                mode: crate::fault::RecoveryMode::Restoration,
            },
            ..Default::default()
        };
        // Out from 3 ms to 6 ms of a 10 ms flow.
        plan.outage(north, 3_000_000, 6_000_000);
        sim.set_fault_plan(plan);
        sim.add_flow(cbr_flow("cbr", 100_000)); // 1 packet / 100 µs
        let report = sim.run(1_000_000_000);

        assert_eq!(report.faults.len(), 1);
        let rec = &report.faults[0];
        assert_eq!(rec.down_ns, 3_000_000);
        assert_eq!(rec.detected_ns, Some(3_500_000));
        assert_eq!(rec.link_up_ns, Some(6_000_000));
        // Restored by re-signal onto the south path, one signaling
        // latency after detection.
        assert_eq!(rec.restored_ns, Some(4_000_000));
        assert_eq!(rec.time_to_restore_ns(), Some(1_000_000));
        let s = report.flow("cbr").unwrap();
        assert!(s.link_dropped > 0, "packets died during the outage");
        assert_eq!(s.link_dropped, rec.packets_lost);
        assert_eq!(
            s.sent,
            s.delivered + s.link_dropped,
            "every loss is a counted link drop"
        );
        // Loss spans packets emitted during [down, restored) — 10 at
        // this rate — plus those already inside the 1.5 ms-deep north
        // pipeline behind the cut (another ~10). Everything emitted
        // after restoration delivers.
        assert_eq!(s.link_dropped, 20, "outage-window loss only");
    }

    #[test]
    fn random_loss_is_counted_per_cause() {
        let cp = plane_with_lsp();
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            5,
        );
        let north = cp.topology().link_between(2, 3).unwrap();
        let mut plan = crate::fault::FaultPlan::default();
        plan.random_loss(north, 0.5);
        sim.set_fault_plan(plan);
        sim.add_flow(cbr_flow("cbr", 10_000)); // 1000 packets over 10 ms
        let report = sim.run(1_000_000_000);
        let s = report.flow("cbr").unwrap();
        assert!(
            s.loss_dropped > 300,
            "~half of 1000 lost: {}",
            s.loss_dropped
        );
        assert!(s.loss_dropped < 700, "{}", s.loss_dropped);
        assert_eq!(s.sent, s.delivered + s.loss_dropped);
        assert_eq!(
            s.drop_causes.get(mpls_router::DiscardCause::LinkLoss),
            s.loss_dropped
        );
        assert_eq!(report.loss_drops, s.loss_dropped);
    }

    #[test]
    fn ensemble_matches_sequential_runs() {
        let cp = plane_with_lsp();
        let flows = vec![cbr_flow("cbr", 1_000_000)];
        let seeds = [1u64, 2, 3, 4];
        let reports = run_ensemble(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            &flows,
            1_000_000_000,
            &seeds,
        );
        assert_eq!(reports.len(), 4);
        for (i, &seed) in seeds.iter().enumerate() {
            let mut sim = Simulation::build(
                &cp,
                RouterKind::Embedded {
                    clock: ClockSpec::STRATIX_50MHZ,
                },
                QueueDiscipline::Fifo { capacity: 64 },
                seed,
            );
            sim.add_flow(flows[0].clone());
            let seq = sim.run(1_000_000_000);
            assert_eq!(
                reports[i].flow("cbr").unwrap().delay_sum_ns,
                seq.flow("cbr").unwrap().delay_sum_ns,
                "seed {seed} diverged between parallel and sequential runs"
            );
        }
        let (mean, std) = ensemble_stat(&reports, |r| r.flow("cbr").unwrap().mean_delay_ns());
        assert!(mean > 0.0);
        assert!(std >= 0.0);
    }

    #[test]
    fn ensemble_stat_math() {
        // Degenerate cases.
        let empty: Vec<SimReport> = vec![];
        assert_eq!(ensemble_stat(&empty, |_| 1.0), (0.0, 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let cp = plane_with_lsp();
        let run = |seed| {
            let mut sim = Simulation::build(
                &cp,
                RouterKind::Embedded {
                    clock: ClockSpec::STRATIX_50MHZ,
                },
                QueueDiscipline::Fifo { capacity: 16 },
                seed,
            );
            let mut f = cbr_flow("p", 0);
            f.pattern = crate::traffic::TrafficPattern::Poisson {
                mean_interval_ns: 500_000,
            };
            sim.add_flow(f);
            let r = sim.run(20_000_000);
            let s = r.flow("p").unwrap();
            (s.sent, s.delivered, s.delay_sum_ns)
        };
        assert_eq!(run(3), run(3));
        // Different seeds explore different arrival processes. Any two
        // particular seeds can tie by chance, so check across a range.
        let outcomes: std::collections::HashSet<_> = (0..8).map(run).collect();
        assert!(outcomes.len() > 1, "all seeds produced identical runs");
    }

    #[test]
    fn telemetry_run_matches_plain_run_and_reports_instruments() {
        let cp = plane_with_lsp();
        let late_flow = || {
            let mut late = cbr_flow("late", 1_000_000);
            late.police = Some(crate::policer::PolicerSpec {
                rate_bps: 1_000_000,
                burst_bytes: 300,
            });
            late
        };
        let plain = {
            let mut sim = Simulation::build(
                &cp,
                RouterKind::Embedded {
                    clock: ClockSpec::STRATIX_50MHZ,
                },
                QueueDiscipline::Fifo { capacity: 64 },
                1,
            );
            sim.add_flow(cbr_flow("cbr", 100_000));
            sim.add_flow(late_flow());
            sim.run(1_000_000_000)
        };
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            1,
        );
        sim.add_flow(cbr_flow("cbr", 100_000));
        let mut sim = sim.with_telemetry(TelemetryConfig {
            sample_interval_ns: 100_000,
            ..TelemetryConfig::default()
        });
        // Flows added after conversion are instrumented too.
        sim.add_flow(late_flow());
        let report = sim.run(1_000_000_000);

        // Instrumentation must not perturb the simulation itself.
        let p = plain.flow("cbr").unwrap();
        let t = report.flow("cbr").unwrap();
        assert_eq!(p.sent, t.sent);
        assert_eq!(p.delivered, t.delivered);
        assert_eq!(p.delay_sum_ns, t.delay_sum_ns);
        assert!(plain.telemetry.is_none());

        let tel = report.telemetry.as_ref().expect("telemetry enabled");
        // Flow counters mirror FlowStats.
        assert_eq!(tel.counter("flow.cbr.sent"), Some(t.sent as f64));
        assert_eq!(tel.counter("flow.cbr.delivered"), Some(t.delivered as f64));
        let late_stats = report.flow("late").unwrap();
        assert_eq!(
            tel.counter("flow.late.policer_exceed"),
            Some(late_stats.policer_dropped as f64)
        );
        // Delay histogram saw every delivery; jitter one fewer (first
        // delivery has no predecessor).
        let delay = tel.histogram("lsp.cbr.delay_ns").unwrap();
        assert_eq!(delay.total, t.delivered);
        assert_eq!(delay.sum, t.delay_sum_ns);
        let jitter = tel.histogram("lsp.cbr.jitter_ns").unwrap();
        assert_eq!(jitter.total, t.delivered - 1);
        // Queue-depth series sampled the run.
        let depth = tel.series("link.0->2.queue_depth").unwrap();
        assert!(!depth.points.is_empty(), "periodic samples were taken");
        assert!(depth.points.last().unwrap().0 <= report.elapsed_ns);
        // FSM cycle counters and pipeline stages were scraped from the
        // ingress LER (node 0 runs the embedded modifier).
        assert!(tel.counter("node0.router.total_cycles").unwrap() > 0.0);
        assert!(tel.counter("node0.pipeline.update_cycles").unwrap() > 0.0);
        let fsm_total: f64 = tel
            .counters
            .iter()
            .filter(|c| c.name.starts_with("node0.fsm.main."))
            .map(|c| c.value)
            .sum();
        assert_eq!(fsm_total, tel.counter("node0.router.total_cycles").unwrap());
        let search = tel.histogram("node0.ib.search_depth").unwrap();
        assert!(search.total > 0, "ingress searches were recorded");
        // Start/end trace events frame the run.
        assert_eq!(tel.events.first().unwrap().name, "telemetry_start");
        assert_eq!(tel.events.last().unwrap().name, "telemetry_end");
    }

    #[test]
    fn telemetry_traces_outage_lifecycle() {
        let cp = plane_with_lsp();
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            1,
        );
        let north = cp.topology().link_between(2, 3).unwrap();
        let mut plan = crate::fault::FaultPlan {
            policy: crate::fault::RestorationPolicy {
                detection_delay_ns: 500_000,
                resignal_delay_ns: 500_000,
                backoff_factor: 2,
                max_retries: 4,
                hold_down_ns: 1_000_000,
                mode: crate::fault::RecoveryMode::Restoration,
            },
            ..Default::default()
        };
        plan.outage(north, 3_000_000, 6_000_000);
        sim.set_fault_plan(plan);
        sim.add_flow(cbr_flow("cbr", 100_000));
        let report = sim
            .with_telemetry(TelemetryConfig::default())
            .run(1_000_000_000);

        let tel = report.telemetry.as_ref().unwrap();
        let at = |name: &str| {
            tel.events
                .iter()
                .find(|e| e.name == name)
                .map(|e| e.t_ns)
                .unwrap_or_else(|| panic!("missing event {name}"))
        };
        assert_eq!(at("link_down"), 3_000_000);
        assert_eq!(at("fault_detected"), 3_500_000);
        assert_eq!(at("service_restored"), 4_000_000);
        assert_eq!(at("link_up"), 6_000_000);
        // The outage span opens at the cut and closes at restoration.
        let span = tel
            .spans
            .iter()
            .find(|s| s.name.starts_with("outage.link"))
            .expect("outage span recorded");
        assert_eq!(span.start_ns, 3_000_000);
        assert_eq!(span.end_ns, Some(4_000_000));
    }
}
