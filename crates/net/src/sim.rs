//! The simulation facade: builds the network from a control plane,
//! collects flows and fault plans, and hands everything to the sharded
//! engine in [`crate::engine`].
//!
//! # Runtime faults
//!
//! The simulation owns a **clone** of the control plane it was built
//! from. Static failures (`ControlPlane::fail_link` *before*
//! [`Simulation::build`]) start the run with those links dark; to fail a
//! link *mid-run*, attach a [`FaultPlan`](crate::fault::FaultPlan) with
//! [`Simulation::set_fault_plan`]. The plan's link-down/up events run as
//! coordinator-level control events; the restoration policy then drives
//! the cloned control plane (detection → failover or re-signaling →
//! hold-down) and reprograms the routers in place.
//!
//! # Parallel execution
//!
//! [`Simulation::set_shards`] (or the `MPLS_SIM_SHARDS` environment
//! variable) splits the topology across shards that execute in
//! parallel between conservative epoch barriers. The report — and the
//! telemetry export — is byte-identical at any shard count; sharding is
//! purely a wall-clock optimization. See [`crate::engine`].

use crate::engine::{
    stream_seed, Engine, EngineKind, EngineParts, EngineStats, LdpRuntime, SrRuntime,
};
use crate::event::{ControlEvent, EventQueue, SimTime};
use crate::fault::{FaultKind, FaultPlan, FaultRecord, RestorationPolicy};
use crate::link::Channel;
use crate::node::{ForwarderNode, Node};
use crate::queue::QueueDiscipline;
use crate::stats::{FlowId, FlowStats};
use crate::traffic::FlowSpec;
use mpls_control::{ControlPlane, LinkId, NodeConfig, NodeId};
use mpls_ldp::{LdpConfig, LdpFabric};
use mpls_packet::{EtherType, EthernetFrame, Ipv4Header, MacAddr, MplsPacket};
pub use mpls_router::RouterKind;
use mpls_router::RouterStats;
use mpls_telemetry::{
    CounterId, HistId, NoopSink, Registry, SeriesId, SpanId, TelemetryConfig, TelemetryReport,
    TelemetrySink,
};
use std::collections::{BTreeMap, HashMap};

/// The interned, per-flow constant part of every packet a flow emits.
///
/// All of a flow's packets share one Ethernet header, one IPv4 header
/// (modulo the per-emission `ident`), and one payload buffer. Cloning
/// a full [`MplsPacket`] through queues, channels and the event wheel
/// would copy all of that per hop; instead each flow interns it *once*
/// here and packets in flight carry only the delta ([`SimPacket`]).
/// The wire packet is materialized exactly at the router boundary.
#[derive(Debug, Clone)]
pub(crate) struct FlowTemplate {
    eth: EthernetFrame,
    /// Header with `ident` zeroed; [`FlowTemplate::materialize`] stamps
    /// the per-emission value.
    ip: Ipv4Header,
    /// One shared zero-filled payload buffer — `Bytes` clones are
    /// reference bumps, so emission never allocates the payload again.
    payload: bytes::Bytes,
    /// IP precedence, cached for CoS classing of unlabeled packets.
    precedence: u8,
    /// Wire bytes with an empty label stack.
    base_wire: u32,
}

impl FlowTemplate {
    /// Interns the constant part of `spec`'s packets.
    pub fn of(spec: &FlowSpec) -> Self {
        let mut ip = Ipv4Header::new(
            spec.src_addr,
            spec.dst_addr,
            Ipv4Header::PROTO_UDP,
            64,
            spec.payload_bytes,
        );
        ip.tos = spec.precedence << 5;
        let eth = EthernetFrame {
            dst: MacAddr::from_node(spec.ingress, 0),
            src: MacAddr::from_node(u32::MAX, 0),
            ethertype: EtherType::Ipv4,
        };
        let base_wire = EthernetFrame::WIRE_LEN + Ipv4Header::WIRE_LEN + spec.payload_bytes;
        Self {
            eth,
            ip,
            payload: bytes::Bytes::from(vec![0u8; spec.payload_bytes]),
            precedence: ip.precedence(),
            base_wire: u32::try_from(base_wire).expect("payload fits u32"),
        }
    }

    /// Builds the wire packet for one router visit: template constants
    /// plus the in-flight delta (label stack, sequence number). Only
    /// header-sized copies and a payload refcount bump — no allocation.
    pub fn materialize(&self, stack: &mpls_packet::LabelStack, seq: u64) -> MplsPacket {
        let mut ip = self.ip;
        ip.ident = (seq & 0xffff) as u16;
        let mut p = MplsPacket::ipv4(self.eth, ip, self.payload.clone());
        p.splice_stack(stack.clone());
        p
    }

    /// Wraps a fresh, unlabeled emission as its in-flight delta.
    pub fn emit(&self, flow: FlowId, seq: u64, sent_ns: SimTime) -> SimPacket {
        SimPacket {
            flow,
            stack: mpls_packet::LabelStack::default(),
            seq,
            sent_ns,
            precedence: self.precedence,
            base_wire: self.base_wire,
            ecn: false,
        }
    }

    /// Re-wraps a router's output packet as its in-flight delta. Only
    /// the label stack can have changed — the routers rewrite stacks
    /// (and the EtherType derived from them) and nothing else. The
    /// congestion mark rides the delta across the router visit.
    pub fn delta_of(
        &self,
        packet: MplsPacket,
        flow: FlowId,
        seq: u64,
        sent_ns: SimTime,
        ecn: bool,
    ) -> SimPacket {
        debug_assert_eq!(
            usize::try_from(self.base_wire).unwrap() + packet.stack.wire_len(),
            packet.wire_len(),
            "router changed more than the label stack"
        );
        SimPacket {
            flow,
            stack: packet.stack,
            seq,
            sent_ns,
            precedence: self.precedence,
            base_wire: self.base_wire,
            ecn,
        }
    }
}

/// A packet in flight through the simulation: the per-packet *delta*
/// against its flow's interned [`FlowTemplate`].
///
/// Queues, channels and the event wheel hold this compact form; the
/// full [`MplsPacket`] exists only inside a router visit (see
/// [`FlowTemplate::materialize`]). The template's CoS and size
/// constants are denormalized in so hot-path classing and
/// serialization-time math never consult the arena.
#[derive(Debug, Clone)]
pub struct SimPacket {
    /// Owning flow — also the index of its interned template.
    pub flow: FlowId,
    /// The live label stack, the only part of the wire image that
    /// forwarding rewrites.
    pub stack: mpls_packet::LabelStack,
    /// Per-flow sequence number.
    pub seq: u64,
    /// Emission timestamp.
    pub sent_ns: SimTime,
    /// Template constant: IP precedence (unlabeled CoS class).
    pub precedence: u8,
    /// Template constant: wire bytes with an empty label stack.
    pub base_wire: u32,
    /// ECN-style congestion mark: set when the packet was offered to a
    /// link queue at or past its flow's mark threshold, echoed back to
    /// closed-loop senders in the delivery ack.
    pub ecn: bool,
}

impl SimPacket {
    /// The CoS class used by priority queues: the top label's CoS bits, or
    /// the IP precedence for unlabeled packets.
    pub fn cos_class(&self) -> u8 {
        match self.stack.top() {
            Some(e) => e.cos.value(),
            None => self.precedence,
        }
    }

    /// Bytes on the wire.
    pub fn wire_len(&self) -> usize {
        self.base_wire as usize + self.stack.wire_len()
    }
}

/// Per-channel usage in a report.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct LinkUsage {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Packets fully transmitted.
    pub transmitted: u64,
    /// Packets tail-dropped at this channel's queue.
    pub drops: u64,
    /// Packets lost because the channel was down.
    pub fault_drops: u64,
    /// Packets lost to random wire loss.
    pub loss_drops: u64,
    /// Fraction of the run the channel spent serializing (0.0-1.0).
    pub utilization: f64,
}

/// Which control plane drove the run. Serializes to the exact strings
/// the stringly-typed field used (`"centralized"` / `"ldp"`), so every
/// existing report, golden and comparison is byte-identical — but the
/// type makes casing drift impossible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControlMode {
    /// The omniscient centralized solver programs all FIBs before t=0.
    #[default]
    Centralized,
    /// In-band distributed label distribution (`--control ldp`).
    Ldp,
    /// Segment-routing source routes compiled before t=0
    /// (`--control sr`): no per-LSP signaling state in the network.
    Sr,
}

impl ControlMode {
    /// The wire/report spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ControlMode::Centralized => "centralized",
            ControlMode::Ldp => "ldp",
            ControlMode::Sr => "sr",
        }
    }
}

impl serde::Serialize for ControlMode {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl core::fmt::Display for ControlMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// String comparisons keep working (`report.control.mode == "ldp"`).
impl PartialEq<&str> for ControlMode {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<ControlMode> for &str {
    fn eq(&self, other: &ControlMode) -> bool {
        *self == other.as_str()
    }
}

/// How the run's control plane behaved. For the default centralized
/// solver the mode is all there is to say; on a `--control ldp`
/// run the protocol's global counters and convergence time fill in.
/// All values derive from coordinator-level events only, so the summary
/// is shard-invariant and safe to serialize.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ControlSummary {
    /// Which control plane drove the run.
    pub mode: ControlMode,
    /// When the fault-free bring-up last changed any FIB — the initial
    /// convergence time. `None` for centralized runs (bindings exist
    /// before t=0) and for ldp runs that never settled.
    pub convergence_ns: Option<u64>,
    /// Sessions that reached `Operational` (each end counts one).
    pub sessions_established: u64,
    /// Sessions torn down by hold-timer expiry.
    pub session_downs: u64,
    /// Control PDUs handed to the wire.
    pub pdus_sent: u64,
    /// Control PDUs that arrived.
    pub pdus_delivered: u64,
    /// Control PDUs lost to dark or failing channels.
    pub pdus_lost: u64,
    /// Label mappings discarded by path-vector loop detection.
    pub loop_rejections: u64,
    /// Session re-initialization retries (backed-off re-sends of
    /// `Initialization` after the first attempt went unanswered).
    pub session_retries: u64,
    /// Sessions reset because a PDU arrived out of sequence — the
    /// simulated equivalent of the TCP transport breaking.
    pub sequence_violations: u64,
    /// PDUs that failed to decode at the fabric layer (truncated or
    /// corrupted on the wire), counted instead of silently discarded.
    pub malformed_pdus: u64,
    /// When any FIB last changed (ns). 0 for centralized runs (all
    /// programming happens before t=0). The chaos harness's quiesce
    /// oracle checks this stops moving once the last fault heals.
    pub last_fib_change_ns: u64,
}

impl Default for ControlSummary {
    fn default() -> Self {
        Self {
            mode: ControlMode::Centralized,
            convergence_ns: None,
            sessions_established: 0,
            session_downs: 0,
            pdus_sent: 0,
            pdus_delivered: 0,
            pdus_lost: 0,
            loop_rejections: 0,
            session_retries: 0,
            sequence_violations: 0,
            malformed_pdus: 0,
            last_fib_change_ns: 0,
        }
    }
}

/// The outcome of a run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SimReport {
    /// Per-flow specs and stats, index-aligned with flow ids.
    pub flows: Vec<(FlowSpec, FlowStats)>,
    /// Per-router data-plane statistics, ordered by node id.
    pub routers: BTreeMap<NodeId, RouterStats>,
    /// Total packets dropped at link queues.
    pub queue_drops: u64,
    /// Total packets lost to dead links.
    pub link_drops: u64,
    /// Total packets lost to random wire loss.
    pub loss_drops: u64,
    /// Per-channel usage.
    pub links: Vec<LinkUsage>,
    /// One record per injected outage, in occurrence order.
    pub faults: Vec<FaultRecord>,
    /// Simulated duration actually executed.
    pub elapsed_ns: SimTime,
    /// Metrics snapshot, present when the run was telemetry-enabled
    /// (see [`Simulation::with_telemetry`]).
    pub telemetry: Option<TelemetryReport>,
    /// How the engine executed the run (shard count, epochs). Excluded
    /// from serialization: the simulation outcome is shard-invariant.
    #[serde(skip)]
    pub engine: EngineStats,
    /// Control-plane mode and (for ldp) protocol counters and
    /// convergence time. Shard-invariant, so it serializes.
    pub control: ControlSummary,
    /// The converged per-node forwarding configurations of an ldp run,
    /// for fixed-point comparison against the centralized solver.
    /// `None` on centralized runs; not serialized (`NodeConfig` is an
    /// in-memory programming artifact, not a report row).
    #[serde(skip)]
    pub fibs: Option<BTreeMap<NodeId, NodeConfig>>,
}

impl SimReport {
    /// Finds a flow's stats by name.
    pub fn flow(&self, name: &str) -> Option<&FlowStats> {
        self.flows
            .iter()
            .find(|(spec, _)| spec.name == name)
            .map(|(_, s)| s)
    }
}

/// Per-flow and per-channel instrument handles for a telemetry-enabled
/// run. All vectors are index-aligned with their subject tables; on a
/// [`NoopSink`] run they stay empty and every record site is skipped at
/// compile time via `S::ENABLED`.
#[derive(Default)]
pub(crate) struct SimInstruments {
    /// Queue-depth time series, one per channel.
    pub(crate) chan_depth: Vec<SeriesId>,
    /// Utilization time series, one per channel.
    pub(crate) chan_util: Vec<SeriesId>,
    /// `busy_ns` observed at the previous sample, for utilization deltas.
    pub(crate) chan_busy_prev: Vec<u64>,
    /// Timestamp of the previous sample point.
    pub(crate) last_sample_ns: SimTime,
    /// Sampling period.
    pub(crate) sample_interval_ns: u64,
    /// Per-LSP end-to-end delay histograms, one per flow.
    pub(crate) flow_delay: Vec<HistId>,
    /// Per-LSP inter-packet delay-variation histograms, one per flow.
    pub(crate) flow_jitter: Vec<HistId>,
    /// Packets emitted, one counter per flow.
    pub(crate) flow_sent: Vec<CounterId>,
    /// Packets delivered, one counter per flow.
    pub(crate) flow_delivered: Vec<CounterId>,
    /// Edge-policer conform verdicts, one counter per flow.
    pub(crate) policer_conform: Vec<CounterId>,
    /// Edge-policer exceed verdicts, one counter per flow.
    pub(crate) policer_exceed: Vec<CounterId>,
    /// Open outage spans keyed by fault-record index.
    pub(crate) fault_spans: HashMap<usize, SpanId>,
}

/// The discrete-event simulation.
///
/// The sink type parameter selects the telemetry mode: the default
/// [`NoopSink`] compiles every record site away; converting with
/// [`Simulation::with_telemetry`] swaps in a live [`Registry`] whose
/// snapshot lands in [`SimReport::telemetry`].
pub struct Simulation<S: TelemetrySink = NoopSink> {
    channels: Vec<Channel>,
    chan_index: HashMap<(NodeId, NodeId), usize>,
    /// `chan_link[i]` is the topology link channel `i` belongs to.
    chan_link: Vec<LinkId>,
    nodes: Vec<Box<dyn Node>>,
    /// The simulation's own control plane — a clone of the one it was
    /// built from, mutated by runtime faults.
    cp: ControlPlane,
    flows: Vec<FlowSpec>,
    policers: Vec<Option<crate::policer::TokenBucket>>,
    globals: EventQueue<ControlEvent>,
    seed: u64,
    policy: RestorationPolicy,
    sink: S,
    instr: SimInstruments,
    requested_shards: Option<usize>,
    requested_engine: Option<EngineKind>,
    shard_hints: HashMap<NodeId, usize>,
    /// Present when the run uses the distributed control plane.
    ldp: Option<LdpRuntime>,
    /// Present when the run uses the segment-routing control plane.
    sr: Option<SrRuntime>,
    /// Control-PDU chaos windows from the fault plan; handed to the LDP
    /// runtime at engine assembly (plan and `enable_ldp` may arrive in
    /// either order).
    pdu_chaos: Vec<crate::fault::PduChaos>,
}

impl Simulation {
    /// Builds a simulation over the control plane's topology: every node
    /// gets a router of `kind` programmed with its configuration, every
    /// link two channels with `discipline` queues. Links already marked
    /// failed on `cp` start dark — packets steered onto them count as
    /// link drops. The control plane is cloned: later mutations of `cp`
    /// do not reach this simulation (use
    /// [`Self::set_fault_plan`] for runtime faults).
    pub fn build(
        cp: &ControlPlane,
        kind: RouterKind,
        discipline: QueueDiscipline,
        seed: u64,
    ) -> Self {
        let topo = cp.topology();
        let mut channels = Vec::new();
        let mut chan_index = HashMap::new();
        let mut chan_link = Vec::new();
        for (link_id, spec) in topo.links().iter().enumerate() {
            for (from, to) in [(spec.a, spec.b), (spec.b, spec.a)] {
                let g = channels.len();
                chan_index.insert((from, to), g);
                let mut c = Channel::new(from, to, spec.bandwidth_bps, spec.delay_ns, discipline);
                // Statically failed links exist but start dark.
                c.up = !cp.link_is_failed(link_id as LinkId);
                // Wire loss draws from a per-channel stream: the outcome
                // depends only on (seed, channel), never on shard layout.
                c.seed_loss_rng(stream_seed(seed, 2, g as u64));
                channels.push(c);
                chan_link.push(link_id as LinkId);
            }
        }
        let nodes: Vec<Box<dyn Node>> = topo
            .nodes()
            .iter()
            .map(|node| {
                let cfg = cp.config_for(node.id);
                Box::new(ForwarderNode::new(kind.build(node.id, node.role, &cfg))) as Box<dyn Node>
            })
            .collect();
        Self {
            channels,
            chan_index,
            chan_link,
            nodes,
            cp: cp.clone(),
            flows: Vec::new(),
            policers: Vec::new(),
            globals: EventQueue::new(),
            seed,
            policy: RestorationPolicy::default(),
            sink: NoopSink,
            instr: SimInstruments::default(),
            requested_shards: None,
            requested_engine: None,
            shard_hints: HashMap::new(),
            ldp: None,
            sr: None,
            pdu_chaos: Vec::new(),
        }
    }

    /// Converts this simulation into a telemetry-enabled one: a live
    /// [`Registry`] replaces the no-op sink, per-channel queue-depth and
    /// utilization series plus per-flow counters and latency histograms
    /// are registered, every router's FSM cycle counters are switched
    /// on, and periodic sample events start at
    /// `config.sample_interval_ns`. Call after `build` (flows added
    /// before or after the conversion are both instrumented).
    pub fn with_telemetry(self, config: TelemetryConfig) -> Simulation<Registry> {
        let sample_interval_ns = config.sample_interval_ns.max(1);
        let mut sink = Registry::new(config);
        let mut instr = SimInstruments {
            sample_interval_ns,
            ..SimInstruments::default()
        };
        for c in &self.channels {
            let depth = sink.series(format!("link.{}->{}.queue_depth", c.from, c.to));
            let util = sink.series(format!("link.{}->{}.utilization", c.from, c.to));
            instr.chan_depth.push(depth);
            instr.chan_util.push(util);
            instr.chan_busy_prev.push(c.busy_ns);
        }
        let mut sim = Simulation {
            channels: self.channels,
            chan_index: self.chan_index,
            chan_link: self.chan_link,
            nodes: self.nodes,
            cp: self.cp,
            flows: self.flows,
            policers: self.policers,
            globals: self.globals,
            seed: self.seed,
            policy: self.policy,
            sink,
            instr,
            requested_shards: self.requested_shards,
            requested_engine: self.requested_engine,
            shard_hints: self.shard_hints,
            ldp: self.ldp,
            sr: self.sr,
            pdu_chaos: self.pdu_chaos,
        };
        for flow in 0..sim.flows.len() {
            sim.register_flow_instruments(flow);
        }
        for node in &mut sim.nodes {
            node.enable_perf();
        }
        sim.sink.event(0, "telemetry_start", String::new());
        sim.globals
            .schedule(sample_interval_ns, ControlEvent::TelemetrySample);
        sim
    }
}

impl<S: TelemetrySink> Simulation<S> {
    /// Requests a shard count for parallel execution. Overrides the
    /// `MPLS_SIM_SHARDS` environment variable; the engine may still use
    /// fewer shards (at most one per node, and partitionings without a
    /// usable lookahead fall back to one). The report is identical at
    /// any value — this only trades wall-clock time.
    pub fn set_shards(&mut self, shards: usize) {
        self.requested_shards = Some(shards);
    }

    /// Selects the shard coordination scheme ([`EngineKind`]). Overrides
    /// the `MPLS_SIM_ENGINE` environment variable (`"barrier"` or
    /// `"merge"`); the default is the epoch barrier. The report is
    /// identical either way — like the shard count, this only trades
    /// wall-clock time.
    pub fn set_engine(&mut self, kind: EngineKind) {
        self.requested_engine = Some(kind);
    }

    /// Pins `node` to shard `hint % shards` instead of its default
    /// block placement, letting scenarios co-locate chatty neighbors.
    pub fn shard_hint(&mut self, node: NodeId, hint: usize) {
        self.shard_hints.insert(node, hint);
    }

    /// Attaches a fault plan: its link events run as control events, its
    /// loss probabilities program the channels, and its policy governs
    /// detection and recovery.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.policy = plan.policy;
        // A distributed-control run recovers via the protocol no matter
        // what the plan's policy says (call order must not matter), and
        // likewise a segment-routing run recompiles source routes.
        if self.ldp.is_some() {
            self.policy.mode = crate::fault::RecoveryMode::Ldp;
        }
        if self.sr.is_some() {
            self.policy.mode = crate::fault::RecoveryMode::Sr;
        }
        for ev in &plan.events {
            match ev.kind {
                FaultKind::LinkDown(link) => self
                    .globals
                    .schedule(ev.at_ns, ControlEvent::LinkDown { link }),
                FaultKind::LinkUp(link) => self
                    .globals
                    .schedule(ev.at_ns, ControlEvent::LinkUp { link }),
                FaultKind::NodeDown(node) => self
                    .globals
                    .schedule(ev.at_ns, ControlEvent::NodeDown { node }),
                FaultKind::NodeUp(node) => self
                    .globals
                    .schedule(ev.at_ns, ControlEvent::NodeUp { node }),
                FaultKind::PartitionStart(link) => self
                    .globals
                    .schedule(ev.at_ns, ControlEvent::PartitionStart { link }),
                FaultKind::PartitionEnd(link) => self
                    .globals
                    .schedule(ev.at_ns, ControlEvent::PartitionEnd { link }),
            }
        }
        self.pdu_chaos.extend(plan.pdu_chaos.iter().copied());
        for loss in &plan.losses {
            for (i, c) in self.channels.iter_mut().enumerate() {
                if self.chan_link[i] == loss.link {
                    c.loss_prob = loss.probability;
                }
            }
        }
    }

    /// Switches the run to the distributed control plane: the routers'
    /// centrally solved forwarding state is wiped and an [`LdpFabric`]
    /// takes over. Every established LSP's FEC is re-expressed as an
    /// egress origination (plus every attached route), so the protocol
    /// must discover the same reachability by exchanging label mapping
    /// PDUs in-band over the simulated links. Traffic started at t=0
    /// therefore blackholes until sessions form and mappings arrive —
    /// that window *is* the convergence time the report measures.
    ///
    /// The restoration policy switches to [`RecoveryMode::Ldp`]: link
    /// faults are detected by session hold-timer expiry and repaired by
    /// withdraw/re-advertise waves, not by the centralized solver.
    pub fn enable_ldp(&mut self, cfg: LdpConfig) {
        let mut fabric = LdpFabric::new(self.cp.topology(), cfg);
        for id in self.cp.lsp_ids() {
            let req = &self.cp.lsp(id).expect("listed lsp exists").request;
            fabric.originate(req.egress, req.fec, req.cos);
        }
        for route in self.cp.attached_routes() {
            fabric.originate(route.node, route.prefix, mpls_packet::CosBits::BEST_EFFORT);
        }
        self.policy.mode = crate::fault::RecoveryMode::Ldp;
        // Strip the omniscient programming: nodes start with only their
        // locally originated state and learn the rest over the wire.
        for node in &mut self.nodes {
            let cfg = fabric.config_for(node.id());
            node.reprogram(&cfg);
        }
        fabric.take_dirty();
        self.globals.schedule(0, ControlEvent::LdpTick);
        self.ldp = Some(LdpRuntime::new(fabric, self.channels.len(), self.seed));
    }

    /// Switches the run to the segment-routing control plane: every
    /// established LSP's request becomes an SR steering policy (same
    /// ingress, egress, FEC prefix and CoS) compiled into a label-stack
    /// source route, and the routers are reprogrammed from the compiled
    /// fabric — SID bindings, ECMP fan-outs and ingress policies replace
    /// the per-LSP hop labels. Programming happens before t=0, like the
    /// centralized solver; what changes is the *state model* (one node
    /// SID per node instead of per-LSP transit state) and fault recovery
    /// (a coordinator-side recompile instead of re-signaling).
    ///
    /// The restoration policy switches to
    /// [`crate::fault::RecoveryMode::Sr`].
    pub fn enable_sr(&mut self, cfg: mpls_sr::SrConfig) {
        let mut fabric = mpls_sr::SrFabric::new(self.cp.topology().clone(), cfg);
        for id in self.cp.lsp_ids() {
            let req = &self.cp.lsp(id).expect("listed lsp exists").request;
            fabric.add_policy(mpls_sr::SrPolicySpec {
                ingress: req.ingress,
                egress: req.egress,
                prefix: req.fec,
                cos: req.cos,
            });
        }
        for route in self.cp.attached_routes() {
            fabric.add_local(route.node, route.prefix);
        }
        fabric.compile();
        self.policy.mode = crate::fault::RecoveryMode::Sr;
        // Replace the centrally solved per-LSP state with the compiled
        // SR fabric's.
        for node in &mut self.nodes {
            let cfg = fabric.config_for(node.id());
            node.reprogram(&cfg);
        }
        fabric.take_dirty();
        self.sr = Some(SrRuntime::new(fabric));
    }

    /// The compiled SR fabric, when [`Self::enable_sr`] has run.
    pub fn sr_fabric(&self) -> Option<&mpls_sr::SrFabric> {
        self.sr.as_ref().map(|rt| &rt.fabric)
    }

    /// Registers a flow; its first packet is emitted at `spec.start_ns`.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        let id = self.flows.len();
        self.policers
            .push(spec.police.map(crate::policer::TokenBucket::new));
        self.flows.push(spec);
        self.register_flow_instruments(id);
        id
    }

    /// Registers `flow`'s counters and latency histograms. No-op (and
    /// fully compiled away) on a [`NoopSink`] run.
    fn register_flow_instruments(&mut self, flow: FlowId) {
        if !S::ENABLED {
            return;
        }
        let name = self.flows[flow].name.clone();
        self.instr
            .flow_sent
            .push(self.sink.counter(&format!("flow.{name}.sent")));
        self.instr
            .flow_delivered
            .push(self.sink.counter(&format!("flow.{name}.delivered")));
        self.instr
            .policer_conform
            .push(self.sink.counter(&format!("flow.{name}.policer_conform")));
        self.instr
            .policer_exceed
            .push(self.sink.counter(&format!("flow.{name}.policer_exceed")));
        // 1 µs .. ~1 s in octaves: covers FPGA pipelines through congested
        // software paths.
        let bounds: Vec<u64> = (0..21).map(|i| 1000u64 << i).collect();
        self.instr.flow_delay.push(
            self.sink
                .histogram(&format!("lsp.{name}.delay_ns"), bounds.clone()),
        );
        self.instr.flow_jitter.push(
            self.sink
                .histogram(&format!("lsp.{name}.jitter_ns"), bounds),
        );
    }

    /// Runs until the event queues drain or `horizon_ns` passes, then
    /// reports. The shard count resolves as [`Self::set_shards`], else
    /// the `MPLS_SIM_SHARDS` environment variable, else 1; the engine
    /// kind as [`Self::set_engine`], else `MPLS_SIM_ENGINE`, else the
    /// epoch barrier.
    pub fn run(self, horizon_ns: SimTime) -> SimReport {
        let shards = self
            .requested_shards
            .or_else(|| {
                std::env::var("MPLS_SIM_SHARDS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(1);
        let engine = self
            .requested_engine
            .or_else(|| {
                std::env::var("MPLS_SIM_ENGINE")
                    .ok()
                    .and_then(|v| EngineKind::parse(&v))
            })
            .unwrap_or_default();
        Engine::new(EngineParts {
            channels: self.channels,
            chan_index: self.chan_index,
            chan_link: self.chan_link,
            nodes: self.nodes,
            cp: self.cp,
            flows: self.flows,
            policers: self.policers,
            globals: self.globals,
            seed: self.seed,
            policy: self.policy,
            sink: self.sink,
            instr: self.instr,
            shards,
            hints: self.shard_hints,
            engine,
            ldp: self.ldp,
            sr: self.sr,
            pdu_chaos: self.pdu_chaos,
        })
        .run(horizon_ns)
    }
}

/// Runs the same scenario across many seeds in parallel (rayon) and
/// returns one report per seed, in seed order. Simulations are
/// independent, so this is an embarrassingly parallel ensemble — the
/// standard way to put confidence intervals on stochastic workloads.
pub fn run_ensemble(
    cp: &ControlPlane,
    kind: RouterKind,
    discipline: QueueDiscipline,
    flows: &[FlowSpec],
    horizon_ns: SimTime,
    seeds: &[u64],
) -> Vec<SimReport> {
    use rayon::prelude::*;
    seeds
        .par_iter()
        .map(|&seed| {
            let mut sim = Simulation::build(cp, kind, discipline, seed);
            for f in flows {
                sim.add_flow(f.clone());
            }
            sim.run(horizon_ns)
        })
        .collect()
}

/// Mean and sample standard deviation of a metric across ensemble
/// reports.
pub fn ensemble_stat<F: Fn(&SimReport) -> f64>(reports: &[SimReport], metric: F) -> (f64, f64) {
    let n = reports.len() as f64;
    if reports.is_empty() {
        return (0.0, 0.0);
    }
    let values: Vec<f64> = reports.iter().map(metric).collect();
    let mean = values.iter().sum::<f64>() / n;
    if reports.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Helpers shared by this crate's unit tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    /// A minimal unlabeled packet with the given IP precedence.
    pub fn packet_with_cos(precedence: u8, seq: u64) -> SimPacket {
        let spec = FlowSpec {
            name: "t".into(),
            ingress: 0,
            src_addr: 1,
            dst_addr: 2,
            payload_bytes: 64,
            precedence,
            pattern: crate::traffic::TrafficPattern::Cbr { interval_ns: 1 },
            start_ns: 0,
            stop_ns: 1,
            police: None,
        };
        FlowTemplate::of(&spec).emit(0, seq, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpls_control::{LspRequest, Topology};
    use mpls_core::ClockSpec;
    use mpls_dataplane::ftn::Prefix;
    use mpls_packet::ipv4::parse_addr;
    use mpls_router::SwTimingModel;

    fn plane_with_lsp() -> ControlPlane {
        let mut cp = ControlPlane::new(Topology::figure1_example());
        cp.establish_lsp(LspRequest::best_effort(
            0,
            1,
            Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
        ))
        .unwrap();
        cp
    }

    fn cbr_flow(name: &str, interval_ns: u64) -> FlowSpec {
        FlowSpec {
            name: name.into(),
            ingress: 0,
            src_addr: parse_addr("10.0.0.1").unwrap(),
            dst_addr: parse_addr("192.168.1.5").unwrap(),
            payload_bytes: 146,
            precedence: 5,
            pattern: crate::traffic::TrafficPattern::Cbr { interval_ns },
            start_ns: 0,
            stop_ns: 10_000_000, // 10 ms
            police: None,
        }
    }

    #[test]
    fn end_to_end_delivery_over_embedded_routers() {
        let cp = plane_with_lsp();
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            1,
        );
        sim.add_flow(cbr_flow("cbr", 1_000_000)); // 1 packet/ms
        let report = sim.run(1_000_000_000);
        let s = report.flow("cbr").unwrap();
        assert_eq!(s.sent, 10);
        assert_eq!(s.delivered, 10, "all packets arrive");
        assert_eq!(s.router_dropped, 0);
        assert_eq!(s.queue_dropped, 0);
        // Three links at 0.5 ms propagation each dominate the delay.
        assert!(s.mean_delay_ns() > 1_500_000.0);
        assert!(s.mean_delay_ns() < 1_700_000.0, "{}", s.mean_delay_ns());
        // Routers saw traffic.
        assert!(report.routers[&0].packets_in >= 10);
        assert_eq!(report.routers[&1].delivered, 10);
        // A default run is sequential.
        assert_eq!(report.engine.shards, 1);
        assert!(report.engine.total_events() > 0);
    }

    #[test]
    fn software_routers_deliver_identically() {
        let cp = plane_with_lsp();
        let run = |kind| {
            let mut sim = Simulation::build(&cp, kind, QueueDiscipline::Fifo { capacity: 64 }, 1);
            sim.add_flow(cbr_flow("cbr", 1_000_000));
            sim.run(1_000_000_000)
        };
        let hw = run(RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        });
        let sw = run(RouterKind::SoftwareHash {
            timing: SwTimingModel::default(),
        });
        assert_eq!(
            hw.flow("cbr").unwrap().delivered,
            sw.flow("cbr").unwrap().delivered
        );
    }

    #[test]
    fn congestion_drops_in_fifo_queue() {
        let cp = plane_with_lsp();
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 4 },
            7,
        );
        // 1500-byte payloads every 10 µs ≈ 1.2 Gb/s offered onto 1 Gb/s
        // links: the first-hop queue must overflow.
        let mut f = cbr_flow("hot", 10_000);
        f.payload_bytes = 1500;
        sim.add_flow(f);
        let report = sim.run(50_000_000);
        let s = report.flow("hot").unwrap();
        assert!(s.queue_dropped > 0, "expected tail drops");
        assert!(s.delivered > 0);
    }

    #[test]
    fn unroutable_flow_is_router_dropped() {
        let cp = plane_with_lsp();
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 4 },
            7,
        );
        let mut f = cbr_flow("lost", 1_000_000);
        f.dst_addr = parse_addr("172.31.0.1").unwrap(); // no LSP, no route
        sim.add_flow(f);
        let report = sim.run(1_000_000_000);
        let s = report.flow("lost").unwrap();
        assert_eq!(s.delivered, 0);
        assert_eq!(s.router_dropped, s.sent);
    }

    #[test]
    fn midrun_outage_is_detected_and_restored() {
        let cp = plane_with_lsp();
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            1,
        );
        let north = cp.topology().link_between(2, 3).unwrap();
        let mut plan = crate::fault::FaultPlan {
            policy: crate::fault::RestorationPolicy {
                detection_delay_ns: 500_000,
                resignal_delay_ns: 500_000,
                backoff_factor: 2,
                max_retries: 4,
                hold_down_ns: 1_000_000,
                mode: crate::fault::RecoveryMode::Restoration,
            },
            ..Default::default()
        };
        // Out from 3 ms to 6 ms of a 10 ms flow.
        plan.outage(north, 3_000_000, 6_000_000);
        sim.set_fault_plan(plan);
        sim.add_flow(cbr_flow("cbr", 100_000)); // 1 packet / 100 µs
        let report = sim.run(1_000_000_000);

        assert_eq!(report.faults.len(), 1);
        let rec = &report.faults[0];
        assert_eq!(rec.down_ns, 3_000_000);
        assert_eq!(rec.detected_ns, Some(3_500_000));
        assert_eq!(rec.link_up_ns, Some(6_000_000));
        // Restored by re-signal onto the south path, one signaling
        // latency after detection.
        assert_eq!(rec.restored_ns, Some(4_000_000));
        assert_eq!(rec.time_to_restore_ns(), Some(1_000_000));
        let s = report.flow("cbr").unwrap();
        assert!(s.link_dropped > 0, "packets died during the outage");
        assert_eq!(s.link_dropped, rec.packets_lost);
        assert_eq!(
            s.sent,
            s.delivered + s.link_dropped,
            "every loss is a counted link drop"
        );
        // Loss spans packets emitted during [down, restored) — 10 at
        // this rate — plus those already inside the 1.5 ms-deep north
        // pipeline behind the cut (another ~10). Everything emitted
        // after restoration delivers.
        assert_eq!(s.link_dropped, 20, "outage-window loss only");
    }

    #[test]
    fn random_loss_is_counted_per_cause() {
        let cp = plane_with_lsp();
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            5,
        );
        let north = cp.topology().link_between(2, 3).unwrap();
        let mut plan = crate::fault::FaultPlan::default();
        plan.random_loss(north, 0.5);
        sim.set_fault_plan(plan);
        sim.add_flow(cbr_flow("cbr", 10_000)); // 1000 packets over 10 ms
        let report = sim.run(1_000_000_000);
        let s = report.flow("cbr").unwrap();
        assert!(
            s.loss_dropped > 300,
            "~half of 1000 lost: {}",
            s.loss_dropped
        );
        assert!(s.loss_dropped < 700, "{}", s.loss_dropped);
        assert_eq!(s.sent, s.delivered + s.loss_dropped);
        assert_eq!(
            s.drop_causes.get(mpls_router::DiscardCause::LinkLoss),
            s.loss_dropped
        );
        assert_eq!(report.loss_drops, s.loss_dropped);
    }

    #[test]
    fn ensemble_matches_sequential_runs() {
        let cp = plane_with_lsp();
        let flows = vec![cbr_flow("cbr", 1_000_000)];
        let seeds = [1u64, 2, 3, 4];
        let reports = run_ensemble(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            &flows,
            1_000_000_000,
            &seeds,
        );
        assert_eq!(reports.len(), 4);
        for (i, &seed) in seeds.iter().enumerate() {
            let mut sim = Simulation::build(
                &cp,
                RouterKind::Embedded {
                    clock: ClockSpec::STRATIX_50MHZ,
                },
                QueueDiscipline::Fifo { capacity: 64 },
                seed,
            );
            sim.add_flow(flows[0].clone());
            let seq = sim.run(1_000_000_000);
            assert_eq!(
                reports[i].flow("cbr").unwrap().delay_sum_ns,
                seq.flow("cbr").unwrap().delay_sum_ns,
                "seed {seed} diverged between parallel and sequential runs"
            );
        }
        let (mean, std) = ensemble_stat(&reports, |r| r.flow("cbr").unwrap().mean_delay_ns());
        assert!(mean > 0.0);
        assert!(std >= 0.0);
    }

    #[test]
    fn ensemble_stat_math() {
        // Degenerate cases.
        let empty: Vec<SimReport> = vec![];
        assert_eq!(ensemble_stat(&empty, |_| 1.0), (0.0, 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let cp = plane_with_lsp();
        let run = |seed| {
            let mut sim = Simulation::build(
                &cp,
                RouterKind::Embedded {
                    clock: ClockSpec::STRATIX_50MHZ,
                },
                QueueDiscipline::Fifo { capacity: 16 },
                seed,
            );
            let mut f = cbr_flow("p", 0);
            f.pattern = crate::traffic::TrafficPattern::Poisson {
                mean_interval_ns: 500_000,
            };
            sim.add_flow(f);
            let r = sim.run(20_000_000);
            let s = r.flow("p").unwrap();
            (s.sent, s.delivered, s.delay_sum_ns)
        };
        assert_eq!(run(3), run(3));
        // Different seeds explore different arrival processes. Any two
        // particular seeds can tie by chance, so check across a range.
        let outcomes: std::collections::HashSet<_> = (0..8).map(run).collect();
        assert!(outcomes.len() > 1, "all seeds produced identical runs");
    }

    #[test]
    fn sharded_run_is_byte_identical_to_sequential() {
        // A hostile mix for parallel determinism: stochastic arrivals,
        // an outage with re-signaling, random wire loss and telemetry,
        // all crossing shard boundaries.
        let cp = plane_with_lsp();
        let run = |shards: usize| {
            let mut sim = Simulation::build(
                &cp,
                RouterKind::Embedded {
                    clock: ClockSpec::STRATIX_50MHZ,
                },
                QueueDiscipline::Fifo { capacity: 16 },
                42,
            );
            sim.set_shards(shards);
            let north = cp.topology().link_between(2, 3).unwrap();
            let mut plan = crate::fault::FaultPlan {
                policy: crate::fault::RestorationPolicy {
                    detection_delay_ns: 500_000,
                    resignal_delay_ns: 500_000,
                    backoff_factor: 2,
                    max_retries: 4,
                    hold_down_ns: 1_000_000,
                    mode: crate::fault::RecoveryMode::Restoration,
                },
                ..Default::default()
            };
            plan.outage(north, 3_000_000, 6_000_000);
            plan.random_loss(north, 0.05);
            sim.set_fault_plan(plan);
            sim.add_flow(cbr_flow("cbr", 100_000));
            let mut pois = cbr_flow("pois", 0);
            pois.pattern = crate::traffic::TrafficPattern::Poisson {
                mean_interval_ns: 250_000,
            };
            sim.add_flow(pois);
            let sim = sim.with_telemetry(TelemetryConfig {
                sample_interval_ns: 100_000,
                ..TelemetryConfig::default()
            });
            let report = sim.run(1_000_000_000);
            (
                report.engine.shards,
                serde_json::to_string(&report).expect("report serializes"),
            )
        };
        let (n1, seq) = run(1);
        assert_eq!(n1, 1);
        for shards in [2, 4] {
            let (n, par) = run(shards);
            assert!(n > 1, "figure-1 topology supports {shards} shards");
            assert_eq!(seq, par, "{shards}-shard run diverged from sequential");
        }
    }

    #[test]
    fn telemetry_run_matches_plain_run_and_reports_instruments() {
        let cp = plane_with_lsp();
        let late_flow = || {
            let mut late = cbr_flow("late", 1_000_000);
            late.police = Some(crate::policer::PolicerSpec {
                rate_bps: 1_000_000,
                burst_bytes: 300,
            });
            late
        };
        let plain = {
            let mut sim = Simulation::build(
                &cp,
                RouterKind::Embedded {
                    clock: ClockSpec::STRATIX_50MHZ,
                },
                QueueDiscipline::Fifo { capacity: 64 },
                1,
            );
            sim.add_flow(cbr_flow("cbr", 100_000));
            sim.add_flow(late_flow());
            sim.run(1_000_000_000)
        };
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            1,
        );
        sim.add_flow(cbr_flow("cbr", 100_000));
        let mut sim = sim.with_telemetry(TelemetryConfig {
            sample_interval_ns: 100_000,
            ..TelemetryConfig::default()
        });
        // Flows added after conversion are instrumented too.
        sim.add_flow(late_flow());
        let report = sim.run(1_000_000_000);

        // Instrumentation must not perturb the simulation itself.
        let p = plain.flow("cbr").unwrap();
        let t = report.flow("cbr").unwrap();
        assert_eq!(p.sent, t.sent);
        assert_eq!(p.delivered, t.delivered);
        assert_eq!(p.delay_sum_ns, t.delay_sum_ns);
        assert!(plain.telemetry.is_none());

        let tel = report.telemetry.as_ref().expect("telemetry enabled");
        // Flow counters mirror FlowStats.
        assert_eq!(tel.counter("flow.cbr.sent"), Some(t.sent as f64));
        assert_eq!(tel.counter("flow.cbr.delivered"), Some(t.delivered as f64));
        let late_stats = report.flow("late").unwrap();
        assert_eq!(
            tel.counter("flow.late.policer_exceed"),
            Some(late_stats.policer_dropped as f64)
        );
        // Delay histogram saw every delivery; jitter one fewer (first
        // delivery has no predecessor).
        let delay = tel.histogram("lsp.cbr.delay_ns").unwrap();
        assert_eq!(delay.total, t.delivered);
        assert_eq!(delay.sum, t.delay_sum_ns);
        let jitter = tel.histogram("lsp.cbr.jitter_ns").unwrap();
        assert_eq!(jitter.total, t.delivered - 1);
        // Queue-depth series sampled the run.
        let depth = tel.series("link.0->2.queue_depth").unwrap();
        assert!(!depth.points.is_empty(), "periodic samples were taken");
        assert!(depth.points.last().unwrap().0 <= report.elapsed_ns);
        // FSM cycle counters and pipeline stages were scraped from the
        // ingress LER (node 0 runs the embedded modifier).
        assert!(tel.counter("node0.router.total_cycles").unwrap() > 0.0);
        assert!(tel.counter("node0.pipeline.update_cycles").unwrap() > 0.0);
        let fsm_total: f64 = tel
            .counters
            .iter()
            .filter(|c| c.name.starts_with("node0.fsm.main."))
            .map(|c| c.value)
            .sum();
        assert_eq!(fsm_total, tel.counter("node0.router.total_cycles").unwrap());
        let search = tel.histogram("node0.ib.search_depth").unwrap();
        assert!(search.total > 0, "ingress searches were recorded");
        // Start/end trace events frame the run.
        assert_eq!(tel.events.first().unwrap().name, "telemetry_start");
        assert_eq!(tel.events.last().unwrap().name, "telemetry_end");
    }

    #[test]
    fn ldp_control_converges_then_delivers() {
        let cp = plane_with_lsp();
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            1,
        );
        sim.enable_ldp(mpls_ldp::LdpConfig::default());
        // Start well after the protocol should have converged.
        let mut f = cbr_flow("cbr", 100_000);
        f.start_ns = 10_000_000;
        f.stop_ns = 20_000_000;
        sim.add_flow(f);
        let report = sim.run(30_000_000);

        assert_eq!(report.control.mode, "ldp");
        let conv = report.control.convergence_ns.expect("protocol converged");
        assert!(conv < 10_000_000, "converged late: {conv} ns");
        // Three bidirectional adjacencies on the north path alone; every
        // session counts both ends.
        assert!(report.control.sessions_established >= 6);
        assert_eq!(report.control.session_downs, 0);
        assert!(report.control.pdus_delivered > 0);
        let s = report.flow("cbr").unwrap();
        assert_eq!(s.delivered, s.sent, "post-convergence traffic delivers");
        let fibs = report.fibs.as_ref().expect("ldp run exposes its FIBs");
        assert_eq!(fibs.len(), cp.topology().nodes().len());
    }

    #[test]
    fn ldp_reconverges_around_a_link_fault() {
        let cp = plane_with_lsp();
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            1,
        );
        sim.enable_ldp(mpls_ldp::LdpConfig::default());
        // Cut the north path for good: the withdraw cascade must flip
        // traffic onto the south path with no centralized help. (The
        // plan's policy mode is deliberately not Ldp — set_fault_plan
        // must override it for a distributed run.)
        let north = cp.topology().link_between(2, 3).unwrap();
        let mut plan = crate::fault::FaultPlan::default();
        plan.link_down(20_000_000, north);
        sim.set_fault_plan(plan);
        let mut f = cbr_flow("cbr", 100_000);
        f.start_ns = 10_000_000;
        f.stop_ns = 50_000_000;
        sim.add_flow(f);
        let report = sim.run(80_000_000);

        assert_eq!(report.faults.len(), 1);
        let rec = &report.faults[0];
        assert_eq!(rec.mode, crate::fault::RecoveryMode::Ldp);
        assert_eq!(rec.down_ns, 20_000_000);
        let det = rec.detected_ns.expect("hold-timer expiry detected the cut");
        let hold = mpls_ldp::LdpConfig::default().hold_ns;
        assert!(det > 20_000_000, "detection follows the failure");
        assert!(
            det <= 20_000_000 + 2 * hold,
            "detection within two hold times: {det}"
        );
        let restored = rec.restored_ns.expect("withdraw wave reconverged");
        assert!(restored >= det);
        assert!(restored < 50_000_000, "reconverged while traffic ran");
        assert!(report.control.session_downs >= 2, "both ends expired");

        let s = report.flow("cbr").unwrap();
        assert!(s.link_dropped > 0, "stale FIB blackholed into the cut");
        assert_eq!(
            s.sent,
            s.delivered + s.link_dropped + s.router_dropped,
            "every loss is accounted to a cause"
        );
        // Traffic emitted after restoration rides the south path.
        let south_leg = report
            .links
            .iter()
            .find(|l| l.from == 4 && l.to == 5)
            .unwrap();
        assert!(south_leg.transmitted > 0, "south path carries traffic");
    }

    #[test]
    fn ldp_sharded_run_is_byte_identical_to_sequential() {
        let cp = plane_with_lsp();
        let run = |shards: usize| {
            let mut sim = Simulation::build(
                &cp,
                RouterKind::Embedded {
                    clock: ClockSpec::STRATIX_50MHZ,
                },
                QueueDiscipline::Fifo { capacity: 16 },
                42,
            );
            sim.set_shards(shards);
            sim.enable_ldp(mpls_ldp::LdpConfig::default());
            let north = cp.topology().link_between(2, 3).unwrap();
            let mut plan = crate::fault::FaultPlan::default();
            plan.outage(north, 20_000_000, 35_000_000);
            plan.random_loss(north, 0.05);
            sim.set_fault_plan(plan);
            let mut f = cbr_flow("cbr", 100_000);
            f.start_ns = 10_000_000;
            f.stop_ns = 40_000_000;
            sim.add_flow(f);
            let mut pois = cbr_flow("pois", 0);
            pois.pattern = crate::traffic::TrafficPattern::Poisson {
                mean_interval_ns: 250_000,
            };
            pois.start_ns = 10_000_000;
            pois.stop_ns = 40_000_000;
            sim.add_flow(pois);
            let sim = sim.with_telemetry(TelemetryConfig {
                sample_interval_ns: 100_000,
                ..TelemetryConfig::default()
            });
            let report = sim.run(60_000_000);
            (
                report.engine.shards,
                serde_json::to_string(&report).expect("report serializes"),
            )
        };
        let (n1, seq) = run(1);
        assert_eq!(n1, 1);
        for shards in [2, 4] {
            let (n, par) = run(shards);
            assert!(n > 1, "figure-1 topology supports {shards} shards");
            assert_eq!(seq, par, "{shards}-shard ldp run diverged");
        }
    }

    #[test]
    fn telemetry_traces_outage_lifecycle() {
        let cp = plane_with_lsp();
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            1,
        );
        let north = cp.topology().link_between(2, 3).unwrap();
        let mut plan = crate::fault::FaultPlan {
            policy: crate::fault::RestorationPolicy {
                detection_delay_ns: 500_000,
                resignal_delay_ns: 500_000,
                backoff_factor: 2,
                max_retries: 4,
                hold_down_ns: 1_000_000,
                mode: crate::fault::RecoveryMode::Restoration,
            },
            ..Default::default()
        };
        plan.outage(north, 3_000_000, 6_000_000);
        sim.set_fault_plan(plan);
        sim.add_flow(cbr_flow("cbr", 100_000));
        let report = sim
            .with_telemetry(TelemetryConfig::default())
            .run(1_000_000_000);

        let tel = report.telemetry.as_ref().unwrap();
        let at = |name: &str| {
            tel.events
                .iter()
                .find(|e| e.name == name)
                .map(|e| e.t_ns)
                .unwrap_or_else(|| panic!("missing event {name}"))
        };
        assert_eq!(at("link_down"), 3_000_000);
        assert_eq!(at("fault_detected"), 3_500_000);
        assert_eq!(at("service_restored"), 4_000_000);
        assert_eq!(at("link_up"), 6_000_000);
        // The outage span opens at the cut and closes at restoration.
        let span = tel
            .spans
            .iter()
            .find(|s| s.name.starts_with("outage.link"))
            .expect("outage span recorded");
        assert_eq!(span.start_ns, 3_000_000);
        assert_eq!(span.end_ns, Some(4_000_000));
    }
}
