//! The simulator's node abstraction.
//!
//! The engine does not know about router internals: everything attached
//! to a topology vertex is a [`Node`] — it receives packets
//! ([`Node::on_packet`]), may ask for a periodic tick
//! ([`Node::tick_interval`]), can be reprogrammed by the control plane,
//! and exposes its counters for telemetry. Every
//! [`MplsForwarder`](mpls_router::MplsForwarder) is a `Node` via a
//! blanket impl, and boxed forwarders (what
//! [`RouterKind::build`](mpls_router::RouterKind::build) returns) are
//! wrapped by [`ForwarderNode`].

use crate::event::SimTime;
use mpls_control::{NodeConfig, NodeId};
use mpls_core::CorePerf;
use mpls_packet::MplsPacket;
use mpls_router::{Forwarding, MplsForwarder, RouterStats};

/// Anything occupying a topology vertex in the simulation.
///
/// `Send` is part of the contract: shards holding nodes are stepped on
/// worker threads.
pub trait Node: Send {
    /// The topology vertex this node occupies.
    fn id(&self) -> NodeId;

    /// Handles one packet arriving at simulation time `now` and returns
    /// the forwarding decision with its data-plane cost.
    fn on_packet(&mut self, now: SimTime, packet: MplsPacket) -> Forwarding;

    /// [`Node::on_packet`] with the arrival port attached — the global
    /// channel index for wire arrivals, a synthetic source lane for
    /// locally injected packets. Both are sharding-invariant, so a
    /// router keying a flow cache on the port behaves identically at
    /// any shard count. The default ignores the port.
    fn on_packet_via(&mut self, now: SimTime, packet: MplsPacket, port: u64) -> Forwarding {
        let _ = port;
        self.on_packet(now, packet)
    }

    /// Requests a periodic tick every returned interval (ns). `None`
    /// (the default) schedules no ticks; packet routers are purely
    /// reactive.
    fn tick_interval(&self) -> Option<SimTime> {
        None
    }

    /// Periodic callback, driven at [`Node::tick_interval`].
    fn on_tick(&mut self, _now: SimTime) {}

    /// Replaces the node's forwarding state with `config`, preserving
    /// statistics.
    fn reprogram(&mut self, config: &NodeConfig);

    /// Data-plane counters so far.
    fn stats(&self) -> RouterStats;

    /// Enables hardware-style performance counters, if any.
    fn enable_perf(&mut self) {}

    /// The hardware counter block, if enabled and present.
    fn core_perf(&self) -> Option<&CorePerf> {
        None
    }
}

impl<F: MplsForwarder + Send> Node for F {
    fn id(&self) -> NodeId {
        self.node_id()
    }

    fn on_packet(&mut self, _now: SimTime, packet: MplsPacket) -> Forwarding {
        self.handle(packet)
    }

    fn on_packet_via(&mut self, _now: SimTime, packet: MplsPacket, port: u64) -> Forwarding {
        self.handle_on_port(packet, port)
    }

    fn reprogram(&mut self, config: &NodeConfig) {
        MplsForwarder::reprogram(self, config)
    }

    fn stats(&self) -> RouterStats {
        MplsForwarder::stats(self)
    }

    fn enable_perf(&mut self) {
        MplsForwarder::enable_perf(self)
    }

    fn core_perf(&self) -> Option<&CorePerf> {
        MplsForwarder::core_perf(self)
    }
}

/// Adapter turning a boxed forwarder into a [`Node`]. (The blanket impl
/// covers concrete forwarder types, but `Box<dyn MplsForwarder>` itself
/// does not implement `MplsForwarder`.)
pub struct ForwarderNode(Box<dyn MplsForwarder + Send>);

impl ForwarderNode {
    /// Wraps a boxed forwarder.
    pub fn new(inner: Box<dyn MplsForwarder + Send>) -> Self {
        Self(inner)
    }
}

impl Node for ForwarderNode {
    fn id(&self) -> NodeId {
        self.0.node_id()
    }

    fn on_packet(&mut self, _now: SimTime, packet: MplsPacket) -> Forwarding {
        self.0.handle(packet)
    }

    fn on_packet_via(&mut self, _now: SimTime, packet: MplsPacket, port: u64) -> Forwarding {
        self.0.handle_on_port(packet, port)
    }

    fn reprogram(&mut self, config: &NodeConfig) {
        self.0.reprogram(config)
    }

    fn stats(&self) -> RouterStats {
        self.0.stats()
    }

    fn enable_perf(&mut self) {
        self.0.enable_perf()
    }

    fn core_perf(&self) -> Option<&CorePerf> {
        self.0.core_perf()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpls_control::{ControlPlane, RouterRole, Topology};
    use mpls_router::RouterKind;

    #[test]
    fn boxed_forwarder_acts_as_node() {
        let cp = ControlPlane::new(Topology::figure1_example());
        let kind = RouterKind::Embedded {
            clock: mpls_core::ClockSpec::STRATIX_50MHZ,
        };
        let mut node = ForwarderNode::new(kind.build(0, RouterRole::Ler, &cp.config_for(0)));
        assert_eq!(node.id(), 0);
        assert_eq!(node.tick_interval(), None, "routers are purely reactive");
        assert_eq!(node.stats().packets_in, 0);
        node.enable_perf();
        node.reprogram(&cp.config_for(0));
        assert_eq!(node.stats().packets_in, 0, "reprogram preserves counters");
    }
}
