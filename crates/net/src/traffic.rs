//! Traffic generation.
//!
//! The paper motivates MPLS with "resource intensive Internet applications
//! like voice over Internet Protocol (VoIP) and real-time streaming video"
//! competing with bulk traffic (§1). The generators here model those
//! classes:
//!
//! * [`TrafficPattern::Cbr`] — constant bit rate (VoIP: small packets at a
//!   fixed cadence);
//! * [`TrafficPattern::Poisson`] — memoryless arrivals (aggregate web
//!   traffic);
//! * [`TrafficPattern::OnOff`] — bursty on/off (video / bulk transfer).

use mpls_packet::ipv4::Ipv4Addr;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Inter-arrival behaviour of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Fixed inter-packet gap.
    Cbr {
        /// Nanoseconds between packets.
        interval_ns: u64,
    },
    /// Exponential inter-arrival times.
    Poisson {
        /// Mean nanoseconds between packets.
        mean_interval_ns: u64,
    },
    /// Alternating bursts and silences; CBR within a burst.
    OnOff {
        /// Burst duration.
        on_ns: u64,
        /// Silence duration.
        off_ns: u64,
        /// Inter-packet gap inside a burst.
        interval_ns: u64,
    },
}

impl TrafficPattern {
    /// Convenience: a G.711-like VoIP stream — 200-byte packets every
    /// 20 ms is 80 kb/s; we scale the cadence for simulation speed.
    pub fn voip() -> Self {
        TrafficPattern::Cbr {
            interval_ns: 20_000_000,
        }
    }

    /// The next inter-arrival gap from `now_in_cycle` (time since the
    /// flow started, used by the on/off pattern), given a random source.
    pub fn next_gap<R: Rng>(&self, elapsed_ns: u64, rng: &mut R) -> u64 {
        match *self {
            TrafficPattern::Cbr { interval_ns } => interval_ns.max(1),
            TrafficPattern::Poisson { mean_interval_ns } => {
                // Inverse-CDF sample; clamp the uniform away from 0.
                let u: f64 = rng.random_range(1e-12..1.0);
                let gap = -(u.ln()) * mean_interval_ns as f64;
                (gap as u64).max(1)
            }
            TrafficPattern::OnOff {
                on_ns,
                off_ns,
                interval_ns,
            } => {
                let period = on_ns + off_ns;
                let pos = elapsed_ns % period;
                if pos + interval_ns < on_ns {
                    interval_ns.max(1)
                } else {
                    // Jump to the start of the next burst.
                    (period - pos).max(1)
                }
            }
        }
    }
}

/// A unidirectional application flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Human-readable name ("voip-1").
    pub name: String,
    /// Node the traffic enters at (an ingress LER).
    pub ingress: mpls_control::NodeId,
    /// Source IPv4 address stamped on packets.
    pub src_addr: Ipv4Addr,
    /// Destination IPv4 address (selects the FEC/LSP).
    pub dst_addr: Ipv4Addr,
    /// Payload bytes per packet (excluding headers).
    pub payload_bytes: usize,
    /// IP precedence (0–7) stamped into the TOS byte; drives CoS-aware
    /// queueing for unlabeled hops.
    pub precedence: u8,
    /// Arrival pattern.
    pub pattern: TrafficPattern,
    /// First emission time.
    pub start_ns: u64,
    /// No emissions at or after this time.
    pub stop_ns: u64,
    /// Optional edge policer: non-conforming packets are dropped before
    /// they enter the network.
    #[serde(default)]
    pub police: Option<crate::policer::PolicerSpec>,
}

impl FlowSpec {
    /// Average offered load in bits per second (approximate for
    /// Poisson/on-off).
    pub fn offered_bps(&self) -> f64 {
        let pkt_bits = (self.payload_bytes + 34 + 20) as f64 * 8.0;
        match self.pattern {
            TrafficPattern::Cbr { interval_ns } => pkt_bits * 1e9 / interval_ns as f64,
            TrafficPattern::Poisson { mean_interval_ns } => {
                pkt_bits * 1e9 / mean_interval_ns as f64
            }
            TrafficPattern::OnOff {
                on_ns,
                off_ns,
                interval_ns,
            } => {
                let duty = on_ns as f64 / (on_ns + off_ns) as f64;
                pkt_bits * 1e9 / interval_ns as f64 * duty
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cbr_gap_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = TrafficPattern::Cbr { interval_ns: 100 };
        for t in [0u64, 50, 1000] {
            assert_eq!(p.next_gap(t, &mut rng), 100);
        }
    }

    #[test]
    fn poisson_gap_has_right_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let p = TrafficPattern::Poisson {
            mean_interval_ns: 1000,
        };
        let n = 20_000;
        let total: u64 = (0..n).map(|_| p.next_gap(0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 50.0, "mean {mean}");
    }

    #[test]
    fn onoff_respects_silence() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = TrafficPattern::OnOff {
            on_ns: 1000,
            off_ns: 9000,
            interval_ns: 100,
        };
        // In-burst: regular cadence.
        assert_eq!(p.next_gap(0, &mut rng), 100);
        assert_eq!(p.next_gap(500, &mut rng), 100);
        // Near the burst end: jump over the silence.
        assert_eq!(p.next_gap(950, &mut rng), 10_000 - 950);
        // During silence: jump to next burst start.
        assert_eq!(p.next_gap(5000, &mut rng), 5000);
    }

    #[test]
    fn offered_load_math() {
        let f = FlowSpec {
            name: "t".into(),
            ingress: 0,
            src_addr: 1,
            dst_addr: 2,
            payload_bytes: 146, // 146+54 = 200 bytes on wire
            precedence: 5,
            pattern: TrafficPattern::Cbr {
                interval_ns: 20_000_000,
            },
            start_ns: 0,
            stop_ns: 1,
            police: None,
        };
        // 200 B / 20 ms = 80 kb/s.
        assert!((f.offered_bps() - 80_000.0).abs() < 1.0);
    }
}
