//! Traffic generation.
//!
//! The paper motivates MPLS with "resource intensive Internet applications
//! like voice over Internet Protocol (VoIP) and real-time streaming video"
//! competing with bulk traffic (§1). The generators here model those
//! classes:
//!
//! * [`TrafficPattern::Cbr`] — constant bit rate (VoIP: small packets at a
//!   fixed cadence);
//! * [`TrafficPattern::Poisson`] — memoryless arrivals (aggregate web
//!   traffic);
//! * [`TrafficPattern::OnOff`] — bursty on/off (video / bulk transfer);
//! * [`TrafficPattern::ClosedLoop`] — congestion-controlled transfers: a
//!   subscriber-class aggregate whose sending rate reacts to the network
//!   (AIMD window, ECN-style marks, retransmission timeouts) instead of
//!   blasting open-loop.

use mpls_packet::ipv4::Ipv4Addr;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Inter-arrival behaviour of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Fixed inter-packet gap.
    Cbr {
        /// Nanoseconds between packets.
        interval_ns: u64,
    },
    /// Exponential inter-arrival times.
    Poisson {
        /// Mean nanoseconds between packets.
        mean_interval_ns: u64,
    },
    /// Alternating bursts and silences; CBR within a burst.
    OnOff {
        /// Burst duration.
        on_ns: u64,
        /// Silence duration.
        off_ns: u64,
        /// Inter-packet gap inside a burst.
        interval_ns: u64,
    },
    /// Closed-loop congestion-controlled transfers (see
    /// [`ClosedLoopSpec`]). The engine drives these from delivery acks,
    /// not from `next_gap`.
    ClosedLoop(ClosedLoopSpec),
}

/// Parameters of one closed-loop subscriber-class aggregate.
///
/// The flow is a serial server of *transfers*: transfer arrivals are a
/// nonhomogeneous Poisson process (baseline rate modulated by a diurnal
/// curve and an optional flash-crowd window, realized by thinning),
/// transfer sizes are bounded-Pareto in packets, and each transfer is
/// clocked out under an AIMD congestion window — slow start to
/// `ssthresh`, +1 packet per window above it, halved on an ECN-marked
/// ack, collapsed to 1 on a retransmission timeout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopSpec {
    /// Mean gap between transfer arrivals at the baseline (diurnal peak,
    /// no flash crowd) rate.
    pub mean_arrival_ns: u64,
    /// Smallest transfer, in packets.
    pub size_min_pkts: u64,
    /// Largest transfer, in packets.
    pub size_max_pkts: u64,
    /// Bounded-Pareto tail exponent × 1000 (1200 ⇒ α = 1.2, the classic
    /// mice-and-elephants web mix). Kept integral so scenario JSON stays
    /// exact.
    pub size_alpha_milli: u32,
    /// Congestion-window cap, in packets.
    pub max_cwnd: u64,
    /// Retransmission timeout: no ack for this long with packets in
    /// flight ⇒ they are presumed lost, re-queued for sending, and the
    /// window collapses to 1 (Tahoe-style).
    pub rto_ns: u64,
    /// ECN-style mark threshold: a packet offered to a link queue
    /// already holding at least this many packets is marked, and the
    /// echoed mark halves the sender's window (at most once per
    /// in-flight window). 0 disables marking.
    pub ecn_threshold: u32,
    /// Gap between back-to-back window packets. Clamped to ≥ 1 ns so
    /// same-instant source events keep unique canonical keys.
    pub pacing_ns: u64,
    /// Flow-completion-time SLA for this class (queue wait included);
    /// transfers finishing later count as violations. 0 disables.
    pub sla_fct_ns: u64,
    /// Diurnal rate-curve period; 0 means flat load.
    pub diurnal_period_ns: u64,
    /// Diurnal trough as a percentage of the peak arrival rate
    /// (100 = flat).
    pub diurnal_trough_pct: u8,
    /// Flash-crowd window start (relative to the flow's start).
    pub flash_start_ns: u64,
    /// Flash-crowd window length; 0 disables the flash crowd.
    pub flash_duration_ns: u64,
    /// Arrival-rate multiplier inside the flash window as a percentage
    /// of baseline (300 = 3× arrivals). Values ≤ 100 disable it.
    pub flash_multiplier_pct: u32,
}

impl Default for ClosedLoopSpec {
    fn default() -> Self {
        Self {
            mean_arrival_ns: 2_000_000,
            size_min_pkts: 4,
            size_max_pkts: 256,
            size_alpha_milli: 1200,
            max_cwnd: 32,
            rto_ns: 20_000_000,
            ecn_threshold: 16,
            pacing_ns: 2_000,
            sla_fct_ns: 0,
            diurnal_period_ns: 0,
            diurnal_trough_pct: 100,
            flash_start_ns: 0,
            flash_duration_ns: 0,
            flash_multiplier_pct: 100,
        }
    }
}

impl ClosedLoopSpec {
    /// Flash-crowd multiplier as a factor ≥ 1.
    fn flash_factor(&self) -> f64 {
        (self.flash_multiplier_pct.max(100) as f64) / 100.0
    }

    /// Peak instantaneous arrival-rate factor over the whole run —
    /// candidates are drawn at this rate and thinned down to the
    /// instantaneous rate.
    pub fn peak_rate_factor(&self) -> f64 {
        if self.flash_duration_ns > 0 {
            self.flash_factor()
        } else {
            1.0
        }
    }

    /// Instantaneous arrival-rate factor at `elapsed_ns` since the flow
    /// started: diurnal raised-cosine (peak 1.0 at phase 0, trough at
    /// half period) times the flash-crowd multiplier inside its window.
    pub fn rate_factor(&self, elapsed_ns: u64) -> f64 {
        let mut f = 1.0;
        if self.diurnal_period_ns > 0 && self.diurnal_trough_pct < 100 {
            let trough = self.diurnal_trough_pct as f64 / 100.0;
            let phase =
                (elapsed_ns % self.diurnal_period_ns) as f64 / self.diurnal_period_ns as f64;
            let wave = 0.5 * (1.0 + (phase * std::f64::consts::TAU).cos());
            f *= trough + (1.0 - trough) * wave;
        }
        if self.flash_duration_ns > 0
            && elapsed_ns >= self.flash_start_ns
            && elapsed_ns - self.flash_start_ns < self.flash_duration_ns
        {
            f *= self.flash_factor();
        }
        f
    }

    /// Draws the next candidate-arrival gap (exponential at the peak
    /// rate; thinning happens at acceptance time via [`Self::accept`]).
    pub fn next_arrival_gap<R: Rng>(&self, rng: &mut R) -> u64 {
        let mean = self.mean_arrival_ns.max(1) as f64 / self.peak_rate_factor();
        let u: f64 = rng.random_range(1e-12..1.0);
        ((-(u.ln()) * mean) as u64).max(1)
    }

    /// Thinning acceptance for a candidate arrival at `elapsed_ns`.
    pub fn accept<R: Rng>(&self, elapsed_ns: u64, rng: &mut R) -> bool {
        let p = self.rate_factor(elapsed_ns) / self.peak_rate_factor();
        rng.random_range(0.0..1.0) < p
    }

    /// Draws a bounded-Pareto transfer size in packets via the inverse
    /// CDF, clamped into `[size_min_pkts, size_max_pkts]`.
    pub fn draw_size<R: Rng>(&self, rng: &mut R) -> u64 {
        let lo = self.size_min_pkts.max(1);
        let hi = self.size_max_pkts.max(lo);
        if lo == hi {
            return lo;
        }
        let alpha = (self.size_alpha_milli.max(1) as f64) / 1000.0;
        let (l, h) = (lo as f64, hi as f64);
        let u: f64 = rng.random_range(0.0..1.0);
        let x = l / (1.0 - u * (1.0 - (l / h).powf(alpha))).powf(1.0 / alpha);
        (x as u64).clamp(lo, hi)
    }

    /// Mean transfer size in packets (for offered-load estimates).
    pub fn mean_size_pkts(&self) -> f64 {
        let lo = self.size_min_pkts.max(1) as f64;
        let hi = self.size_max_pkts.max(self.size_min_pkts.max(1)) as f64;
        let alpha = (self.size_alpha_milli.max(1) as f64) / 1000.0;
        if (alpha - 1.0).abs() < 1e-9 {
            return lo * (hi / lo).ln() / (1.0 - lo / hi).max(1e-12);
        }
        let num =
            lo.powf(alpha) * alpha / (alpha - 1.0) * (lo.powf(1.0 - alpha) - hi.powf(1.0 - alpha));
        num / (1.0 - (lo / hi).powf(alpha)).max(1e-12)
    }
}

impl TrafficPattern {
    /// Convenience: a G.711-like VoIP stream — 200-byte packets every
    /// 20 ms is 80 kb/s; we scale the cadence for simulation speed.
    pub fn voip() -> Self {
        TrafficPattern::Cbr {
            interval_ns: 20_000_000,
        }
    }

    /// The next inter-arrival gap from `now_in_cycle` (time since the
    /// flow started, used by the on/off pattern), given a random source.
    ///
    /// Total for every parameter value: degenerate intervals (zeros,
    /// near-`u64::MAX` sums) clamp instead of panicking or dividing by
    /// zero, and every returned gap is ≥ 1 ns so emission chains always
    /// advance. `f64 → u64` casts saturate by language rule (NaN → 0,
    /// +∞ → `u64::MAX`), so the Poisson arm cannot wrap either.
    pub fn next_gap<R: Rng>(&self, elapsed_ns: u64, rng: &mut R) -> u64 {
        match *self {
            TrafficPattern::Cbr { interval_ns } => interval_ns.max(1),
            TrafficPattern::Poisson { mean_interval_ns } => {
                // Inverse-CDF sample; clamp the uniform away from 0.
                let u: f64 = rng.random_range(1e-12..1.0);
                let gap = -(u.ln()) * mean_interval_ns as f64;
                (gap as u64).max(1)
            }
            TrafficPattern::OnOff {
                on_ns,
                off_ns,
                interval_ns,
            } => {
                let period = on_ns.saturating_add(off_ns);
                if period == 0 {
                    // Degenerate all-zero cycle: plain CBR.
                    return interval_ns.max(1);
                }
                let pos = elapsed_ns % period;
                if pos.saturating_add(interval_ns) < on_ns {
                    interval_ns.max(1)
                } else {
                    // Jump to the start of the next burst.
                    (period - pos).max(1)
                }
            }
            // Closed-loop flows are clocked by acks, not by a gap
            // process; the pacing gap is the only sane answer if a
            // caller asks anyway.
            TrafficPattern::ClosedLoop(cl) => cl.pacing_ns.max(1),
        }
    }
}

/// A unidirectional application flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Human-readable name ("voip-1").
    pub name: String,
    /// Node the traffic enters at (an ingress LER).
    pub ingress: mpls_control::NodeId,
    /// Source IPv4 address stamped on packets.
    pub src_addr: Ipv4Addr,
    /// Destination IPv4 address (selects the FEC/LSP).
    pub dst_addr: Ipv4Addr,
    /// Payload bytes per packet (excluding headers).
    pub payload_bytes: usize,
    /// IP precedence (0–7) stamped into the TOS byte; drives CoS-aware
    /// queueing for unlabeled hops.
    pub precedence: u8,
    /// Arrival pattern.
    pub pattern: TrafficPattern,
    /// First emission time.
    pub start_ns: u64,
    /// No emissions at or after this time.
    pub stop_ns: u64,
    /// Optional edge policer: non-conforming packets are dropped before
    /// they enter the network.
    #[serde(default)]
    pub police: Option<crate::policer::PolicerSpec>,
}

impl FlowSpec {
    /// Average offered load in bits per second (approximate for
    /// Poisson/on-off).
    pub fn offered_bps(&self) -> f64 {
        let pkt_bits = (self.payload_bytes + 34 + 20) as f64 * 8.0;
        match self.pattern {
            TrafficPattern::Cbr { interval_ns } => pkt_bits * 1e9 / interval_ns.max(1) as f64,
            TrafficPattern::Poisson { mean_interval_ns } => {
                pkt_bits * 1e9 / mean_interval_ns.max(1) as f64
            }
            TrafficPattern::OnOff {
                on_ns,
                off_ns,
                interval_ns,
            } => {
                let period = on_ns.saturating_add(off_ns).max(1);
                let duty = if on_ns == 0 && off_ns == 0 {
                    1.0
                } else {
                    on_ns as f64 / period as f64
                };
                pkt_bits * 1e9 / interval_ns.max(1) as f64 * duty
            }
            TrafficPattern::ClosedLoop(cl) => {
                // Offered = arrivals/s × mean transfer size; the network
                // may of course deliver less — that is the point.
                pkt_bits * cl.mean_size_pkts() * 1e9 / cl.mean_arrival_ns.max(1) as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cbr_gap_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = TrafficPattern::Cbr { interval_ns: 100 };
        for t in [0u64, 50, 1000] {
            assert_eq!(p.next_gap(t, &mut rng), 100);
        }
    }

    #[test]
    fn poisson_gap_has_right_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let p = TrafficPattern::Poisson {
            mean_interval_ns: 1000,
        };
        let n = 20_000;
        let total: u64 = (0..n).map(|_| p.next_gap(0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 50.0, "mean {mean}");
    }

    #[test]
    fn onoff_respects_silence() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = TrafficPattern::OnOff {
            on_ns: 1000,
            off_ns: 9000,
            interval_ns: 100,
        };
        // In-burst: regular cadence.
        assert_eq!(p.next_gap(0, &mut rng), 100);
        assert_eq!(p.next_gap(500, &mut rng), 100);
        // Near the burst end: jump over the silence.
        assert_eq!(p.next_gap(950, &mut rng), 10_000 - 950);
        // During silence: jump to next burst start.
        assert_eq!(p.next_gap(5000, &mut rng), 5000);
    }

    #[test]
    fn offered_load_math() {
        let f = FlowSpec {
            name: "t".into(),
            ingress: 0,
            src_addr: 1,
            dst_addr: 2,
            payload_bytes: 146, // 146+54 = 200 bytes on wire
            precedence: 5,
            pattern: TrafficPattern::Cbr {
                interval_ns: 20_000_000,
            },
            start_ns: 0,
            stop_ns: 1,
            police: None,
        };
        // 200 B / 20 ms = 80 kb/s.
        assert!((f.offered_bps() - 80_000.0).abs() < 1.0);
    }

    #[test]
    fn degenerate_intervals_never_panic_and_always_advance() {
        let mut rng = StdRng::seed_from_u64(3);
        let cases = [
            TrafficPattern::Cbr { interval_ns: 0 },
            TrafficPattern::Poisson {
                mean_interval_ns: 0,
            },
            TrafficPattern::Poisson {
                mean_interval_ns: u64::MAX,
            },
            TrafficPattern::OnOff {
                on_ns: 0,
                off_ns: 0,
                interval_ns: 0,
            },
            TrafficPattern::OnOff {
                on_ns: u64::MAX,
                off_ns: u64::MAX,
                interval_ns: u64::MAX,
            },
            TrafficPattern::OnOff {
                on_ns: 0,
                off_ns: 7,
                interval_ns: 0,
            },
            TrafficPattern::OnOff {
                on_ns: 5,
                off_ns: 0,
                interval_ns: u64::MAX,
            },
        ];
        for p in cases {
            for t in [0u64, 1, 1000, u64::MAX - 1, u64::MAX] {
                let gap = p.next_gap(t, &mut rng);
                assert!(gap >= 1, "{p:?} at t={t} returned gap {gap}");
            }
            // Loads are finite even with zero denominators.
            let f = FlowSpec {
                name: "d".into(),
                ingress: 0,
                src_addr: 1,
                dst_addr: 2,
                payload_bytes: 100,
                precedence: 0,
                pattern: p,
                start_ns: 0,
                stop_ns: 1,
                police: None,
            };
            assert!(f.offered_bps().is_finite(), "{p:?} offered infinite load");
        }
    }

    #[test]
    fn bounded_pareto_sizes_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let cl = ClosedLoopSpec {
            size_min_pkts: 4,
            size_max_pkts: 256,
            size_alpha_milli: 1200,
            ..ClosedLoopSpec::default()
        };
        let mut seen_small = false;
        let mut seen_large = false;
        for _ in 0..5000 {
            let s = cl.draw_size(&mut rng);
            assert!((4..=256).contains(&s), "size {s} out of range");
            seen_small |= s < 16;
            seen_large |= s > 64;
        }
        assert!(seen_small && seen_large, "heavy tail not exercised");
        // Degenerate: min == max, zero alpha.
        let point = ClosedLoopSpec {
            size_min_pkts: 7,
            size_max_pkts: 7,
            size_alpha_milli: 0,
            ..ClosedLoopSpec::default()
        };
        assert_eq!(point.draw_size(&mut rng), 7);
        assert!(cl.mean_size_pkts() > 4.0 && cl.mean_size_pkts() < 256.0);
    }

    #[test]
    fn rate_curve_shapes() {
        let cl = ClosedLoopSpec {
            diurnal_period_ns: 1_000_000,
            diurnal_trough_pct: 20,
            flash_start_ns: 10_000_000,
            flash_duration_ns: 1_000_000,
            flash_multiplier_pct: 300,
            ..ClosedLoopSpec::default()
        };
        // Peak at phase 0, trough at half period.
        assert!((cl.rate_factor(0) - 1.0).abs() < 1e-9);
        assert!((cl.rate_factor(500_000) - 0.2).abs() < 1e-9);
        // Flash window multiplies by 3.
        assert!((cl.rate_factor(10_000_000) - 3.0).abs() < 1e-9);
        assert!(cl.rate_factor(11_000_000) <= 1.0);
        assert!((cl.peak_rate_factor() - 3.0).abs() < 1e-9);
        // Flat spec is identically 1.
        let flat = ClosedLoopSpec::default();
        for t in [0, 123_456, 10_000_000_000] {
            assert!((flat.rate_factor(t) - 1.0).abs() < 1e-9);
        }
    }
}
