//! Log-bucketed latency histogram with percentile estimation.
//!
//! Delay distributions under congestion are heavy-tailed, so the QoS
//! experiments report percentiles (p50/p95/p99), not just means. The
//! histogram uses logarithmically spaced buckets — constant relative
//! error (~7% per bucket at 10 buckets/decade), constant memory,
//! O(1) insertion — the standard latency-recording trade-off.

use serde::{Deserialize, Serialize};

/// Buckets per decade; 10 gives ~26% bucket width (10^(1/10)).
const BUCKETS_PER_DECADE: usize = 20;
/// Decades covered: 1 ns .. 10^8 ns (100 ms) plus an overflow bucket.
const DECADES: usize = 9;
const BUCKETS: usize = BUCKETS_PER_DECADE * DECADES + 1;

/// A latency histogram over nanosecond samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns <= 1 {
            return 0;
        }
        let idx = ((ns as f64).log10() * BUCKETS_PER_DECADE as f64).floor() as usize;
        idx.min(BUCKETS - 1)
    }

    /// Lower edge of a bucket in nanoseconds.
    fn bucket_floor(idx: usize) -> f64 {
        10f64.powf(idx as f64 / BUCKETS_PER_DECADE as f64)
    }

    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket_of(ns)] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Estimates the `q`-quantile (0.0–1.0) in nanoseconds: the lower
    /// edge of the bucket containing the quantile rank (a ≤7% relative
    /// underestimate by construction). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        Self::bucket_floor(BUCKETS - 1)
    }

    /// Convenience: p50/p95/p99 in nanoseconds.
    pub fn percentiles(&self) -> (f64, f64, f64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }

    /// Merges another histogram into this one (ensemble aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000); // 1 ms
        for q in [0.01, 0.5, 0.99] {
            let v = h.quantile(q);
            assert!((0.93..=1.0).contains(&(v / 1_000_000.0)), "q={q} gave {v}");
        }
    }

    #[test]
    fn percentiles_order_correctly() {
        let mut h = LatencyHistogram::new();
        // 90 fast samples, 9 medium, 1 slow.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..9 {
            h.record(100_000);
        }
        h.record(10_000_000);
        let (p50, p95, p99) = h.percentiles();
        assert!(p50 < p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p50 < 2_000.0);
        assert!((50_000.0..200_000.0).contains(&p95), "{p95}");
        // p99 of 100 samples is the 99th smallest — still the medium tier;
        // only the max captures the single slow outlier.
        assert!((50_000.0..200_000.0).contains(&p99), "{p99}");
        assert!(h.quantile(1.0) >= 5_000_000.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(100);
        b.record(1_000_000);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.quantile(0.9) > 500_000.0);
        assert!(a.quantile(0.1) < 200.0);
    }

    #[test]
    fn overflow_bucket_catches_huge_samples() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert!(h.quantile(0.5) >= 10f64.powi(8));
    }

    proptest! {
        /// The quantile estimate is within one bucket (≤ ~13%) below the
        /// true value for a uniform batch of identical samples.
        #[test]
        fn relative_error_bound(ns in 2u64..100_000_000) {
            let mut h = LatencyHistogram::new();
            for _ in 0..10 {
                h.record(ns);
            }
            let est = h.quantile(0.5);
            prop_assert!(est <= ns as f64 * 1.0001, "overestimate: {est} vs {ns}");
            prop_assert!(est >= ns as f64 * 0.85, "too low: {est} vs {ns}");
        }

        /// Quantiles are monotone in q.
        #[test]
        fn quantiles_monotone(samples in proptest::collection::vec(1u64..10_000_000, 1..200)) {
            let mut h = LatencyHistogram::new();
            for s in samples {
                h.record(s);
            }
            let mut prev = 0.0;
            for i in 0..=20 {
                let q = i as f64 / 20.0;
                let v = h.quantile(q);
                prop_assert!(v >= prev, "q={q}: {v} < {prev}");
                prev = v;
            }
        }
    }
}
