//! Runtime fault injection and timed restoration.
//!
//! A [`FaultPlan`] schedules link failures and repairs at simulation
//! times (plus optional per-link random wire loss), and a
//! [`RestorationPolicy`] describes how the control plane reacts: how long
//! failure *detection* takes, whether recovery is head-end **protection**
//! (fail over onto a pre-signaled link-disjoint backup LSP in one
//! detection delay) or **restoration** (re-signal with CSPF, retrying
//! with exponential backoff while no path exists), and how long a
//! repaired link is held down before it may carry new LSPs again.
//!
//! The simulator executes the plan through its event queue and emits one
//! [`FaultRecord`] per outage with the availability metrics of interest:
//! time-to-restore and packets lost during the outage.

use crate::event::SimTime;
use mpls_control::{LinkId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the control plane recovers LSPs broken by a link failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryMode {
    /// No reaction: stale forwarding state blackholes until the link
    /// physically returns.
    None,
    /// Head-end re-signaling: broken LSPs are torn down and re-signaled
    /// around the failure (one signaling latency after detection, with
    /// exponential backoff while CSPF finds no path).
    Restoration,
    /// Pre-signaled 1:1 path protection: failover onto a link-disjoint
    /// standby backup in one detection delay. LSPs without a viable
    /// backup fall back to restoration.
    Protection,
    /// The distributed control plane (`mpls-ldp`) recovers on its own:
    /// session hold-timer expiry detects the failure, withdraws cascade
    /// and the remaining mappings reconverge. The centralized detection/
    /// re-signal/hold-down machinery stands down.
    Ldp,
    /// Segment routing: detection still uses the centralized delay, but
    /// recovery is a coordinator-side recompile of the source routes —
    /// no per-LSP re-signaling, no protocol cascade.
    Sr,
}

/// Timing model for failure detection and recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestorationPolicy {
    /// Time from a physical failure to the head end learning of it
    /// (liveness-probe / IGP flooding delay).
    pub detection_delay_ns: u64,
    /// Latency of one signaling attempt, and the base of the exponential
    /// backoff between failed attempts.
    pub resignal_delay_ns: u64,
    /// Backoff multiplier applied per failed attempt.
    pub backoff_factor: u32,
    /// Re-signal attempts after the first before giving up.
    pub max_retries: u32,
    /// After a link physically returns, how long the control plane waits
    /// before admitting new LSPs onto it (flap damping).
    pub hold_down_ns: u64,
    /// Recovery strategy.
    pub mode: RecoveryMode,
}

impl Default for RestorationPolicy {
    fn default() -> Self {
        Self {
            detection_delay_ns: 1_000_000, // 1 ms
            resignal_delay_ns: 1_000_000,  // 1 ms per signaling round trip
            backoff_factor: 2,
            max_retries: 8,
            hold_down_ns: 5_000_000, // 5 ms
            mode: RecoveryMode::Restoration,
        }
    }
}

/// A scheduled change of a link's physical state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When it happens.
    pub at_ns: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// The fault transitions a plan can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The link goes dark: queued and in-flight packets are lost, and
    /// anything steered onto it drops until it returns.
    LinkDown(LinkId),
    /// The link comes back.
    LinkUp(LinkId),
    /// The node crashes: every incident link goes dark, the forwarding
    /// state is wiped, and (under LDP) all protocol state is lost.
    NodeDown(NodeId),
    /// The crashed node restarts cold and re-learns.
    NodeUp(NodeId),
    /// A control-channel partition starts on the link: control PDUs
    /// drop while data traffic keeps flowing.
    PartitionStart(LinkId),
    /// The control-channel partition heals.
    PartitionEnd(LinkId),
}

/// Independent per-packet loss on a link's channels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkLoss {
    /// The lossy link.
    pub link: LinkId,
    /// Probability each transmitted packet is lost on the wire.
    pub probability: f64,
}

/// Adversarial treatment of control PDUs crossing one link's channels
/// during a window: independent per-PDU loss, duplication, reordering
/// (a duplicate-free extra delay that breaks the channel's FIFO
/// promise) and byte corruption. Data traffic is untouched — this is
/// the control plane's private adversary. Probabilities are drawn from
/// a dedicated per-channel RNG stream, so the outcome is independent of
/// shard layout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PduChaos {
    /// The attacked link.
    pub link: LinkId,
    /// Probability each control PDU is silently dropped.
    pub loss: f64,
    /// Probability each control PDU is delivered twice.
    pub duplicate: f64,
    /// Probability each control PDU is held back an extra delay,
    /// overtaking PDUs sent after it.
    pub reorder: f64,
    /// Probability each control PDU has bytes flipped on the wire (the
    /// receiver's decoder must survive and the session must reset).
    pub corrupt: f64,
    /// Window start (inclusive).
    pub from_ns: SimTime,
    /// Window end (exclusive); `u64::MAX` for the whole run.
    pub until_ns: SimTime,
}

/// A schedule of faults plus the policy for reacting to them.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Scheduled link state changes.
    pub events: Vec<FaultEvent>,
    /// Per-link random loss.
    pub losses: Vec<LinkLoss>,
    /// Per-link control-PDU chaos windows.
    pub pdu_chaos: Vec<PduChaos>,
    /// Detection/recovery timing.
    pub policy: RestorationPolicy,
}

impl FaultPlan {
    /// An empty plan under `policy`.
    pub fn new(policy: RestorationPolicy) -> Self {
        Self {
            events: Vec::new(),
            losses: Vec::new(),
            pdu_chaos: Vec::new(),
            policy,
        }
    }

    /// Schedules a link failure at `at_ns`.
    pub fn link_down(&mut self, at_ns: SimTime, link: LinkId) -> &mut Self {
        self.events.push(FaultEvent {
            at_ns,
            kind: FaultKind::LinkDown(link),
        });
        self
    }

    /// Schedules a link repair at `at_ns`.
    pub fn link_up(&mut self, at_ns: SimTime, link: LinkId) -> &mut Self {
        self.events.push(FaultEvent {
            at_ns,
            kind: FaultKind::LinkUp(link),
        });
        self
    }

    /// Schedules one outage window `[down_ns, up_ns)` on `link`.
    pub fn outage(&mut self, link: LinkId, down_ns: SimTime, up_ns: SimTime) -> &mut Self {
        assert!(down_ns < up_ns, "outage must end after it starts");
        self.link_down(down_ns, link).link_up(up_ns, link)
    }

    /// Schedules a node crash at `at_ns`.
    pub fn node_down(&mut self, at_ns: SimTime, node: NodeId) -> &mut Self {
        self.events.push(FaultEvent {
            at_ns,
            kind: FaultKind::NodeDown(node),
        });
        self
    }

    /// Schedules a crashed node's restart at `at_ns`.
    pub fn node_up(&mut self, at_ns: SimTime, node: NodeId) -> &mut Self {
        self.events.push(FaultEvent {
            at_ns,
            kind: FaultKind::NodeUp(node),
        });
        self
    }

    /// Schedules one crash window `[down_ns, up_ns)` on `node`.
    pub fn node_outage(&mut self, node: NodeId, down_ns: SimTime, up_ns: SimTime) -> &mut Self {
        assert!(down_ns < up_ns, "outage must end after it starts");
        self.node_down(down_ns, node).node_up(up_ns, node)
    }

    /// Schedules a control-channel partition window `[from_ns, until_ns)`
    /// on `link`: control PDUs drop, data traffic keeps flowing.
    pub fn partition(&mut self, link: LinkId, from_ns: SimTime, until_ns: SimTime) -> &mut Self {
        assert!(from_ns < until_ns, "partition must end after it starts");
        self.partition_start(from_ns, link)
            .partition_end(until_ns, link)
    }

    /// Schedules the start of a control-channel partition on `link`.
    pub fn partition_start(&mut self, at_ns: SimTime, link: LinkId) -> &mut Self {
        self.events.push(FaultEvent {
            at_ns,
            kind: FaultKind::PartitionStart(link),
        });
        self
    }

    /// Schedules the end of a control-channel partition on `link`.
    pub fn partition_end(&mut self, at_ns: SimTime, link: LinkId) -> &mut Self {
        self.events.push(FaultEvent {
            at_ns,
            kind: FaultKind::PartitionEnd(link),
        });
        self
    }

    /// Adds a control-PDU chaos window (see [`PduChaos`]).
    pub fn pdu_chaos(&mut self, chaos: PduChaos) -> &mut Self {
        for p in [chaos.loss, chaos.duplicate, chaos.reorder, chaos.corrupt] {
            assert!((0.0..=1.0).contains(&p), "chaos probability out of range");
        }
        self.pdu_chaos.push(chaos);
        self
    }

    /// Adds independent random wire loss on `link`.
    pub fn random_loss(&mut self, link: LinkId, probability: f64) -> &mut Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "loss probability out of range"
        );
        self.losses.push(LinkLoss { link, probability });
        self
    }

    /// Generates random link flaps over `[0, horizon_ns)`: exponentially
    /// distributed up-times (mean `mean_up_ns`) alternate with
    /// exponentially distributed outages (mean `mean_down_ns`), from a
    /// dedicated seeded RNG so the schedule is reproducible.
    pub fn random_flaps(
        &mut self,
        link: LinkId,
        seed: u64,
        horizon_ns: SimTime,
        mean_up_ns: u64,
        mean_down_ns: u64,
    ) -> &mut Self {
        assert!(mean_up_ns > 0 && mean_down_ns > 0, "means must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut exp = |mean: u64| -> u64 {
            // Inverse-CDF sampling; clamp the uniform away from 0 so ln
            // stays finite, and floor at 1 ns to keep time advancing.
            let u: f64 = rng.random::<f64>().max(1e-12);
            ((-u.ln()) * mean as f64).max(1.0) as u64
        };
        let mut t = exp(mean_up_ns);
        while t < horizon_ns {
            let down_at = t;
            let up_at = (down_at + exp(mean_down_ns)).min(horizon_ns);
            self.outage(link, down_at, up_at);
            t = up_at + exp(mean_up_ns);
        }
        self
    }
}

/// Availability accounting for one outage, reported per fault.
#[derive(Debug, Clone, Serialize)]
pub struct FaultRecord {
    /// The failed link.
    pub link: LinkId,
    /// When it physically went down.
    pub down_ns: SimTime,
    /// When the control plane detected the failure (`None` if the link
    /// returned before detection fired, or no recovery was configured).
    pub detected_ns: Option<SimTime>,
    /// When service was restored for every LSP the failure broke:
    /// failover or successful re-signal, or the physical repair when the
    /// stale state simply started working again. `None` while any broken
    /// LSP remains unrecovered at the end of the run.
    pub restored_ns: Option<SimTime>,
    /// When the link physically came back (`None` if it stayed down).
    pub link_up_ns: Option<SimTime>,
    /// Packets lost to this outage: flushed from the link's queues,
    /// caught in flight, or steered onto the dead link before recovery.
    pub packets_lost: u64,
    /// The recovery mode in force.
    pub mode: RecoveryMode,
}

impl FaultRecord {
    /// Service interruption: failure to restoration, when restored.
    pub fn time_to_restore_ns(&self) -> Option<u64> {
        self.restored_ns.map(|r| r - self.down_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_expands_to_two_events() {
        let mut plan = FaultPlan::default();
        plan.outage(3, 1_000, 9_000);
        assert_eq!(plan.events.len(), 2);
        assert_eq!(plan.events[0].kind, FaultKind::LinkDown(3));
        assert_eq!(plan.events[1].kind, FaultKind::LinkUp(3));
    }

    #[test]
    fn random_flaps_are_reproducible_and_ordered() {
        let build = |seed| {
            let mut plan = FaultPlan::default();
            plan.random_flaps(1, seed, 1_000_000_000, 50_000_000, 5_000_000);
            plan.events
        };
        let a = build(7);
        let b = build(7);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(!a.is_empty(), "a 1 s horizon at 50 ms mean up-time flaps");
        // Downs and ups alternate and never run backwards in time.
        for pair in a.chunks(2) {
            assert!(matches!(pair[0].kind, FaultKind::LinkDown(1)));
            if let [down, up] = pair {
                assert!(down.at_ns < up.at_ns);
            }
        }
        assert_ne!(build(8), a, "different seed, different schedule");
    }

    #[test]
    fn time_to_restore() {
        let mut r = FaultRecord {
            link: 0,
            down_ns: 5_000,
            detected_ns: Some(6_000),
            restored_ns: None,
            link_up_ns: None,
            packets_lost: 3,
            mode: RecoveryMode::Restoration,
        };
        assert_eq!(r.time_to_restore_ns(), None);
        r.restored_ns = Some(8_500);
        assert_eq!(r.time_to_restore_ns(), Some(3_500));
    }
}
