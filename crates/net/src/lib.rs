#![warn(missing_docs)]
//! Discrete-event network simulator for MPLS experiments.
//!
//! Models the surrounding network of the paper's Fig. 1 so the embedded
//! router can be exercised end to end: LERs bridging layer-2 traffic into
//! an LSR core, links with finite capacity and propagation delay, CoS-
//! aware queueing (the QoS motivation of §1), and traffic generators for
//! the workloads the paper's introduction names — VoIP and streaming
//! video against background bulk transfer.
//!
//! * [`event`] — the time-ordered event queue and control events.
//! * [`queue`] — FIFO and CoS-priority link queues with tail drop.
//! * [`link`] — directed channels with serialization + propagation delay.
//! * [`traffic`] — CBR, Poisson, on/off and closed-loop generators.
//! * [`subscriber`] — subscriber populations expanded into per-SLA-class
//!   closed-loop flows (diurnal load, flash crowds).
//! * [`stats`] — per-flow delay/jitter/loss/throughput accounting.
//! * [`fault`] — scheduled link failures and the timed-restoration model.
//! * [`node`] — the [`Node`] trait the engine drives at each vertex.
//! * [`engine`] — the sharded discrete-event engine (per-shard event
//!   wheels, conservative epoch barriers, deterministic merge).
//! * [`sim`] — the facade tying routers (`mpls-router`) to the network.

pub mod engine;
pub mod event;
pub mod fault;
pub mod histogram;
pub mod link;
pub mod node;
pub mod policer;
pub mod queue;
pub mod scale;
pub mod sim;
pub mod stats;
pub mod subscriber;
pub mod traffic;

pub use engine::{EngineKind, EngineStats};
pub use event::{ControlEvent, EventQueue, SimTime};
pub use fault::{FaultPlan, FaultRecord, PduChaos, RecoveryMode, RestorationPolicy};
pub use histogram::LatencyHistogram;
pub use link::Channel;
pub use node::{ForwarderNode, Node};
pub use policer::{PolicerSpec, TokenBucket};
pub use queue::{LinkQueue, QueueDiscipline};
pub use scale::{ScaleFamily, ScaleSpec, ScaleWorkload};
pub use sim::{ControlMode, ControlSummary, RouterKind, SimReport, Simulation};
pub use stats::{FlowId, FlowStats};
pub use subscriber::{SlaClass, SubscriberModel};
pub use traffic::{ClosedLoopSpec, FlowSpec, TrafficPattern};

// Telemetry surface, re-exported so simulator users don't need a direct
// `mpls-telemetry` dependency to configure a run or read its report.
pub use mpls_telemetry::{
    telemetry_to_csv, telemetry_to_json, NoopSink, Registry, TelemetryConfig, TelemetryReport,
    TelemetrySink,
};

// Distributed-control-plane configuration, re-exported for the same
// reason: `Simulation::enable_ldp` takes it.
pub use mpls_ldp::LdpConfig;
