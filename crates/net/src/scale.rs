//! Streaming million-LSP workload synthesis.
//!
//! The scenario files under `examples/` enumerate every node, link and
//! LSP explicitly — fine at tens of LSPs, hopeless at a million. This
//! module synthesizes production-scale workloads *on the fly* from a
//! compact parametric spec: a topology family (`fat_tree`,
//! `ring_of_rings`), an LSP count, and a seed. Nothing about the
//! workload is stored ahead of time; the endpoint of LSP `i` is a pure
//! function of `(spec, i)`, so
//!
//! * bring-up streams — one [`LspRequest`] exists at a time, and
//! * the workload is reproducible — the same spec yields byte-identical
//!   control planes and flow tables, on any host, at any shard count.
//!
//! # Label budget
//!
//! A million LSPs cannot spend a label per hop from one shared 2^20
//! space. Every generated LSP therefore rides a hierarchical tunnel
//! between anchor switches with penultimate-hop popping. In the fat
//! tree, where every LER sits directly under its anchor, that costs
//! exactly **one** fresh label per LSP (the ingress push; the tunnel
//! head preserves it, the penultimate pops it). In the ring of rings
//! the access segments — the hops around the local ring between a
//! member LER and its gateway anchor — still allocate per hop, so
//! label cost grows with `ring_size` and the family's LSP budget must
//! shrink accordingly. The tunnel mesh itself is
//! `O(anchors · strides)` — a thousand-odd tunnels at a few labels
//! each — leaving headroom under the 2^20 ceiling at 1M fat-tree LSPs.

use crate::traffic::{FlowSpec, TrafficPattern};
use mpls_control::{ControlPlane, LspRequest, NodeId, SignalError, Topology, TunnelId};
use mpls_dataplane::ftn::Prefix;

/// First generated FEC host address: `10.0.0.0`. LSP `i` owns
/// `BASE + i` as a /32 host FEC.
const FEC_BASE: u32 = 0x0A00_0000;

/// Source address stamped on generated flows: `172.16.0.1`.
const FLOW_SRC: u32 = 0xAC10_0001;

/// splitmix64 — the same finalizer the engine uses for RNG stream
/// decomposition. All workload sampling derives from it, so generation
/// is a pure function of the spec.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A parametric topology family at a chosen width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleFamily {
    /// `k`-ary fat tree with `lers_per_edge` LERs under every edge
    /// switch (see [`Topology::fat_tree`]).
    FatTree {
        /// Fat-tree arity (even, ≥ 2).
        k: u32,
        /// LERs grafted under each edge switch.
        lers_per_edge: u32,
    },
    /// Backbone ring of `rings` gateways, each anchoring a local ring
    /// of `ring_size` LERs (see [`Topology::ring_of_rings`]).
    RingOfRings {
        /// Backbone gateways (≥ 3).
        rings: u32,
        /// LERs per local ring (≥ 2).
        ring_size: u32,
    },
}

/// A complete streaming workload spec: topology family, LSP volume,
/// tunnel mesh density, attached traffic, and the seed everything is
/// derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleSpec {
    /// Topology family and width.
    pub family: ScaleFamily,
    /// LSPs to signal.
    pub lsps_total: usize,
    /// Tunnel mesh density: each core anchor gets one tunnel per stride
    /// class. Must be ≥ 1 and small enough that every stride stays a
    /// shortest path (enforced per family).
    pub tunnel_strides: u32,
    /// Traffic flows riding a sampled subset of the LSPs.
    pub flows: usize,
    /// Payload bytes per flow packet.
    pub payload_bytes: usize,
    /// CBR inter-packet gap per flow (ns).
    pub flow_interval_ns: u64,
    /// Flow emission window start (ns).
    pub flow_start_ns: u64,
    /// Flow emission window end (ns).
    pub flow_stop_ns: u64,
    /// Link capacity for every synthesized link (bits/s).
    pub bandwidth_bps: u64,
    /// One-way propagation delay for every synthesized link (ns).
    pub delay_ns: u64,
    /// Workload seed: drives endpoint and flow sampling only.
    pub seed: u64,
}

/// The synthesized workload: a fully signaled control plane plus the
/// traffic flows to attach.
pub struct ScaleWorkload {
    /// Control plane with the tunnel mesh and every LSP installed.
    pub cp: ControlPlane,
    /// Traffic flows, one per sampled LSP.
    pub flows: Vec<FlowSpec>,
    /// Tunnels established.
    pub tunnels: usize,
    /// LSPs established.
    pub lsps: usize,
}

/// The pure endpoint function: everything LSP `i` is, derived from the
/// spec alone.
#[derive(Debug, Clone, Copy)]
struct LspPlan {
    ingress: NodeId,
    egress: NodeId,
    /// Index into the tunnel mesh (dense, family-specific order).
    tunnel: usize,
    fec: Prefix,
}

impl ScaleSpec {
    /// Builds the topology for the spec's family.
    pub fn topology(&self) -> Topology {
        match self.family {
            ScaleFamily::FatTree { k, lers_per_edge } => {
                Topology::fat_tree(k, lers_per_edge, self.bandwidth_bps, self.delay_ns)
            }
            ScaleFamily::RingOfRings { rings, ring_size } => {
                Topology::ring_of_rings(rings, ring_size, self.bandwidth_bps, self.delay_ns)
            }
        }
    }

    /// Number of tunnel anchors (edge switches / gateways).
    fn anchors(&self) -> u64 {
        match self.family {
            ScaleFamily::FatTree { k, .. } => u64::from(k) * u64::from(k) / 2,
            ScaleFamily::RingOfRings { rings, .. } => u64::from(rings),
        }
    }

    /// The anchor pair `(head, tail)` of tunnel-mesh slot
    /// `(stride class s0, anchor a)`, as node ids.
    fn anchor_pair(&self, s0: u64, a: u64) -> (NodeId, NodeId) {
        let n = self.anchors();
        match self.family {
            ScaleFamily::FatTree { k, .. } => {
                let half = u64::from(k) / 2;
                let base = half * half + u64::from(k) * half; // cores + aggs
                let stride = s0 + 1; // strides 1..=S: distinct edges
                ((base + a) as NodeId, (base + (a + stride) % n) as NodeId)
            }
            ScaleFamily::RingOfRings { .. } => {
                // Strides 2..=S+1: adjacent gateways (stride 1) have a
                // 2-node path, too short for a PHP tunnel interior.
                let stride = s0 + 2;
                (a as NodeId, ((a + stride) % n) as NodeId)
            }
        }
    }

    /// Validates the stride budget against the family width.
    fn check_strides(&self) -> Result<(), SignalError> {
        let n = self.anchors();
        let max = match self.family {
            // Stride must stay below half the anchor count so the
            // canonical shortest path agrees with the intended pair.
            ScaleFamily::FatTree { .. } => n.saturating_sub(1),
            ScaleFamily::RingOfRings { .. } => n / 2,
        };
        assert!(
            self.tunnel_strides >= 1 && u64::from(self.tunnel_strides) < max,
            "tunnel_strides {} out of range for {} anchors",
            self.tunnel_strides,
            n
        );
        Ok(())
    }

    /// The LER endpoints, tunnel slot and FEC of LSP `i` — a pure
    /// function of the spec.
    fn plan(&self, i: usize) -> LspPlan {
        let h = mix(self.seed ^ (i as u64).wrapping_mul(0x0123_4567_89AB_CDEF));
        let n = self.anchors();
        let strides = u64::from(self.tunnel_strides);
        let s0 = h % strides;
        let a = (h >> 8) % n;
        let (head, tail) = self.anchor_pair(s0, a);
        let (ingress, egress) = match self.family {
            ScaleFamily::FatTree { k, lers_per_edge } => {
                let half = u64::from(k) / 2;
                let ler_base = half * half + 2 * u64::from(k) * half;
                let edge_base = half * half + u64::from(k) * half;
                let lpe = u64::from(lers_per_edge);
                let ler = |edge: u64, j: u64| (ler_base + edge * lpe + j) as NodeId;
                (
                    ler(u64::from(head) - edge_base, (h >> 40) % lpe),
                    ler(u64::from(tail) - edge_base, (h >> 52) % lpe),
                )
            }
            ScaleFamily::RingOfRings { rings, ring_size } => {
                let r = u64::from(rings);
                let rs = u64::from(ring_size);
                let member = |gw: u64, j: u64| (r + gw * rs + j) as NodeId;
                (
                    member(u64::from(head), (h >> 40) % rs),
                    member(u64::from(tail), (h >> 52) % rs),
                )
            }
        };
        let slot = (s0 * n + a) as usize;
        LspPlan {
            ingress,
            egress,
            tunnel: slot,
            fec: Prefix::new(FEC_BASE.wrapping_add(i as u32), 32),
        }
    }

    /// Synthesizes the full workload: topology, tunnel mesh, every LSP
    /// (streamed — no request list is ever materialized), and the
    /// sampled traffic flows.
    pub fn build(&self) -> Result<ScaleWorkload, SignalError> {
        self.check_strides()?;
        assert!(self.lsps_total > 0, "lsps_total must be > 0");
        let mut cp = ControlPlane::new(self.topology());

        // Tunnel mesh: slot (s0, a) -> tunnel id, dense.
        let n = self.anchors();
        let mut tunnel_ids: Vec<TunnelId> =
            Vec::with_capacity((u64::from(self.tunnel_strides) * n) as usize);
        for s0 in 0..u64::from(self.tunnel_strides) {
            for a in 0..n {
                let (head, tail) = self.anchor_pair(s0, a);
                tunnel_ids.push(cp.establish_tunnel(head, tail, 0, None)?);
            }
        }

        // Streamed LSP bring-up: the request for LSP i is derived,
        // signaled and dropped before i+1 exists.
        for i in 0..self.lsps_total {
            let p = self.plan(i);
            let mut req = LspRequest::best_effort(p.ingress, p.egress, p.fec);
            req.php = true;
            cp.establish_lsp_via_tunnel(req, tunnel_ids[p.tunnel])?;
        }

        Ok(ScaleWorkload {
            cp,
            flows: self.flow_specs(),
            tunnels: tunnel_ids.len(),
            lsps: self.lsps_total,
        })
    }

    /// The traffic flows of the workload, without building the control
    /// plane. Flows ride a deterministic sample of the LSPs; each plan
    /// is recomputed from the same pure endpoint function, never stored.
    pub fn flow_specs(&self) -> Vec<FlowSpec> {
        let mut flows = Vec::with_capacity(self.flows);
        for f in 0..self.flows {
            let i =
                (mix(self.seed ^ 0xF10A ^ ((f as u64) << 32)) % self.lsps_total as u64) as usize;
            let p = self.plan(i);
            flows.push(FlowSpec {
                name: format!("scale-{f}"),
                ingress: p.ingress,
                src_addr: FLOW_SRC,
                dst_addr: p.fec.addr,
                payload_bytes: self.payload_bytes,
                precedence: 0,
                pattern: TrafficPattern::Cbr {
                    interval_ns: self.flow_interval_ns,
                },
                start_ns: self.flow_start_ns,
                stop_ns: self.flow_stop_ns,
                police: None,
            });
        }
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_spec(family: ScaleFamily, lsps: usize, seed: u64) -> ScaleSpec {
        ScaleSpec {
            family,
            lsps_total: lsps,
            tunnel_strides: 2,
            flows: 4,
            payload_bytes: 64,
            flow_interval_ns: 100_000,
            flow_start_ns: 0,
            flow_stop_ns: 1_000_000,
            bandwidth_bps: 1_000_000_000,
            delay_ns: 10_000,
            seed,
        }
    }

    #[test]
    fn fat_tree_workload_builds_and_routes() {
        let spec = small_spec(
            ScaleFamily::FatTree {
                k: 4,
                lers_per_edge: 2,
            },
            64,
            7,
        );
        let w = spec.build().unwrap();
        assert_eq!(w.lsps, 64);
        assert_eq!(w.tunnels, 2 * 8);
        assert_eq!(w.flows.len(), 4);
        for f in &w.flows {
            assert!(w.cp.topology().node(f.ingress).is_some());
        }
    }

    #[test]
    fn ring_of_rings_workload_builds_and_routes() {
        let spec = small_spec(
            ScaleFamily::RingOfRings {
                rings: 8,
                ring_size: 4,
            },
            64,
            7,
        );
        let w = spec.build().unwrap();
        assert_eq!(w.tunnels, 2 * 8);
        assert_eq!(w.flows.len(), 4);
    }

    #[test]
    fn one_fresh_label_per_tunneled_lsp() {
        // The whole point of the PHP + tunnel-head-preservation design:
        // LSP volume, not path length, bounds label consumption.
        let fam = ScaleFamily::FatTree {
            k: 4,
            lers_per_edge: 2,
        };
        let a = small_spec(fam, 50, 3).build().unwrap();
        let b = small_spec(fam, 100, 3).build().unwrap();
        let labels = |w: &ScaleWorkload| w.cp.labels_allocated();
        assert_eq!(
            labels(&b) - labels(&a),
            50,
            "each additional LSP costs exactly one label"
        );
    }

    proptest! {
        /// Same spec ⇒ byte-identical workload; the generator is a pure
        /// function of the spec (satellite d).
        #[test]
        fn generation_is_pure_seeded(
            seed in 0u64..1000,
            fam in 0u32..2,
            lsps in 1usize..48,
        ) {
            let family = if fam == 0 {
                ScaleFamily::FatTree { k: 4, lers_per_edge: 2 }
            } else {
                ScaleFamily::RingOfRings { rings: 6, ring_size: 3 }
            };
            let spec = small_spec(family, lsps, seed);
            let w1 = spec.build().unwrap();
            let w2 = spec.build().unwrap();
            prop_assert_eq!(format!("{:?}", w1.flows), format!("{:?}", w2.flows));
            for node in w1.cp.topology().nodes() {
                let c1 = format!("{:?}", w1.cp.config_for(node.id));
                let c2 = format!("{:?}", w2.cp.config_for(node.id));
                prop_assert_eq!(c1, c2, "config diverged at node {}", node.id);
            }
        }
    }
}
