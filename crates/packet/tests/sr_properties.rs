//! Segment-routing metadata wire-format property tests.
//!
//! The inline tests in `sr.rs` pin a handful of concrete encode/decode
//! cases; these properties pin the encodings over the whole input
//! space, through the actual RFC 3032 wire image: an entropy pair or
//! MNA sub-stack built below arbitrary transport SIDs must survive
//! `write_to`/`read_from` byte for byte, re-encode canonically,
//! reject truncation and out-of-range fields, and report its RLD
//! visibility at exactly the documented boundary.

use mpls_packet::label::LabelStackEntry;
use mpls_packet::sr::{
    ecmp_index, entropy_entries, entropy_label, find_entropy, is_metadata_indicator, parse_entropy,
    EntropyScan, MnaNas, SrError, MAX_OPCODE,
};
use mpls_packet::stack::LabelStack;
use mpls_packet::{CosBits, Label, MAX_STACK_DEPTH};
use proptest::prelude::*;

/// Transport labels that can never be mistaken for metadata
/// indicators: anything at or above the first unreserved label.
fn arb_sid() -> impl Strategy<Value = LabelStackEntry> {
    (
        Label::FIRST_UNRESERVED.value()..=Label::MAX,
        0u8..=7,
        any::<u8>(),
    )
        .prop_map(|(l, c, t)| {
            LabelStackEntry::new(Label::new(l).unwrap(), CosBits::new(c).unwrap(), false, t)
        })
}

/// An unreserved entropy label value, as `entropy_label` guarantees.
fn arb_el() -> impl Strategy<Value = Label> {
    (Label::FIRST_UNRESERVED.value()..=Label::MAX).prop_map(|v| Label::new(v).unwrap())
}

fn arb_nas() -> impl Strategy<Value = MnaNas> {
    (0u8..=MAX_OPCODE, 0u32..=Label::MAX).prop_map(|(op, data)| MnaNas::new(op, data).unwrap())
}

/// Encodes `entries` as a stack, round-trips the bytes, and returns
/// the parsed entries. Asserts the wire image is canonical: parsing
/// and re-encoding reproduces the original buffer exactly.
fn wire_round_trip(entries: &[LabelStackEntry]) -> Vec<LabelStackEntry> {
    let stack = LabelStack::from_entries(entries).unwrap();
    let mut buf = vec![0u8; stack.wire_len()];
    stack.write_to(&mut buf).unwrap();
    let (parsed, used) = LabelStack::read_from(&buf).unwrap();
    assert_eq!(used, buf.len());
    let mut again = vec![0u8; parsed.wire_len()];
    parsed.write_to(&mut again).unwrap();
    assert_eq!(buf, again, "re-encode is not canonical");
    parsed.entries().to_vec()
}

proptest! {
    /// RFC 6790: an entropy pair below any depth of transport SIDs
    /// survives the wire and scans back to the same entropy label —
    /// provided the RLD covers it. The pair sits at indices `k` and
    /// `k + 1` below `k` SIDs, so `rld >= k + 2` finds it and any
    /// shallower RLD reports `BeyondRld`, never a wrong label and
    /// never a silent miss.
    #[test]
    fn entropy_pair_round_trips_and_rld_gates_exactly(
        sids in proptest::collection::vec(arb_sid(), 0..MAX_STACK_DEPTH - 2),
        el in arb_el(),
        rld in 0usize..=MAX_STACK_DEPTH + 2,
    ) {
        let mut entries = sids.clone();
        entries.extend(entropy_entries(el, CosBits::BEST_EFFORT, 64));
        let parsed = wire_round_trip(&entries);
        prop_assert_eq!(parse_entropy(&parsed[sids.len()..]), Ok(el));
        let expected = if rld >= sids.len() + 2 {
            EntropyScan::Found(el)
        } else {
            EntropyScan::BeyondRld
        };
        prop_assert_eq!(find_entropy(&parsed, rld), expected);
    }

    /// A stack of pure transport SIDs carries no entropy pair: the
    /// scan reports `Absent` at every RLD, and no SID value aliases a
    /// metadata indicator.
    #[test]
    fn sid_only_stacks_scan_absent(
        sids in proptest::collection::vec(arb_sid(), 1..=MAX_STACK_DEPTH),
        rld in 0usize..=MAX_STACK_DEPTH,
    ) {
        let parsed = wire_round_trip(&sids);
        prop_assert_eq!(find_entropy(&parsed, rld), EntropyScan::Absent);
        for e in &parsed {
            prop_assert!(!is_metadata_indicator(e.label));
        }
    }

    /// The MNA sub-stack round-trips through the wire below arbitrary
    /// SIDs, and below the sub-stack an entropy pair is still found —
    /// the two encodings compose in the documented order.
    #[test]
    fn mna_and_entropy_compose_through_the_wire(
        sids in proptest::collection::vec(arb_sid(), 0..MAX_STACK_DEPTH - 5),
        nas in arb_nas(),
        el in arb_el(),
    ) {
        let mut entries = sids.clone();
        entries.extend(nas.entries(CosBits::BEST_EFFORT, 64));
        entries.extend(entropy_entries(el, CosBits::BEST_EFFORT, 64));
        let parsed = wire_round_trip(&entries);
        prop_assert_eq!(MnaNas::parse(&parsed[sids.len()..]), Ok(nas));
        prop_assert_eq!(
            find_entropy(&parsed, MAX_STACK_DEPTH + 1),
            EntropyScan::Found(el)
        );
        prop_assert!(is_metadata_indicator(parsed[sids.len()].label));
    }

    /// Truncated encodings are rejected with the exact need/have
    /// accounting — a decoder that reads past its slice or fabricates
    /// fields would fail this on every cut point.
    #[test]
    fn truncation_is_rejected_with_exact_counts(nas in arb_nas(), el in arb_el()) {
        let pair = entropy_entries(el, CosBits::BEST_EFFORT, 64);
        for have in 0..pair.len() {
            prop_assert_eq!(
                parse_entropy(&pair[..have]),
                Err(SrError::Truncated { what: "entropy pair", need: 2, have })
            );
        }
        let sub = nas.entries(CosBits::BEST_EFFORT, 64);
        for have in 0..sub.len() {
            prop_assert_eq!(
                MnaNas::parse(&sub[..have]),
                Err(SrError::Truncated { what: "MNA sub-stack", need: 3, have })
            );
        }
    }

    /// Out-of-range fields are rejected at both ends: the constructor
    /// refuses to build them, and the parser refuses wire images that
    /// smuggle them in anyway.
    #[test]
    fn out_of_range_fields_are_rejected(
        bad_op in (MAX_OPCODE as u32 + 1)..=Label::MAX,
        data in 0u32..=Label::MAX,
        reserved in 0u32..Label::FIRST_UNRESERVED.value(),
    ) {
        prop_assert!(MnaNas::new(MAX_OPCODE + 1, data).is_err());
        // Forge an opcode LSE beyond the 4-bit range on the "wire".
        let mut forged = MnaNas::new(0, data).unwrap().entries(CosBits::BEST_EFFORT, 64);
        forged[1].label = Label::new(bad_op).unwrap();
        prop_assert_eq!(MnaNas::parse(&forged), Err(SrError::OpcodeOutOfRange(bad_op)));
        // A reserved entropy label is forbidden by RFC 6790.
        let el = Label::from_masked(reserved);
        let pair = entropy_entries(el, CosBits::BEST_EFFORT, 64);
        prop_assert_eq!(parse_entropy(&pair), Err(SrError::ReservedEntropyLabel(el)));
        // The scanner treats the malformed pair as no pair at all
        // rather than hashing a reserved value.
        prop_assert_eq!(find_entropy(&pair, 16), EntropyScan::Absent);
    }

    /// A wrong indicator label fails both decoders without looking at
    /// the rest of the slice.
    #[test]
    fn wrong_indicator_is_rejected(top in arb_sid(), nas in arb_nas(), el in arb_el()) {
        let mut pair = entropy_entries(el, CosBits::BEST_EFFORT, 64);
        pair[0] = top;
        prop_assert_eq!(
            parse_entropy(&pair),
            Err(SrError::BadIndicator { what: "entropy pair", found: top.label })
        );
        let mut sub = nas.entries(CosBits::BEST_EFFORT, 64);
        sub[0] = top;
        prop_assert_eq!(
            MnaNas::parse(&sub),
            Err(SrError::BadIndicator { what: "MNA sub-stack", found: top.label })
        );
    }

    /// RFC 6790 §4.2: the ingress hash never produces a reserved
    /// label, is pure, and its ECMP projection stays in range for any
    /// fanout — the properties the dataplane's determinism and the
    /// shard-identity oracle lean on.
    #[test]
    fn entropy_label_is_unreserved_pure_and_in_range(
        src: u32, dst: u32, fanout in 1usize..=64,
    ) {
        let el = entropy_label(src, dst);
        prop_assert!(!el.is_reserved());
        prop_assert_eq!(el, entropy_label(src, dst));
        prop_assert!(ecmp_index(el.value(), fanout) < fanout);
    }
}
