//! LDP PDU wire-format property tests.
//!
//! The inline module tests pin the header layout and a handful of
//! malformed buffers; these properties sweep the whole message space:
//! encode/decode are exact inverses for every well-formed PDU, the
//! declared lengths always match the buffer, and *no* mutation of a
//! valid wire image can make the decoder panic — it either returns a
//! PDU or a [`PacketError`].

use mpls_packet::ldp::MAX_PATH_VECTOR;
use mpls_packet::{Label, LdpFec, LdpMessage, LdpPdu};
use proptest::prelude::*;

fn arb_fec() -> impl Strategy<Value = LdpFec> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| LdpFec { addr, len })
}

fn arb_label() -> impl Strategy<Value = Label> {
    (0u32..=Label::MAX).prop_map(|v| Label::new(v).unwrap())
}

fn arb_message() -> impl Strategy<Value = LdpMessage> {
    prop_oneof![
        any::<u32>().prop_map(|status| LdpMessage::Notification { status }),
        any::<u64>().prop_map(|hold_ns| LdpMessage::Hello { hold_ns }),
        any::<u64>().prop_map(|keepalive_ns| LdpMessage::Initialization { keepalive_ns }),
        Just(LdpMessage::KeepAlive),
        (
            arb_fec(),
            arb_label(),
            any::<u64>(),
            proptest::collection::vec(any::<u32>(), 0..16),
        )
            .prop_map(|(fec, label, cost, path)| LdpMessage::LabelMapping {
                fec,
                label,
                cost,
                path,
            }),
        (arb_fec(), arb_label()).prop_map(|(fec, label)| LdpMessage::LabelWithdraw { fec, label }),
        (arb_fec(), arb_label()).prop_map(|(fec, label)| LdpMessage::LabelRelease { fec, label }),
    ]
}

fn arb_pdu() -> impl Strategy<Value = LdpPdu> {
    (any::<u32>(), any::<u32>(), arb_message()).prop_map(|(lsr_id, msg_id, message)| LdpPdu {
        lsr_id,
        msg_id,
        message,
    })
}

proptest! {
    /// Every well-formed PDU round-trips exactly, and the encoding is as
    /// long as `wire_len` promises.
    #[test]
    fn encode_decode_round_trips(pdu in arb_pdu()) {
        let wire = pdu.encode();
        prop_assert_eq!(wire.len(), pdu.wire_len());
        let back = LdpPdu::decode(&wire).expect("own encoding decodes");
        prop_assert_eq!(back, pdu);
    }

    /// The PDU-length field counts every byte after itself; the message-
    /// length field every byte after itself. Checked on the raw bytes.
    #[test]
    fn declared_lengths_match_the_buffer(pdu in arb_pdu()) {
        let wire = pdu.encode();
        let pdu_len = u16::from_be_bytes([wire[2], wire[3]]) as usize;
        prop_assert_eq!(4 + pdu_len, wire.len());
        let msg_len = u16::from_be_bytes([wire[12], wire[13]]) as usize;
        prop_assert_eq!(14 + msg_len, wire.len());
    }

    /// Truncating a valid PDU anywhere yields an error, never a panic and
    /// never a bogus success (any strict prefix is missing declared
    /// bytes).
    #[test]
    fn every_truncation_is_rejected(pdu in arb_pdu(), cut in any::<u64>()) {
        let wire = pdu.encode();
        let cut = (cut % wire.len() as u64) as usize; // always a strict prefix
        prop_assert!(LdpPdu::decode(&wire[..cut]).is_err());
    }

    /// Flipping any single byte of a valid PDU never panics the decoder:
    /// it either errors or returns some well-formed PDU (a flip in, say,
    /// the msg-id field still decodes).
    #[test]
    fn byte_flips_never_panic(
        pdu in arb_pdu(),
        at in any::<u64>(),
        xor in 1u8..,
    ) {
        let mut wire = pdu.encode();
        let at = (at % wire.len() as u64) as usize;
        wire[at] ^= xor;
        if let Ok(decoded) = LdpPdu::decode(&wire) {
            // Whatever decoded must re-encode to the same bytes: the
            // accepted subset of the wire format is canonical.
            prop_assert_eq!(decoded.encode(), wire);
        }
    }

    /// Arbitrary byte soup never panics the decoder.
    #[test]
    fn random_buffers_never_panic(buf in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = LdpPdu::decode(&buf);
    }

    /// Trailing garbage after a complete PDU is rejected: one PDU per
    /// datagram, nothing rides along.
    #[test]
    fn trailing_bytes_are_rejected(pdu in arb_pdu(), extra in 1usize..8) {
        let mut wire = pdu.encode();
        wire.extend(std::iter::repeat_n(0xAB, extra));
        prop_assert!(LdpPdu::decode(&wire).is_err());
    }

    /// FEC prefix lengths above 32 and labels above 2^20-1 are rejected
    /// even when the buffer lengths are internally consistent.
    #[test]
    fn out_of_range_fields_are_rejected(
        pdu in (any::<u32>(), any::<u32>(), arb_fec(), arb_label(), any::<u64>())
            .prop_map(|(lsr_id, msg_id, fec, label, cost)| LdpPdu {
                lsr_id,
                msg_id,
                message: LdpMessage::LabelMapping { fec, label, cost, path: vec![] },
            }),
        bad_len in 33u8..,
        bad_label_bits in Label::MAX + 1..=u32::from_be_bytes([0xFF; 4]) >> 8,
    ) {
        let wire = pdu.encode();
        // Body starts at 18: fec addr (4), fec len (1), label (4).
        let mut bad_fec = wire.clone();
        bad_fec[22] = bad_len;
        prop_assert!(LdpPdu::decode(&bad_fec).is_err());
        let mut bad_label = wire.clone();
        bad_label[23..27].copy_from_slice(&bad_label_bits.to_be_bytes());
        prop_assert!(LdpPdu::decode(&bad_label).is_err());
    }
}

/// The encoder refuses path vectors longer than the decoder accepts, so
/// the two can never disagree about a legal PDU.
#[test]
fn oversized_path_vector_cannot_be_encoded() {
    let pdu = LdpPdu {
        lsr_id: 1,
        msg_id: 1,
        message: LdpMessage::LabelMapping {
            fec: LdpFec { addr: 0, len: 24 },
            label: Label::new(100).unwrap(),
            cost: 1,
            path: vec![7; MAX_PATH_VECTOR],
        },
    };
    // The longest legal vector still round-trips…
    let back = LdpPdu::decode(&pdu.encode()).unwrap();
    assert_eq!(back, pdu);
    // …and one more entry panics the encoder (a programming error, not
    // a wire condition).
    let too_long = LdpPdu {
        message: LdpMessage::LabelMapping {
            fec: LdpFec { addr: 0, len: 24 },
            label: Label::new(100).unwrap(),
            cost: 1,
            path: vec![7; MAX_PATH_VECTOR + 1],
        },
        ..pdu
    };
    assert!(std::panic::catch_unwind(|| too_long.encode()).is_err());
}
