//! RFC 3032 wire-format and TTL property tests.
//!
//! The inline module tests pin encode/decode as *inverses*; these
//! properties pin the wire image itself — S-bit placement byte for byte,
//! 20-bit label masking, parse termination at the bottom-of-stack marker —
//! and the RFC 3032 §2.4 TTL lifecycle: a packet with TTL `t` survives
//! exactly `t - 1` label-switched hops before it must be discarded.

use mpls_packet::label::LabelStackEntry;
use mpls_packet::stack::LabelStack;
use mpls_packet::{CosBits, Label, PacketError, MAX_STACK_DEPTH};
use proptest::prelude::*;

fn arb_entry() -> impl Strategy<Value = LabelStackEntry> {
    // Arbitrary S bits: the stack must ignore and recompute them.
    (0u32..=Label::MAX, 0u8..=7, any::<bool>(), any::<u8>()).prop_map(|(l, c, s, t)| {
        LabelStackEntry::new(Label::new(l).unwrap(), CosBits::new(c).unwrap(), s, t)
    })
}

fn arb_stack() -> impl Strategy<Value = LabelStack> {
    proptest::collection::vec(arb_entry(), 1..=MAX_STACK_DEPTH)
        .prop_map(|es| LabelStack::from_entries(&es).unwrap())
}

/// The S bit lives at bit 8 of the 32-bit word: byte 2, mask 0x01.
fn s_bit(word: &[u8]) -> bool {
    word[2] & 0x01 != 0
}

proptest! {
    /// RFC 3032 §2.1: "the bottom of stack bit ... is set to one for the
    /// last entry in the label stack, and zero for all other label stack
    /// entries." Checked on the raw bytes, not through the parser.
    #[test]
    fn s_bit_set_on_exactly_the_last_wire_word(s in arb_stack()) {
        let mut buf = vec![0u8; s.wire_len()];
        s.write_to(&mut buf).unwrap();
        let words: Vec<&[u8]> = buf.chunks(4).collect();
        for (i, w) in words.iter().enumerate() {
            prop_assert_eq!(
                s_bit(w),
                i + 1 == words.len(),
                "word {} of {}", i, words.len()
            );
        }
    }

    /// The 20-bit label field occupies the top 20 bits of the word; every
    /// encoded label reads back as `value & 0xF_FFFF` with no bleed into
    /// the CoS/S/TTL fields below it.
    #[test]
    fn label_field_is_masked_to_20_bits(raw: u32, cos in 0u8..=7, ttl: u8) {
        let e = LabelStackEntry::new(
            Label::from_masked(raw),
            CosBits::new(cos).unwrap(),
            false,
            ttl,
        );
        let mut buf = [0u8; 4];
        e.write_to(&mut buf).unwrap();
        let word = u32::from_be_bytes(buf);
        prop_assert_eq!(word >> 12, raw & Label::MAX);
        prop_assert_eq!(((word >> 9) & 0x7) as u8, cos);
        prop_assert_eq!((word & 0xFF) as u8, ttl);
    }

    /// RFC 3032 §2.1: parsing consumes entries only up to the first set S
    /// bit — whatever follows (the IP header, payload, garbage) is left
    /// untouched.
    #[test]
    fn parse_stops_at_bottom_of_stack(
        s in arb_stack(),
        trailing in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut buf = vec![0u8; s.wire_len()];
        s.write_to(&mut buf).unwrap();
        buf.extend_from_slice(&trailing);
        let (parsed, used) = LabelStack::read_from(&buf).unwrap();
        prop_assert_eq!(used, s.wire_len());
        prop_assert_eq!(parsed, s);
    }

    /// Corrupting an earlier word's S bit truncates the parsed stack at
    /// that word — the parser trusts the marker, never a length field.
    #[test]
    fn early_s_bit_truncates_the_parse(s in arb_stack(), cut in 0usize..MAX_STACK_DEPTH) {
        let depth = s.depth();
        let cut = cut % depth; // 0-based word whose S bit we force on
        let mut buf = vec![0u8; s.wire_len()];
        s.write_to(&mut buf).unwrap();
        buf[cut * 4 + 2] |= 0x01;
        let (parsed, used) = LabelStack::read_from(&buf).unwrap();
        prop_assert_eq!(used, (cut + 1) * 4);
        prop_assert_eq!(parsed.depth(), cut + 1);
        parsed.validate().unwrap();
        for (a, b) in parsed.entries().iter().zip(s.entries()) {
            prop_assert_eq!(a.label, b.label);
            prop_assert_eq!(a.ttl, b.ttl);
        }
    }

    /// A truncated final word (S bit never seen) must error, not read past
    /// the buffer or fabricate an entry.
    #[test]
    fn unterminated_stack_is_rejected(s in arb_stack(), drop in 1usize..=4) {
        let mut buf = vec![0u8; s.wire_len()];
        s.write_to(&mut buf).unwrap();
        // Clear every S bit, then shorten: the parser runs off the end.
        for i in 0..s.depth() {
            buf[i * 4 + 2] &= !0x01;
        }
        buf.truncate(buf.len() - drop);
        prop_assert!(matches!(
            LabelStack::read_from(&buf),
            Err(PacketError::Truncated { .. })
        ));
    }

    /// RFC 3032 §2.4.1: the TTL decrements by one per label-switched hop;
    /// "if the TTL is zero or one, the packet must be discarded." A packet
    /// entering with TTL `t` therefore survives exactly `t - 1` hops (or
    /// none at all for t ≤ 1), and expiry leaves the stack unmodified for
    /// the discard path to report.
    #[test]
    fn ttl_permits_exactly_ttl_minus_one_hops(
        s in arb_stack(),
        swaps in proptest::collection::vec(0u32..=Label::MAX, 1..8),
    ) {
        let mut stack = s.clone();
        let t0 = stack.top().unwrap().ttl;
        let mut hops = 0u32;
        let mut swap_iter = swaps.iter().cycle();
        loop {
            if stack.decrement_ttl().unwrap() {
                hops += 1;
                // A swap between decrements must not disturb the TTL run.
                stack.swap(Label::new(*swap_iter.next().unwrap()).unwrap()).unwrap();
                prop_assert!(hops <= 255, "runaway TTL loop");
            } else {
                break;
            }
        }
        prop_assert_eq!(hops, (t0 as u32).saturating_sub(1));
        // Expiry left the entry intact (TTL still 0 or 1, depth unchanged).
        prop_assert!(stack.top().unwrap().ttl <= 1);
        prop_assert_eq!(stack.depth(), s.depth());
    }

    /// Swap rewrites only the label: CoS ("not modified by the embedded
    /// implementation") and TTL carry through, and deeper entries never
    /// move.
    #[test]
    fn swap_preserves_cos_ttl_and_deeper_entries(s in arb_stack(), new in 0u32..=Label::MAX) {
        let mut stack = s.clone();
        let old_top = *stack.top().unwrap();
        let returned = stack.swap(Label::new(new).unwrap()).unwrap();
        prop_assert_eq!(returned, old_top);
        let top = *stack.top().unwrap();
        prop_assert_eq!(top.label.value(), new);
        prop_assert_eq!(top.cos, old_top.cos);
        prop_assert_eq!(top.ttl, old_top.ttl);
        prop_assert_eq!(&stack.entries()[1..], &s.entries()[1..]);
        stack.validate().unwrap();
    }
}
