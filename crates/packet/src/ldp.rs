//! LDP protocol data units: the wire format of the in-band label
//! distribution control plane (`mpls-ldp`).
//!
//! The layout follows RFC 5036 in miniature — a fixed PDU header
//! carrying the sender's LSR id, then exactly one message — with the
//! TLV machinery collapsed into fixed bodies per message type:
//!
//! ```text
//!  0      2      4           8       10      12     14          18
//! +------+------+-----------+-------+-------+------+-----------+----
//! | ver  | plen |  lsr id   | space | mtype | mlen |  msg id   | body
//! +------+------+-----------+-------+-------+------+-----------+----
//! ```
//!
//! `plen` counts every byte after itself, `mlen` every byte after
//! itself (both big-endian, as is the whole encoding). Label mapping
//! messages carry the advertised FEC element, the binding label, the
//! advertiser's cumulative cost to the FEC's egress, and the path
//! vector used for loop detection (RFC 5036 §2.8); withdraw and
//! release carry the FEC element and label only. Encode/decode
//! round-trip exactly and malformed buffers are rejected with a
//! [`PacketError`], never a panic — see the property tests in
//! `tests/ldp_properties.rs`.

use crate::{Label, PacketError};

/// LDP protocol version encoded in every PDU.
pub const LDP_VERSION: u16 = 1;

/// Longest path vector a mapping may carry. Loop detection discards
/// mappings before they grow anywhere near this, so the cap only guards
/// the decoder against absurd length fields.
pub const MAX_PATH_VECTOR: usize = 255;

/// Fixed header bytes before the message: version, PDU length, LSR id,
/// label space.
const PDU_HEADER: usize = 10;
/// Message type, message length, message id.
const MSG_HEADER: usize = 8;
/// FEC element: prefix address + prefix length.
const FEC_BYTES: usize = 5;

const MSG_NOTIFICATION: u16 = 0x0001;
const MSG_HELLO: u16 = 0x0100;
const MSG_INIT: u16 = 0x0200;
const MSG_KEEPALIVE: u16 = 0x0201;
const MSG_MAPPING: u16 = 0x0400;
const MSG_WITHDRAW: u16 = 0x0402;
const MSG_RELEASE: u16 = 0x0403;

/// One FEC prefix element as carried on the wire.
///
/// `mpls-packet` sits below the data-plane crates, so this is its own
/// five-byte (address, length) pair rather than a reuse of the FTN
/// `Prefix` type. `len` must be at most 32; the decoder rejects larger
/// values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LdpFec {
    /// Network-order prefix address.
    pub addr: u32,
    /// Prefix length in bits, `0..=32`.
    pub len: u8,
}

/// The message inside an LDP PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LdpMessage {
    /// Session error path (RFC 5036 §3.5.1 in miniature): the sender
    /// observed a fatal session condition — an out-of-sequence PDU, an
    /// undecodable PDU, or session traffic without a session — and both
    /// ends must tear down and re-initialize. Carries a status code.
    Notification {
        /// Status code describing the condition; semantics are assigned
        /// by the control plane (`mpls-ldp`).
        status: u32,
    },
    /// Link hello: discovers and refreshes the adjacency. Carries the
    /// hold time after which the adjacency expires without another
    /// hello.
    Hello {
        /// Adjacency hold time in nanoseconds.
        hold_ns: u64,
    },
    /// Session initialization (the active peer opens, the passive peer
    /// echoes). Carries the proposed keepalive hold time.
    Initialization {
        /// Session keepalive hold time in nanoseconds.
        keepalive_ns: u64,
    },
    /// Session keepalive: refreshes the hold timer when there is
    /// nothing else to say.
    KeepAlive,
    /// Downstream-unsolicited label mapping: "label `label` reaches
    /// `fec` through me at cost `cost`".
    LabelMapping {
        /// The advertised FEC.
        fec: LdpFec,
        /// The advertiser's label for the FEC (from its own space).
        label: Label,
        /// Cumulative link cost from the advertiser to the FEC egress.
        cost: u64,
        /// Path vector: the LSR ids the binding traversed, egress last.
        /// A receiver finding itself here discards the mapping.
        path: Vec<u32>,
    },
    /// The advertiser revokes a mapping previously sent.
    LabelWithdraw {
        /// The withdrawn FEC.
        fec: LdpFec,
        /// The label being withdrawn.
        label: Label,
    },
    /// The receiver of a mapping returns it (loop detected, or
    /// acknowledging a withdraw).
    LabelRelease {
        /// The released FEC.
        fec: LdpFec,
        /// The label being released.
        label: Label,
    },
}

impl LdpMessage {
    fn type_code(&self) -> u16 {
        match self {
            Self::Notification { .. } => MSG_NOTIFICATION,
            Self::Hello { .. } => MSG_HELLO,
            Self::Initialization { .. } => MSG_INIT,
            Self::KeepAlive => MSG_KEEPALIVE,
            Self::LabelMapping { .. } => MSG_MAPPING,
            Self::LabelWithdraw { .. } => MSG_WITHDRAW,
            Self::LabelRelease { .. } => MSG_RELEASE,
        }
    }

    fn body_len(&self) -> usize {
        match self {
            Self::Notification { .. } => 4,
            Self::Hello { .. } | Self::Initialization { .. } => 8,
            Self::KeepAlive => 0,
            Self::LabelMapping { path, .. } => FEC_BYTES + 4 + 8 + 2 + 4 * path.len(),
            Self::LabelWithdraw { .. } | Self::LabelRelease { .. } => FEC_BYTES + 4,
        }
    }

    /// True for session-forming and label-distribution messages — the
    /// ones whose in-flight presence means the protocol has not yet
    /// converged. Hellos and keepalives are steady-state chatter.
    pub fn is_protocol_work(&self) -> bool {
        !matches!(self, Self::Hello { .. } | Self::KeepAlive)
    }
}

/// One LDP PDU: the sending LSR plus a single message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdpPdu {
    /// The sender's LSR id (its node id).
    pub lsr_id: u32,
    /// Per-sender message sequence number.
    pub msg_id: u32,
    /// The message.
    pub message: LdpMessage,
}

impl LdpPdu {
    /// Bytes this PDU occupies on the wire.
    pub fn wire_len(&self) -> usize {
        PDU_HEADER + MSG_HEADER + self.message.body_len()
    }

    /// Encodes the PDU, big-endian throughout.
    ///
    /// # Panics
    ///
    /// If a mapping's path vector exceeds [`MAX_PATH_VECTOR`]; loop
    /// detection bounds real path vectors by the network diameter.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        let body_len = self.message.body_len();
        out.extend_from_slice(&LDP_VERSION.to_be_bytes());
        // PDU length: everything after the length field itself.
        out.extend_from_slice(&((6 + MSG_HEADER + body_len) as u16).to_be_bytes());
        out.extend_from_slice(&self.lsr_id.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes()); // platform-wide label space
        out.extend_from_slice(&self.message.type_code().to_be_bytes());
        // Message length: everything after the length field itself.
        out.extend_from_slice(&((4 + body_len) as u16).to_be_bytes());
        out.extend_from_slice(&self.msg_id.to_be_bytes());
        match &self.message {
            LdpMessage::Notification { status } => out.extend_from_slice(&status.to_be_bytes()),
            LdpMessage::Hello { hold_ns } => out.extend_from_slice(&hold_ns.to_be_bytes()),
            LdpMessage::Initialization { keepalive_ns } => {
                out.extend_from_slice(&keepalive_ns.to_be_bytes())
            }
            LdpMessage::KeepAlive => {}
            LdpMessage::LabelMapping {
                fec,
                label,
                cost,
                path,
            } => {
                assert!(
                    path.len() <= MAX_PATH_VECTOR,
                    "path vector exceeds {MAX_PATH_VECTOR}"
                );
                out.extend_from_slice(&fec.addr.to_be_bytes());
                out.push(fec.len);
                out.extend_from_slice(&label.value().to_be_bytes());
                out.extend_from_slice(&cost.to_be_bytes());
                out.extend_from_slice(&(path.len() as u16).to_be_bytes());
                for hop in path {
                    out.extend_from_slice(&hop.to_be_bytes());
                }
            }
            LdpMessage::LabelWithdraw { fec, label } | LdpMessage::LabelRelease { fec, label } => {
                out.extend_from_slice(&fec.addr.to_be_bytes());
                out.push(fec.len);
                out.extend_from_slice(&label.value().to_be_bytes());
            }
        }
        debug_assert_eq!(out.len(), self.wire_len());
        out
    }

    /// Decodes one PDU, rejecting truncation, bad versions, unknown
    /// message types, inconsistent length fields, out-of-range labels
    /// and prefix lengths, and oversized path vectors.
    pub fn decode(buf: &[u8]) -> Result<Self, PacketError> {
        let mut r = Reader::new(buf, "LDP PDU header");
        let version = r.u16()?;
        if version != LDP_VERSION {
            return Err(PacketError::BadLdpVersion(version));
        }
        let pdu_len = r.u16()? as usize;
        if pdu_len != buf.len() - 4 {
            return Err(PacketError::BadLdpLength {
                what: "PDU length",
                declared: pdu_len,
                actual: buf.len() - 4,
            });
        }
        let lsr_id = r.u32()?;
        let space = r.u16()?;
        if space != 0 {
            return Err(PacketError::BadLdpLabelSpace(space));
        }
        r.what = "LDP message header";
        let mtype = r.u16()?;
        let msg_len = r.u16()? as usize;
        if msg_len != r.remaining() {
            return Err(PacketError::BadLdpLength {
                what: "message length",
                declared: msg_len,
                actual: r.remaining(),
            });
        }
        let msg_id = r.u32()?;
        r.what = "LDP message body";
        let message = match mtype {
            MSG_NOTIFICATION => LdpMessage::Notification { status: r.u32()? },
            MSG_HELLO => LdpMessage::Hello { hold_ns: r.u64()? },
            MSG_INIT => LdpMessage::Initialization {
                keepalive_ns: r.u64()?,
            },
            MSG_KEEPALIVE => LdpMessage::KeepAlive,
            MSG_MAPPING => {
                let fec = r.fec()?;
                let label = Label::new(r.u32()?)?;
                let cost = r.u64()?;
                let count = r.u16()? as usize;
                if count > MAX_PATH_VECTOR {
                    return Err(PacketError::LdpPathVectorTooLong {
                        len: count,
                        max: MAX_PATH_VECTOR,
                    });
                }
                let mut path = Vec::with_capacity(count);
                for _ in 0..count {
                    path.push(r.u32()?);
                }
                LdpMessage::LabelMapping {
                    fec,
                    label,
                    cost,
                    path,
                }
            }
            MSG_WITHDRAW => LdpMessage::LabelWithdraw {
                fec: r.fec()?,
                label: Label::new(r.u32()?)?,
            },
            MSG_RELEASE => LdpMessage::LabelRelease {
                fec: r.fec()?,
                label: Label::new(r.u32()?)?,
            },
            other => return Err(PacketError::UnknownLdpMessage(other)),
        };
        if r.remaining() != 0 {
            return Err(PacketError::BadLdpLength {
                what: "message body",
                declared: msg_len,
                actual: msg_len + r.remaining(),
            });
        }
        Ok(Self {
            lsr_id,
            msg_id,
            message,
        })
    }
}

/// Cursor over the PDU bytes with truncation-checked reads.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], what: &'static str) -> Self {
        Self { buf, pos: 0, what }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PacketError> {
        if self.remaining() < n {
            return Err(PacketError::Truncated {
                what: self.what,
                need: self.pos + n,
                have: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, PacketError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, PacketError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PacketError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn fec(&mut self) -> Result<LdpFec, PacketError> {
        let addr = self.u32()?;
        let len = self.take(1)?[0];
        if len > 32 {
            return Err(PacketError::BadLdpFecLength(len));
        }
        Ok(LdpFec { addr, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pdu(message: LdpMessage) -> LdpPdu {
        LdpPdu {
            lsr_id: 7,
            msg_id: 42,
            message,
        }
    }

    #[test]
    fn every_message_round_trips() {
        let fec = LdpFec {
            addr: 0xc0a8_0100,
            len: 24,
        };
        let label = Label::new(1016).unwrap();
        for message in [
            LdpMessage::Notification { status: 2 },
            LdpMessage::Hello { hold_ns: 3_500_000 },
            LdpMessage::Initialization {
                keepalive_ns: 3_000_000,
            },
            LdpMessage::KeepAlive,
            LdpMessage::LabelMapping {
                fec,
                label,
                cost: 12,
                path: vec![3, 2, 1],
            },
            LdpMessage::LabelWithdraw { fec, label },
            LdpMessage::LabelRelease { fec, label },
        ] {
            let p = pdu(message);
            let wire = p.encode();
            assert_eq!(wire.len(), p.wire_len());
            assert_eq!(LdpPdu::decode(&wire).unwrap(), p);
        }
    }

    #[test]
    fn header_fields_are_where_the_rfc_puts_them() {
        let wire = pdu(LdpMessage::KeepAlive).encode();
        assert_eq!(&wire[0..2], &[0, 1], "version 1");
        assert_eq!(&wire[4..8], &7u32.to_be_bytes(), "LSR id");
        assert_eq!(&wire[8..10], &[0, 0], "platform label space");
        assert_eq!(&wire[10..12], &MSG_KEEPALIVE.to_be_bytes());
        // PDU length covers lsr id + space + message.
        let plen = u16::from_be_bytes([wire[2], wire[3]]) as usize;
        assert_eq!(plen, wire.len() - 4);
    }

    #[test]
    fn bad_version_and_type_are_rejected() {
        let mut wire = pdu(LdpMessage::KeepAlive).encode();
        wire[1] = 9;
        assert_eq!(LdpPdu::decode(&wire), Err(PacketError::BadLdpVersion(9)));
        let mut wire = pdu(LdpMessage::KeepAlive).encode();
        wire[10] = 0x7f;
        assert!(matches!(
            LdpPdu::decode(&wire),
            Err(PacketError::UnknownLdpMessage(_))
        ));
    }

    #[test]
    fn truncation_and_length_lies_are_rejected() {
        let wire = pdu(LdpMessage::Hello { hold_ns: 1 }).encode();
        for cut in 0..wire.len() {
            assert!(
                LdpPdu::decode(&wire[..cut]).is_err(),
                "decode of {cut}-byte prefix succeeded"
            );
        }
        // A PDU length that disagrees with the buffer.
        let mut lying = wire.clone();
        lying[3] = lying[3].wrapping_add(1);
        assert!(matches!(
            LdpPdu::decode(&lying),
            Err(PacketError::BadLdpLength { .. })
        ));
    }

    #[test]
    fn bad_fec_and_label_are_rejected() {
        let fec = LdpFec { addr: 1, len: 24 };
        let mut wire = pdu(LdpMessage::LabelWithdraw {
            fec,
            label: Label::new(16).unwrap(),
        })
        .encode();
        wire[PDU_HEADER + MSG_HEADER + 4] = 33; // FEC length
        assert_eq!(LdpPdu::decode(&wire), Err(PacketError::BadLdpFecLength(33)));
        let mut wire = pdu(LdpMessage::LabelWithdraw {
            fec,
            label: Label::new(16).unwrap(),
        })
        .encode();
        wire[PDU_HEADER + MSG_HEADER + FEC_BYTES] = 0xff; // label high byte
        assert!(matches!(
            LdpPdu::decode(&wire),
            Err(PacketError::LabelOutOfRange(_))
        ));
    }
}
