//! Minimal IPv4 header handling.
//!
//! The Label Edge Router needs just enough layer-3 awareness to extract the
//! *packet identifier* — "for IP packets, the packet identifier is typically
//! the destination address" (§3) — and to keep the IP TTL coherent when a
//! stack is pushed or fully popped. This module implements RFC 791 header
//! parse/serialize with checksum, without options reassembly or
//! fragmentation logic.

use crate::PacketError;
use serde::{Deserialize, Serialize};

/// An IPv4 address.
pub type Ipv4Addr = u32;

/// A parsed IPv4 header (fixed 20-byte form; options preserved as raw bytes
/// are out of scope — IHL > 5 headers are accepted and their options carried
/// opaquely by [`crate::MplsPacket`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// Differentiated services / TOS byte; its top 3 bits (IP precedence)
    /// seed the MPLS CoS at the ingress LER.
    pub tos: u8,
    /// Total length of header + payload in bytes.
    pub total_len: u16,
    /// Identification field.
    pub ident: u16,
    /// Flags (3 bits) and fragment offset (13 bits), packed.
    pub flags_frag: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol (6 = TCP, 17 = UDP, ...).
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address — the MPLS packet identifier.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Length of the option-free header on the wire.
    pub const WIRE_LEN: usize = 20;

    /// UDP protocol number.
    pub const PROTO_UDP: u8 = 17;
    /// TCP protocol number.
    pub const PROTO_TCP: u8 = 6;

    /// Builds a header for a payload of `payload_len` bytes.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, ttl: u8, payload_len: usize) -> Self {
        Self {
            tos: 0,
            total_len: (Self::WIRE_LEN + payload_len) as u16,
            ident: 0,
            flags_frag: 0,
            ttl,
            protocol,
            src,
            dst,
        }
    }

    /// The IP precedence bits (top 3 of TOS), used to derive the MPLS CoS.
    pub fn precedence(&self) -> u8 {
        self.tos >> 5
    }

    /// Serializes the header (IHL = 5) with a correct checksum.
    pub fn write_to(&self, buf: &mut [u8]) -> Result<(), PacketError> {
        if buf.len() < Self::WIRE_LEN {
            return Err(PacketError::Truncated {
                what: "IPv4 header",
                need: Self::WIRE_LEN,
                have: buf.len(),
            });
        }
        buf[0] = 0x45; // version 4, IHL 5
        buf[1] = self.tos;
        buf[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        buf[4..6].copy_from_slice(&self.ident.to_be_bytes());
        buf[6..8].copy_from_slice(&self.flags_frag.to_be_bytes());
        buf[8] = self.ttl;
        buf[9] = self.protocol;
        buf[10..12].copy_from_slice(&[0, 0]);
        buf[12..16].copy_from_slice(&self.src.to_be_bytes());
        buf[16..20].copy_from_slice(&self.dst.to_be_bytes());
        let csum = checksum(&buf[..Self::WIRE_LEN]);
        buf[10..12].copy_from_slice(&csum.to_be_bytes());
        Ok(())
    }

    /// Parses a header, verifying version and IHL. Returns the header and
    /// the header length in bytes (IHL * 4, to let callers skip options).
    pub fn read_from(buf: &[u8]) -> Result<(Self, usize), PacketError> {
        if buf.len() < Self::WIRE_LEN {
            return Err(PacketError::Truncated {
                what: "IPv4 header",
                need: Self::WIRE_LEN,
                have: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(PacketError::BadIpVersion(version));
        }
        let ihl = buf[0] & 0x0f;
        if ihl < 5 {
            return Err(PacketError::BadIhl(ihl));
        }
        let hdr_len = ihl as usize * 4;
        if buf.len() < hdr_len {
            return Err(PacketError::Truncated {
                what: "IPv4 options",
                need: hdr_len,
                have: buf.len(),
            });
        }
        Ok((
            Self {
                tos: buf[1],
                total_len: u16::from_be_bytes([buf[2], buf[3]]),
                ident: u16::from_be_bytes([buf[4], buf[5]]),
                flags_frag: u16::from_be_bytes([buf[6], buf[7]]),
                ttl: buf[8],
                protocol: buf[9],
                src: u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]),
                dst: u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]]),
            },
            hdr_len,
        ))
    }
}

/// The RFC 1071 Internet checksum over `data` (checksum field assumed zero
/// or included — callers zero it before computing).
pub fn checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(*last) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Formats an [`Ipv4Addr`] in dotted-quad notation.
pub fn fmt_addr(a: Ipv4Addr) -> String {
    let b = a.to_be_bytes();
    format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
}

/// Parses a dotted-quad address; helper for examples and tests.
pub fn parse_addr(s: &str) -> Option<Ipv4Addr> {
    let mut parts = s.split('.');
    let mut bytes = [0u8; 4];
    for b in &mut bytes {
        *b = parts.next()?.parse().ok()?;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(u32::from_be_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip() {
        let h = Ipv4Header::new(
            parse_addr("10.0.0.1").unwrap(),
            parse_addr("192.168.1.7").unwrap(),
            Ipv4Header::PROTO_UDP,
            64,
            100,
        );
        let mut buf = [0u8; 20];
        h.write_to(&mut buf).unwrap();
        let (parsed, len) = Ipv4Header::read_from(&buf).unwrap();
        assert_eq!(len, 20);
        assert_eq!(parsed, h);
    }

    #[test]
    fn checksum_verifies() {
        let h = Ipv4Header::new(1, 2, 6, 64, 0);
        let mut buf = [0u8; 20];
        h.write_to(&mut buf).unwrap();
        // Checksum over a header including its checksum field is zero.
        assert_eq!(checksum(&buf), 0);
    }

    #[test]
    fn checksum_odd_length() {
        // RFC 1071 example-style sanity: padding with a virtual zero byte.
        assert_eq!(checksum(&[0x00, 0x01, 0xf2]), !(0x0001u16 + 0xf200));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = [0u8; 20];
        buf[0] = 0x65; // version 6
        assert_eq!(
            Ipv4Header::read_from(&buf).unwrap_err(),
            PacketError::BadIpVersion(6)
        );
    }

    #[test]
    fn rejects_short_ihl() {
        let mut buf = [0u8; 20];
        buf[0] = 0x44;
        assert_eq!(
            Ipv4Header::read_from(&buf).unwrap_err(),
            PacketError::BadIhl(4)
        );
    }

    #[test]
    fn accepts_options_by_skipping() {
        let h = Ipv4Header::new(1, 2, 6, 64, 0);
        let mut buf = [0u8; 24];
        h.write_to(&mut buf).unwrap();
        buf[0] = 0x46; // IHL 6: one option word
        let (_, len) = Ipv4Header::read_from(&buf).unwrap();
        assert_eq!(len, 24);
    }

    #[test]
    fn addr_formatting() {
        let a = parse_addr("172.16.254.3").unwrap();
        assert_eq!(fmt_addr(a), "172.16.254.3");
        assert!(parse_addr("1.2.3").is_none());
        assert!(parse_addr("1.2.3.4.5").is_none());
        assert!(parse_addr("1.2.3.999").is_none());
    }

    #[test]
    fn precedence_from_tos() {
        let mut h = Ipv4Header::new(1, 2, 6, 64, 0);
        h.tos = 0b101_00000;
        assert_eq!(h.precedence(), 5);
    }

    proptest! {
        #[test]
        fn header_round_trip(src: u32, dst: u32, tos: u8, ttl: u8, proto: u8, ident: u16, plen in 0usize..1400) {
            let mut h = Ipv4Header::new(src, dst, proto, ttl, plen);
            h.tos = tos;
            h.ident = ident;
            let mut buf = [0u8; 20];
            h.write_to(&mut buf).unwrap();
            let (parsed, _) = Ipv4Header::read_from(&buf).unwrap();
            prop_assert_eq!(parsed, h);
            prop_assert_eq!(checksum(&buf), 0);
        }

        #[test]
        fn addr_round_trip(a: u32) {
            prop_assert_eq!(parse_addr(&fmt_addr(a)), Some(a));
        }
    }
}
