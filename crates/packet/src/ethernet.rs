//! Minimal Ethernet II framing.
//!
//! LERs sit "between layer 2 networks (ATM, Frame Relay or Ethernet) and an
//! MPLS core network" (§2). We model the Ethernet case: the MPLS shim sits
//! between the Ethernet header (EtherType `0x8847`) and the IP payload. The
//! ATM / Frame Relay attachment circuits of Fig. 1 are modeled at the
//! network-simulator level as link types rather than distinct encodings.

use crate::PacketError;
use serde::{Deserialize, Serialize};

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A deterministic locally-administered address derived from a node id;
    /// used by the simulator to give every port a distinct MAC.
    pub fn from_node(node: u32, port: u8) -> Self {
        let n = node.to_be_bytes();
        MacAddr([0x02, n[0], n[1], n[2], n[3], port])
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values the MPLS data plane cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EtherType {
    /// Plain IPv4 (`0x0800`) — an unlabeled packet arriving at an LER.
    Ipv4,
    /// MPLS unicast (`0x8847`) — a labeled packet inside the core.
    MplsUnicast,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// Wire value.
    pub const fn value(self) -> u16 {
        match self {
            Self::Ipv4 => 0x0800,
            Self::MplsUnicast => 0x8847,
            Self::Other(v) => v,
        }
    }

    /// From wire value.
    pub const fn from_value(v: u16) -> Self {
        match v {
            0x0800 => Self::Ipv4,
            0x8847 => Self::MplsUnicast,
            other => Self::Other(other),
        }
    }
}

/// An Ethernet II header (no VLAN tags, no FCS — the simulator's links are
/// error-free, so the 4-byte CRC is omitted as pure overhead accounting,
/// which the byte-length helpers include instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload type.
    pub ethertype: EtherType,
}

impl EthernetFrame {
    /// Header length on the wire.
    pub const WIRE_LEN: usize = 14;

    /// Serializes the header.
    pub fn write_to(&self, buf: &mut [u8]) -> Result<(), PacketError> {
        if buf.len() < Self::WIRE_LEN {
            return Err(PacketError::Truncated {
                what: "Ethernet header",
                need: Self::WIRE_LEN,
                have: buf.len(),
            });
        }
        buf[0..6].copy_from_slice(&self.dst.0);
        buf[6..12].copy_from_slice(&self.src.0);
        buf[12..14].copy_from_slice(&self.ethertype.value().to_be_bytes());
        Ok(())
    }

    /// Parses the header, returning it and the fixed header length.
    pub fn read_from(buf: &[u8]) -> Result<(Self, usize), PacketError> {
        if buf.len() < Self::WIRE_LEN {
            return Err(PacketError::Truncated {
                what: "Ethernet header",
                need: Self::WIRE_LEN,
                have: buf.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        Ok((
            Self {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype: EtherType::from_value(u16::from_be_bytes([buf[12], buf[13]])),
            },
            Self::WIRE_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethertype_round_trip() {
        for t in [
            EtherType::Ipv4,
            EtherType::MplsUnicast,
            EtherType::Other(0x86dd),
        ] {
            assert_eq!(EtherType::from_value(t.value()), t);
        }
        assert_eq!(EtherType::from_value(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_value(0x8847), EtherType::MplsUnicast);
    }

    #[test]
    fn frame_round_trip() {
        let f = EthernetFrame {
            dst: MacAddr::from_node(7, 1),
            src: MacAddr::from_node(3, 0),
            ethertype: EtherType::MplsUnicast,
        };
        let mut buf = [0u8; 14];
        f.write_to(&mut buf).unwrap();
        let (parsed, len) = EthernetFrame::read_from(&buf).unwrap();
        assert_eq!(len, 14);
        assert_eq!(parsed, f);
    }

    #[test]
    fn node_macs_are_distinct_and_local() {
        let a = MacAddr::from_node(1, 0);
        let b = MacAddr::from_node(1, 1);
        let c = MacAddr::from_node(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // locally administered, unicast
        assert_eq!(a.0[0] & 0x03, 0x02);
    }

    #[test]
    fn truncated_frame() {
        let buf = [0u8; 13];
        assert!(matches!(
            EthernetFrame::read_from(&buf),
            Err(PacketError::Truncated { .. })
        ));
    }

    #[test]
    fn mac_display() {
        assert_eq!(
            MacAddr([0xde, 0xad, 0xbe, 0xef, 0, 1]).to_string(),
            "de:ad:be:ef:00:01"
        );
    }
}
