//! Segment-routing metadata label stack entries: the RFC 6790 entropy
//! label pair and a minimal MPLS Network Actions (MNA) sub-stack.
//!
//! Both ride *below* the node-SID transport labels of a segment-routed
//! source route, so they survive every NEXT (pop) operation until the
//! final segment endpoint strips them:
//!
//! ```text
//!  top  +----------------+
//!       |  SID  (seg 1)  |   transport: popped/continued per segment
//!       |  SID  (seg 2)  |
//!       |      ...       |
//!       |  bSPL     (4)  |   MNA network action sub-stack (optional)
//!       |  opcode LSE    |
//!       |  ancillary LSE |
//!       |  ELI      (7)  |   entropy pair (optional, RFC 6790)
//!  bot  |  EL            |
//!       +----------------+
//! ```
//!
//! Transit routers hash the entropy label — and only the entropy label —
//! to pick among equal-cost next hops, but may only scan the stack down
//! to their Readable Label Depth (RLD). [`find_entropy`] models exactly
//! that: an entropy pair deeper than the RLD is reported as
//! [`EntropyScan::BeyondRld`] so the data plane can count the violation
//! and fall back to its canonical next hop.
//!
//! The MNA encoding is a deliberately minimal rendition of
//! draft-ietf-mpls-mna-hdr: an indicator LSE carrying
//! [`Label::MNA_BSPL`], one in-stack action LSE whose label field holds a
//! 4-bit opcode, and one ancillary-data LSE whose label field carries 20
//! bits of action data.

use crate::error::PacketError;
use crate::label::{CosBits, Label, LabelStackEntry, Ttl};

/// Number of LSEs an encoded entropy pair occupies (ELI + EL).
pub const ENTROPY_LEN: usize = 2;

/// Number of LSEs an encoded MNA sub-stack occupies (bSPL + opcode +
/// ancillary data).
pub const MNA_LEN: usize = 3;

/// Largest in-stack action opcode (4 bits).
pub const MAX_OPCODE: u8 = 15;

/// Decode failures of the segment-routing metadata encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrError {
    /// Fewer LSEs than the encoding needs.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// LSEs required.
        need: usize,
        /// LSEs present.
        have: usize,
    },
    /// The first LSE does not carry the expected indicator label.
    BadIndicator {
        /// What was being decoded.
        what: &'static str,
        /// The label actually found.
        found: Label,
    },
    /// The action LSE's opcode exceeds [`MAX_OPCODE`].
    OpcodeOutOfRange(u32),
    /// The entropy label is a reserved value (RFC 6790 forbids them).
    ReservedEntropyLabel(Label),
}

impl core::fmt::Display for SrError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SrError::Truncated { what, need, have } => {
                write!(f, "truncated {what}: need {need} LSEs, have {have}")
            }
            SrError::BadIndicator { what, found } => {
                write!(
                    f,
                    "{what} does not start with its indicator (found {found})"
                )
            }
            SrError::OpcodeOutOfRange(op) => write!(f, "MNA opcode {op} exceeds {MAX_OPCODE}"),
            SrError::ReservedEntropyLabel(l) => write!(f, "entropy label {l} is reserved"),
        }
    }
}

impl std::error::Error for SrError {}

/// `splitmix64` finalizer — the workspace's standard bit mixer.
const fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Computes the entropy label for a flow, per RFC 6790 §4.2: the ingress
/// LER hashes whatever flow keys it likes into one label so transit
/// routers need not look past the stack. Here the keys are the IPv4
/// source and destination addresses. The result is always outside the
/// reserved range, and the function is pure — the same flow hashes to
/// the same label on every shard, engine and run.
pub fn entropy_label(src: u32, dst: u32) -> Label {
    let h = mix64(((src as u64) << 32) | dst as u64);
    fold_unreserved(h as u32)
}

/// Truncates an arbitrary hash to label width and folds it out of the
/// reserved range. RFC 6790 §4.2 forbids reserved values (0–15) as
/// entropy labels, but `hash & Label::MAX` alone can land on them 16
/// times in 2^20 — those collapse onto the first 16 unreserved labels
/// instead. The fold never overflows label width: a reserved value is
/// < 16, so the shifted result is at most 31.
pub fn fold_unreserved(hash: u32) -> Label {
    let v = hash & Label::MAX;
    if v < Label::FIRST_UNRESERVED.value() {
        Label::from_masked(v + Label::FIRST_UNRESERVED.value())
    } else {
        Label::from_masked(v)
    }
}

/// Picks an equal-cost member from the entropy label value alone. The
/// label is re-mixed first so that consecutive label values spread over
/// the members instead of striding.
pub fn ecmp_index(entropy: u32, fanout: usize) -> usize {
    debug_assert!(fanout > 0);
    (mix64(entropy as u64) % fanout as u64) as usize
}

/// Encodes an entropy pair: the ELI followed by the entropy label.
/// Bottom bits are left clear; pushing through
/// [`crate::LabelStack::push`] re-establishes the S-bit invariant.
pub fn entropy_entries(el: Label, cos: CosBits, ttl: Ttl) -> [LabelStackEntry; ENTROPY_LEN] {
    [
        LabelStackEntry::new(Label::ENTROPY_INDICATOR, cos, false, ttl),
        LabelStackEntry::new(el, cos, false, ttl),
    ]
}

/// Decodes an entropy pair from the top of `entries`.
pub fn parse_entropy(entries: &[LabelStackEntry]) -> Result<Label, SrError> {
    if entries.len() < ENTROPY_LEN {
        return Err(SrError::Truncated {
            what: "entropy pair",
            need: ENTROPY_LEN,
            have: entries.len(),
        });
    }
    if entries[0].label != Label::ENTROPY_INDICATOR {
        return Err(SrError::BadIndicator {
            what: "entropy pair",
            found: entries[0].label,
        });
    }
    let el = entries[1].label;
    if el.is_reserved() {
        return Err(SrError::ReservedEntropyLabel(el));
    }
    Ok(el)
}

/// What scanning a stack for its entropy label found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntropyScan {
    /// A valid entropy pair, fully within the readable label depth.
    Found(Label),
    /// An entropy pair exists but (part of) it sits below the readable
    /// label depth — the router cannot hash it and must count an RLD
    /// violation.
    BeyondRld,
    /// No entropy pair in the stack.
    Absent,
}

/// Scans top-first `entries` for an RFC 6790 entropy pair, honoring a
/// readable label depth of `rld` entries: both the ELI and the EL must
/// sit within the first `rld` entries to be usable.
///
/// An MNA sub-stack is skipped whole when its bSPL is seen: the
/// in-stack opcode LSE can legitimately carry the value 7 (and the
/// ancillary LSE any 20-bit value), so scanning *into* the sub-stack
/// would mistake opcode 7 for an ELI and hash the ancillary data.
/// The skipped LSEs still consume readable depth — the router read
/// them to get past them.
pub fn find_entropy(entries: &[LabelStackEntry], rld: usize) -> EntropyScan {
    let mut i = 0;
    while let Some(e) = entries.get(i) {
        if e.label == Label::MNA_BSPL {
            i += MNA_LEN;
            continue;
        }
        if e.label != Label::ENTROPY_INDICATOR {
            i += 1;
            continue;
        }
        let Some(el) = entries.get(i + 1) else {
            return EntropyScan::Absent;
        };
        if el.label.is_reserved() {
            return EntropyScan::Absent;
        }
        if i + 1 < rld {
            return EntropyScan::Found(el.label);
        }
        return EntropyScan::BeyondRld;
    }
    EntropyScan::Absent
}

/// A minimal MPLS network action sub-stack: one in-stack action opcode
/// plus one LSE of ancillary data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MnaNas {
    /// 4-bit action opcode.
    pub opcode: u8,
    /// 20 bits of ancillary data.
    pub data: u32,
}

impl MnaNas {
    /// Creates a network action sub-stack, validating field widths.
    pub fn new(opcode: u8, data: u32) -> Result<Self, PacketError> {
        if opcode > MAX_OPCODE {
            return Err(PacketError::LabelOutOfRange(opcode as u32));
        }
        if data > Label::MAX {
            return Err(PacketError::LabelOutOfRange(data));
        }
        Ok(Self { opcode, data })
    }

    /// Encodes the sub-stack: bSPL indicator, action LSE, ancillary LSE.
    pub fn entries(self, cos: CosBits, ttl: Ttl) -> [LabelStackEntry; MNA_LEN] {
        [
            LabelStackEntry::new(Label::MNA_BSPL, cos, false, ttl),
            LabelStackEntry::new(Label::from_masked(self.opcode as u32), cos, false, ttl),
            LabelStackEntry::new(Label::from_masked(self.data), cos, false, ttl),
        ]
    }

    /// Decodes a sub-stack from the top of `entries`.
    pub fn parse(entries: &[LabelStackEntry]) -> Result<Self, SrError> {
        if entries.len() < MNA_LEN {
            return Err(SrError::Truncated {
                what: "MNA sub-stack",
                need: MNA_LEN,
                have: entries.len(),
            });
        }
        if entries[0].label != Label::MNA_BSPL {
            return Err(SrError::BadIndicator {
                what: "MNA sub-stack",
                found: entries[0].label,
            });
        }
        let op = entries[1].label.value();
        if op > MAX_OPCODE as u32 {
            return Err(SrError::OpcodeOutOfRange(op));
        }
        Ok(Self {
            opcode: op as u8,
            data: entries[2].label.value(),
        })
    }
}

/// True when `label` marks segment-routing metadata (an entropy pair or
/// an MNA sub-stack) rather than a forwarding label. A segment endpoint
/// whose NEXT operation exposes one of these owns the rest of the stack.
pub fn is_metadata_indicator(label: Label) -> bool {
    label == Label::ENTROPY_INDICATOR || label == Label::MNA_BSPL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_labels_are_unreserved_and_deterministic() {
        let a = entropy_label(0x0a00_0001, 0x0a00_0002);
        let b = entropy_label(0x0a00_0001, 0x0a00_0002);
        assert_eq!(a, b);
        assert!(!a.is_reserved());
        // Different flows should (for these inputs) hash differently.
        assert_ne!(a, entropy_label(0x0a00_0002, 0x0a00_0001));
    }

    #[test]
    fn fold_is_exhaustively_unreserved_over_the_masked_range() {
        // Every 20-bit truncation, including all 16 reserved values and
        // both boundaries, must come out unreserved and in label range.
        for v in 0..=Label::MAX {
            let l = fold_unreserved(v);
            assert!(!l.is_reserved(), "hash {v:#07x} folded to reserved {l}");
            assert!(l.value() <= Label::MAX);
            if v >= Label::FIRST_UNRESERVED.value() {
                assert_eq!(l.value(), v, "unreserved values must pass unchanged");
            } else {
                assert_eq!(
                    l.value(),
                    v + Label::FIRST_UNRESERVED.value(),
                    "reserved values must shift onto the first unreserved block"
                );
            }
        }
        // Bits above label width are truncated, not folded twice.
        assert_eq!(fold_unreserved(u32::MAX).value(), Label::MAX);
        assert_eq!(
            fold_unreserved(0xFFF0_0000),
            fold_unreserved(0),
            "only the low 20 bits may matter"
        );
    }

    #[test]
    fn entropy_pair_round_trip() {
        let el = entropy_label(1, 2);
        let e = entropy_entries(el, CosBits::BEST_EFFORT, 64);
        assert_eq!(parse_entropy(&e), Ok(el));
        assert!(matches!(
            parse_entropy(&e[..1]),
            Err(SrError::Truncated {
                need: 2,
                have: 1,
                ..
            })
        ));
        assert!(matches!(
            parse_entropy(&[e[1], e[1]]),
            Err(SrError::BadIndicator { .. })
        ));
    }

    #[test]
    fn rld_gates_the_entropy_scan() {
        let el = entropy_label(7, 9);
        let mut entries = vec![
            LabelStackEntry::new(Label::new(17).unwrap(), CosBits::BEST_EFFORT, false, 64),
            LabelStackEntry::new(Label::new(18).unwrap(), CosBits::BEST_EFFORT, false, 64),
        ];
        entries.extend(entropy_entries(el, CosBits::BEST_EFFORT, 64));
        // Pair occupies indices 2 and 3: readable at rld >= 4 only.
        assert_eq!(find_entropy(&entries, 4), EntropyScan::Found(el));
        assert_eq!(find_entropy(&entries, 3), EntropyScan::BeyondRld);
        assert_eq!(find_entropy(&entries, 2), EntropyScan::BeyondRld);
        assert_eq!(find_entropy(&entries[..2], 4), EntropyScan::Absent);
    }

    #[test]
    fn entropy_scan_skips_an_mna_substack() {
        // Opcode 7 aliases the ELI value; the scan must not read it.
        let nas = MnaNas::new(7, 0x12345).unwrap();
        let mut entries = nas.entries(CosBits::BEST_EFFORT, 64).to_vec();
        let el = entropy_label(3, 4);
        entries.extend(entropy_entries(el, CosBits::BEST_EFFORT, 64));
        // Real pair sits at indices 3 and 4, below the sub-stack.
        assert_eq!(find_entropy(&entries, 8), EntropyScan::Found(el));
        assert_eq!(find_entropy(&entries, 4), EntropyScan::BeyondRld);
        // Sub-stack alone: no pair, even with opcode 7 in the stack.
        let sub = nas.entries(CosBits::BEST_EFFORT, 64);
        assert_eq!(find_entropy(&sub, 8), EntropyScan::Absent);
    }

    #[test]
    fn mna_round_trip_and_rejection() {
        let nas = MnaNas::new(5, 0xABCDE).unwrap();
        let e = nas.entries(CosBits::BEST_EFFORT, 64);
        assert_eq!(MnaNas::parse(&e), Ok(nas));
        assert!(MnaNas::new(16, 0).is_err());
        assert!(MnaNas::new(0, Label::MAX + 1).is_err());
        let mut bad = e;
        bad[1].label = Label::new(16).unwrap();
        assert_eq!(MnaNas::parse(&bad), Err(SrError::OpcodeOutOfRange(16)));
        assert!(matches!(
            MnaNas::parse(&e[..2]),
            Err(SrError::Truncated {
                need: 3,
                have: 2,
                ..
            })
        ));
    }

    #[test]
    fn ecmp_index_is_in_range() {
        for fanout in 1..6usize {
            for el in [16u32, 17, 9999, Label::MAX] {
                assert!(ecmp_index(el, fanout) < fanout);
            }
        }
    }
}
