//! The 20-bit MPLS label and the 32-bit label stack entry (paper Fig. 5,
//! RFC 3032 §2.1).
//!
//! Bit layout of an entry, most significant bit first:
//!
//! ```text
//!  31                 12 11    9   8  7        0
//! +---------------------+-------+---+-----------+
//! |        label        |  CoS  | S |    TTL    |
//! +---------------------+-------+---+-----------+
//!        20 bits          3 bits  1     8 bits
//! ```

use crate::PacketError;
use serde::{Deserialize, Serialize};

/// A 20-bit MPLS label value.
///
/// The embedded architecture compares labels with a dedicated 20-bit
/// comparator, so the type guarantees the invariant `value < 2^20` at
/// construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Label(u32);

impl Label {
    /// Number of value bits in a label.
    pub const BITS: u32 = 20;
    /// Largest representable label, `2^20 - 1`.
    pub const MAX: u32 = (1 << Self::BITS) - 1;

    /// "IPv4 Explicit NULL": pop and deliver to IPv4 (RFC 3032 §2.1).
    pub const IPV4_EXPLICIT_NULL: Label = Label(0);
    /// "Router Alert" reserved label.
    pub const ROUTER_ALERT: Label = Label(1);
    /// "IPv6 Explicit NULL" reserved label.
    pub const IPV6_EXPLICIT_NULL: Label = Label(2);
    /// "Implicit NULL": signalled but never on the wire; requests
    /// penultimate hop popping.
    pub const IMPLICIT_NULL: Label = Label(3);
    /// MPLS Network Actions base Special Purpose Label (bSPL): marks the
    /// start of a network action sub-stack (see [`crate::sr`]).
    pub const MNA_BSPL: Label = Label(4);
    /// Entropy Label Indicator of RFC 6790: the next stack entry carries
    /// an entropy label for load balancing, not a forwarding label.
    pub const ENTROPY_INDICATOR: Label = Label(7);
    /// First label outside the IETF reserved range `0..=15`.
    pub const FIRST_UNRESERVED: Label = Label(16);

    /// Creates a label, rejecting values that do not fit in 20 bits.
    pub const fn new(value: u32) -> Result<Self, PacketError> {
        if value > Self::MAX {
            Err(PacketError::LabelOutOfRange(value))
        } else {
            Ok(Self(value))
        }
    }

    /// Creates a label, masking the value to 20 bits.
    ///
    /// Used where the hardware model reads a label bus whose upper bits are
    /// "ignored" (§3.2: "the appropriate number of most significant bits is
    /// ignored").
    pub const fn from_masked(value: u32) -> Self {
        Self(value & Self::MAX)
    }

    /// The raw 20-bit value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// True for the IETF reserved range `0..=15`.
    pub const fn is_reserved(self) -> bool {
        self.0 < 16
    }
}

impl TryFrom<u32> for Label {
    type Error = PacketError;
    fn try_from(value: u32) -> Result<Self, Self::Error> {
        Self::new(value)
    }
}

impl From<Label> for u32 {
    fn from(l: Label) -> Self {
        l.0
    }
}

impl core::fmt::Display for Label {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The 3-bit Class of Service field (the EXP bits of RFC 3032).
///
/// "The CoS bits affect the scheduling and or discard algorithms applied to
/// the packet ... These bits are not modified by the embedded implementation
/// of MPLS" (§2). The network simulator maps CoS to queue priority.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct CosBits(u8);

impl CosBits {
    /// Number of bits in the field.
    pub const BITS: u32 = 3;
    /// Largest representable CoS, 7.
    pub const MAX: u8 = (1 << Self::BITS) - 1;

    /// Best-effort traffic.
    pub const BEST_EFFORT: CosBits = CosBits(0);
    /// Highest priority (used for VoIP in the QoS experiments).
    pub const EXPEDITED: CosBits = CosBits(5);
    /// Network control traffic.
    pub const NETWORK_CONTROL: CosBits = CosBits(7);

    /// Creates a CoS value, rejecting values above 7.
    pub const fn new(value: u8) -> Result<Self, PacketError> {
        if value > Self::MAX {
            Err(PacketError::CosOutOfRange(value))
        } else {
            Ok(Self(value))
        }
    }

    /// Creates a CoS value, masking to 3 bits.
    pub const fn from_masked(value: u8) -> Self {
        Self(value & Self::MAX)
    }

    /// The raw 3-bit value.
    pub const fn value(self) -> u8 {
        self.0
    }
}

/// Time-to-live, decremented at every hop; the packet is discarded when it
/// reaches zero (§2, RFC 3443 semantics simplified per the paper).
pub type Ttl = u8;

/// One 32-bit entry of an MPLS label stack (paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LabelStackEntry {
    /// The 20-bit label.
    pub label: Label,
    /// The 3-bit class of service.
    pub cos: CosBits,
    /// Bottom-of-stack bit: set iff this is the last (deepest) entry.
    pub bottom: bool,
    /// Time to live.
    pub ttl: Ttl,
}

impl LabelStackEntry {
    /// Size of an encoded entry in bytes.
    pub const WIRE_LEN: usize = 4;

    /// Convenience constructor for a non-bottom entry.
    pub const fn new(label: Label, cos: CosBits, bottom: bool, ttl: Ttl) -> Self {
        Self {
            label,
            cos,
            bottom,
            ttl,
        }
    }

    /// Encodes the entry into its 32-bit wire representation.
    pub const fn to_bits(self) -> u32 {
        (self.label.value() << 12)
            | ((self.cos.value() as u32) << 9)
            | ((self.bottom as u32) << 8)
            | self.ttl as u32
    }

    /// Decodes an entry from its 32-bit wire representation. Total — every
    /// bit pattern is a valid entry.
    pub const fn from_bits(bits: u32) -> Self {
        Self {
            label: Label::from_masked(bits >> 12),
            cos: CosBits::from_masked(((bits >> 9) & 0x7) as u8),
            bottom: (bits >> 8) & 1 == 1,
            ttl: (bits & 0xff) as u8,
        }
    }

    /// Serializes to 4 big-endian bytes.
    pub fn write_to(self, buf: &mut [u8]) -> Result<(), PacketError> {
        if buf.len() < Self::WIRE_LEN {
            return Err(PacketError::Truncated {
                what: "label stack entry",
                need: Self::WIRE_LEN,
                have: buf.len(),
            });
        }
        buf[..4].copy_from_slice(&self.to_bits().to_be_bytes());
        Ok(())
    }

    /// Parses 4 big-endian bytes.
    pub fn read_from(buf: &[u8]) -> Result<Self, PacketError> {
        if buf.len() < Self::WIRE_LEN {
            return Err(PacketError::Truncated {
                what: "label stack entry",
                need: Self::WIRE_LEN,
                have: buf.len(),
            });
        }
        let bits = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        Ok(Self::from_bits(bits))
    }

    /// Returns a copy with the TTL decremented, or `None` when the TTL has
    /// expired (is zero before or after decrement), in which case the packet
    /// must be discarded (§2: "The packet is discarded when the TTL reaches
    /// zero").
    pub fn decrement_ttl(self) -> Option<Self> {
        match self.ttl {
            0 | 1 => None,
            t => Some(Self { ttl: t - 1, ..self }),
        }
    }
}

impl core::fmt::Display for LabelStackEntry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "label={} cos={} s={} ttl={}",
            self.label,
            self.cos.value(),
            self.bottom as u8,
            self.ttl
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn label_bounds() {
        assert!(Label::new(Label::MAX).is_ok());
        assert_eq!(
            Label::new(Label::MAX + 1),
            Err(PacketError::LabelOutOfRange(Label::MAX + 1))
        );
        assert_eq!(Label::from_masked(Label::MAX + 1).value(), 0);
    }

    #[test]
    fn reserved_labels() {
        assert!(Label::IPV4_EXPLICIT_NULL.is_reserved());
        assert!(Label::IMPLICIT_NULL.is_reserved());
        assert!(!Label::FIRST_UNRESERVED.is_reserved());
    }

    #[test]
    fn cos_bounds() {
        assert!(CosBits::new(7).is_ok());
        assert_eq!(CosBits::new(8), Err(PacketError::CosOutOfRange(8)));
        assert_eq!(CosBits::from_masked(9).value(), 1);
    }

    #[test]
    fn known_encoding() {
        // label 500, cos 5, bottom, ttl 64:
        // 500 << 12 | 5 << 9 | 1 << 8 | 64
        let e = LabelStackEntry::new(Label::new(500).unwrap(), CosBits::new(5).unwrap(), true, 64);
        assert_eq!(e.to_bits(), (500 << 12) | (5 << 9) | (1 << 8) | 64);
        assert_eq!(LabelStackEntry::from_bits(e.to_bits()), e);
    }

    #[test]
    fn field_packing_does_not_overlap() {
        let e = LabelStackEntry::new(
            Label::new(Label::MAX).unwrap(),
            CosBits::new(0).unwrap(),
            false,
            0,
        );
        assert_eq!(e.to_bits(), 0xFFFF_F000);
        let e = LabelStackEntry::new(Label::new(0).unwrap(), CosBits::new(7).unwrap(), false, 0);
        assert_eq!(e.to_bits(), 0x0000_0E00);
        let e = LabelStackEntry::new(Label::new(0).unwrap(), CosBits::new(0).unwrap(), true, 0);
        assert_eq!(e.to_bits(), 0x0000_0100);
        let e = LabelStackEntry::new(Label::new(0).unwrap(), CosBits::new(0).unwrap(), false, 255);
        assert_eq!(e.to_bits(), 0x0000_00FF);
    }

    #[test]
    fn ttl_decrement() {
        let mk =
            |ttl| LabelStackEntry::new(Label::new(9).unwrap(), CosBits::BEST_EFFORT, true, ttl);
        assert_eq!(mk(0).decrement_ttl(), None);
        assert_eq!(mk(1).decrement_ttl(), None);
        assert_eq!(mk(2).decrement_ttl().unwrap().ttl, 1);
        assert_eq!(mk(255).decrement_ttl().unwrap().ttl, 254);
    }

    #[test]
    fn wire_round_trip() {
        let e = LabelStackEntry::new(
            Label::new(0xABCDE).unwrap(),
            CosBits::new(3).unwrap(),
            true,
            17,
        );
        let mut buf = [0u8; 4];
        e.write_to(&mut buf).unwrap();
        assert_eq!(LabelStackEntry::read_from(&buf).unwrap(), e);
    }

    #[test]
    fn truncated_buffers_error() {
        let e = LabelStackEntry::from_bits(0);
        let mut small = [0u8; 3];
        assert!(matches!(
            e.write_to(&mut small),
            Err(PacketError::Truncated {
                need: 4,
                have: 3,
                ..
            })
        ));
        assert!(LabelStackEntry::read_from(&small).is_err());
    }

    proptest! {
        #[test]
        fn bits_round_trip(bits: u32) {
            let e = LabelStackEntry::from_bits(bits);
            prop_assert_eq!(e.to_bits(), bits);
        }

        #[test]
        fn entry_round_trip(label in 0u32..=Label::MAX, cos in 0u8..=7, bottom: bool, ttl: u8) {
            let e = LabelStackEntry::new(
                Label::new(label).unwrap(),
                CosBits::new(cos).unwrap(),
                bottom,
                ttl,
            );
            prop_assert_eq!(LabelStackEntry::from_bits(e.to_bits()), e);
            let mut buf = [0u8; 4];
            e.write_to(&mut buf).unwrap();
            prop_assert_eq!(LabelStackEntry::read_from(&buf).unwrap(), e);
        }

        #[test]
        fn decrement_never_underflows(bits: u32) {
            let e = LabelStackEntry::from_bits(bits);
            if let Some(d) = e.decrement_ttl() {
                prop_assert_eq!(d.ttl as u16 + 1, e.ttl as u16);
                prop_assert!(d.ttl >= 1);
            } else {
                prop_assert!(e.ttl <= 1);
            }
        }
    }
}
