//! The label stack (paper Fig. 4).
//!
//! "The collection of labels for a given packet is called a label stack
//! since labels are added (or 'pushed') and removed (or 'popped') like
//! elements in a stack data structure. The most recent (or top most) label
//! is processed at any given router." (§2)
//!
//! The stack owns the bottom-of-stack invariant: exactly the deepest entry
//! carries `S = 1`, and the stack never exceeds [`MAX_STACK_DEPTH`] entries.
//! That is the *wire/simulator* capacity, sized for segment-routed source
//! routes; the embedded hardware itself provisions only
//! [`crate::EMBEDDED_STACK_DEPTH`] levels of information-base memory and
//! entry registers.

use crate::{label::LabelStackEntry, CosBits, Label, PacketError, Ttl, MAX_STACK_DEPTH};
use serde::{Deserialize, Serialize};

/// An MPLS label stack holding zero to [`MAX_STACK_DEPTH`] entries.
///
/// Entries are stored top-first: `entries()[0]` is the top of the stack —
/// the entry a router examines — and the last element is the bottom. The
/// S bits are maintained internally; callers never set them directly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabelStack {
    /// Top-first entries. Kept as a fixed-capacity inline array plus length
    /// so stack manipulation in the forwarding hot path never allocates.
    entries: [LabelStackEntry; MAX_STACK_DEPTH],
    len: u8,
}

// Equality and hashing consider only the live entries; slots beyond `len`
// are scratch space left behind by pops.
impl PartialEq for LabelStack {
    fn eq(&self, other: &Self) -> bool {
        self.entries() == other.entries()
    }
}

impl Eq for LabelStack {}

impl core::hash::Hash for LabelStack {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.entries().hash(state);
    }
}

impl Default for LabelStack {
    fn default() -> Self {
        Self::new()
    }
}

impl LabelStack {
    /// An empty stack.
    pub const fn new() -> Self {
        const ZERO: LabelStackEntry = LabelStackEntry {
            label: Label::IPV4_EXPLICIT_NULL,
            cos: CosBits::BEST_EFFORT,
            bottom: false,
            ttl: 0,
        };
        Self {
            entries: [ZERO; MAX_STACK_DEPTH],
            len: 0,
        }
    }

    /// Builds a stack from top-first entries. The S bits of the input are
    /// ignored and recomputed.
    pub fn from_entries(top_first: &[LabelStackEntry]) -> Result<Self, PacketError> {
        if top_first.len() > MAX_STACK_DEPTH {
            return Err(PacketError::StackOverflow);
        }
        let mut s = Self::new();
        for e in top_first.iter().rev() {
            s.push(*e)?;
        }
        Ok(s)
    }

    /// Number of entries on the stack.
    pub fn depth(&self) -> usize {
        self.len as usize
    }

    /// True when no labels are present (an unlabeled layer-2/3 packet).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Top-first view of the entries.
    pub fn entries(&self) -> &[LabelStackEntry] {
        &self.entries[..self.len as usize]
    }

    /// The top entry, if any.
    pub fn top(&self) -> Option<&LabelStackEntry> {
        self.entries().first()
    }

    /// Pushes a new top entry. The pushed entry's S bit is forced to the
    /// correct value (set iff the stack was empty).
    pub fn push(&mut self, mut entry: LabelStackEntry) -> Result<(), PacketError> {
        if self.depth() == MAX_STACK_DEPTH {
            return Err(PacketError::StackOverflow);
        }
        entry.bottom = self.is_empty();
        // Shift existing entries one slot deeper.
        let len = self.len as usize;
        for i in (0..len).rev() {
            self.entries[i + 1] = self.entries[i];
        }
        self.entries[0] = entry;
        self.len += 1;
        Ok(())
    }

    /// Convenience push from parts.
    pub fn push_parts(&mut self, label: Label, cos: CosBits, ttl: Ttl) -> Result<(), PacketError> {
        self.push(LabelStackEntry::new(label, cos, false, ttl))
    }

    /// Pops the top entry.
    pub fn pop(&mut self) -> Result<LabelStackEntry, PacketError> {
        if self.is_empty() {
            return Err(PacketError::StackUnderflow);
        }
        let top = self.entries[0];
        let len = self.len as usize;
        for i in 1..len {
            self.entries[i - 1] = self.entries[i];
        }
        self.len -= 1;
        Ok(top)
    }

    /// Replaces the label of the top entry, keeping CoS ("not modified by
    /// the embedded implementation", §2) and TTL.
    pub fn swap(&mut self, new_label: Label) -> Result<LabelStackEntry, PacketError> {
        if self.is_empty() {
            return Err(PacketError::StackUnderflow);
        }
        let old = self.entries[0];
        self.entries[0].label = new_label;
        Ok(old)
    }

    /// Decrements the top entry's TTL in place. Returns `false` when the TTL
    /// expired, in which case the caller must discard the packet. The stack
    /// is left unmodified on expiry.
    pub fn decrement_ttl(&mut self) -> Result<bool, PacketError> {
        if self.is_empty() {
            return Err(PacketError::StackUnderflow);
        }
        match self.entries[0].decrement_ttl() {
            Some(e) => {
                self.entries[0] = e;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Removes every entry ("the label stack is reset" on discard, §3.1).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Bytes required to encode the stack.
    pub fn wire_len(&self) -> usize {
        self.depth() * LabelStackEntry::WIRE_LEN
    }

    /// Encodes the stack top-first into `buf`, returning the bytes written.
    pub fn write_to(&self, buf: &mut [u8]) -> Result<usize, PacketError> {
        let need = self.wire_len();
        if buf.len() < need {
            return Err(PacketError::Truncated {
                what: "label stack",
                need,
                have: buf.len(),
            });
        }
        for (i, e) in self.entries().iter().enumerate() {
            e.write_to(&mut buf[i * 4..])?;
        }
        Ok(need)
    }

    /// Parses a label stack from the front of `buf`, consuming entries until
    /// one with the S bit set. Returns the stack and the bytes consumed.
    pub fn read_from(buf: &[u8]) -> Result<(Self, usize), PacketError> {
        let mut s = Self::new();
        let mut off = 0;
        loop {
            let e = LabelStackEntry::read_from(&buf[off..])?;
            off += LabelStackEntry::WIRE_LEN;
            let depth = s.depth();
            if depth == MAX_STACK_DEPTH {
                return Err(PacketError::StackOverflow);
            }
            s.entries[depth] = e;
            s.len += 1;
            if e.bottom {
                return Ok((s, off));
            }
        }
    }

    /// Checks the S-bit invariant; used by tests and by the differential
    /// harness to validate hardware-model output.
    pub fn validate(&self) -> Result<(), PacketError> {
        let n = self.depth();
        for (i, e) in self.entries().iter().enumerate() {
            let should_be_bottom = i + 1 == n;
            if e.bottom != should_be_bottom {
                if e.bottom {
                    return Err(PacketError::EarlyBottomOfStack { depth: i });
                }
                return Err(PacketError::UnterminatedStack);
            }
        }
        Ok(())
    }
}

impl core::fmt::Display for LabelStack {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries().iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn entry(label: u32, ttl: Ttl) -> LabelStackEntry {
        LabelStackEntry::new(Label::new(label).unwrap(), CosBits::BEST_EFFORT, false, ttl)
    }

    #[test]
    fn push_sets_bottom_bit_only_on_first() {
        let mut s = LabelStack::new();
        s.push(entry(10, 64)).unwrap();
        assert!(s.entries()[0].bottom);
        s.push(entry(20, 64)).unwrap();
        assert!(!s.entries()[0].bottom);
        assert!(s.entries()[1].bottom);
        s.validate().unwrap();
    }

    #[test]
    fn push_overflow_at_max_depth() {
        let mut s = LabelStack::new();
        for l in 0..MAX_STACK_DEPTH as u32 {
            s.push(entry(l, 64)).unwrap();
        }
        assert_eq!(s.push(entry(99, 64)), Err(PacketError::StackOverflow));
        assert_eq!(s.depth(), MAX_STACK_DEPTH);
    }

    #[test]
    fn pop_returns_lifo_order() {
        let mut s = LabelStack::new();
        s.push(entry(1, 64)).unwrap();
        s.push(entry(2, 64)).unwrap();
        s.push(entry(3, 64)).unwrap();
        assert_eq!(s.pop().unwrap().label.value(), 3);
        assert_eq!(s.pop().unwrap().label.value(), 2);
        assert_eq!(s.pop().unwrap().label.value(), 1);
        assert_eq!(s.pop(), Err(PacketError::StackUnderflow));
    }

    #[test]
    fn swap_preserves_cos_and_ttl() {
        let mut s = LabelStack::new();
        s.push(LabelStackEntry::new(
            Label::new(7).unwrap(),
            CosBits::EXPEDITED,
            false,
            33,
        ))
        .unwrap();
        let old = s.swap(Label::new(42).unwrap()).unwrap();
        assert_eq!(old.label.value(), 7);
        let top = s.top().unwrap();
        assert_eq!(top.label.value(), 42);
        assert_eq!(top.cos, CosBits::EXPEDITED);
        assert_eq!(top.ttl, 33);
        assert!(top.bottom);
    }

    #[test]
    fn swap_empty_underflows() {
        let mut s = LabelStack::new();
        assert_eq!(
            s.swap(Label::new(1).unwrap()),
            Err(PacketError::StackUnderflow)
        );
    }

    #[test]
    fn ttl_expiry_signals_discard() {
        let mut s = LabelStack::new();
        s.push(entry(5, 1)).unwrap();
        assert!(!s.decrement_ttl().unwrap());
        // stack untouched; caller resets it
        assert_eq!(s.depth(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn wire_round_trip_multi_entry() {
        let mut s = LabelStack::new();
        s.push(entry(100, 10)).unwrap();
        s.push(entry(200, 20)).unwrap();
        s.push(entry(300, 30)).unwrap();
        let mut buf = [0u8; 12];
        assert_eq!(s.write_to(&mut buf).unwrap(), 12);
        let (parsed, used) = LabelStack::read_from(&buf).unwrap();
        assert_eq!(used, 12);
        assert_eq!(parsed, s);
        parsed.validate().unwrap();
    }

    #[test]
    fn read_stops_at_bottom_bit() {
        // Encode 1 bottom entry followed by garbage.
        let e = LabelStackEntry::new(Label::new(55).unwrap(), CosBits::BEST_EFFORT, true, 9);
        let mut buf = [0xAAu8; 8];
        e.write_to(&mut buf).unwrap();
        let (s, used) = LabelStack::read_from(&buf).unwrap();
        assert_eq!(used, 4);
        assert_eq!(s.depth(), 1);
        assert_eq!(s.top().unwrap().label.value(), 55);
    }

    #[test]
    fn read_unterminated_overflows() {
        // MAX_STACK_DEPTH + 1 entries none of which is bottom: overflow
        // before termination.
        let e = LabelStackEntry::new(Label::new(1).unwrap(), CosBits::BEST_EFFORT, false, 9);
        let mut buf = vec![0u8; (MAX_STACK_DEPTH + 1) * LabelStackEntry::WIRE_LEN];
        for i in 0..=MAX_STACK_DEPTH {
            e.write_to(&mut buf[i * 4..]).unwrap();
        }
        assert_eq!(
            LabelStack::read_from(&buf).unwrap_err(),
            PacketError::StackOverflow
        );
    }

    #[test]
    fn read_truncated_mid_entry() {
        let e = LabelStackEntry::new(Label::new(1).unwrap(), CosBits::BEST_EFFORT, false, 9);
        let mut buf = [0u8; 6];
        e.write_to(&mut buf).unwrap();
        assert!(matches!(
            LabelStack::read_from(&buf),
            Err(PacketError::Truncated { .. })
        ));
    }

    #[test]
    fn from_entries_recomputes_s_bits() {
        let tainted = [
            LabelStackEntry::new(Label::new(3).unwrap(), CosBits::BEST_EFFORT, true, 1),
            LabelStackEntry::new(Label::new(2).unwrap(), CosBits::BEST_EFFORT, false, 1),
        ];
        let s = LabelStack::from_entries(&tainted).unwrap();
        s.validate().unwrap();
        assert!(!s.entries()[0].bottom);
        assert!(s.entries()[1].bottom);
    }

    fn arb_entry() -> impl Strategy<Value = LabelStackEntry> {
        (0u32..=Label::MAX, 0u8..=7, any::<u8>()).prop_map(|(l, c, t)| {
            LabelStackEntry::new(Label::new(l).unwrap(), CosBits::new(c).unwrap(), false, t)
        })
    }

    proptest! {
        #[test]
        fn stack_round_trip(entries in proptest::collection::vec(arb_entry(), 1..=MAX_STACK_DEPTH)) {
            let s = LabelStack::from_entries(&entries).unwrap();
            s.validate().unwrap();
            let mut buf = vec![0u8; s.wire_len()];
            s.write_to(&mut buf).unwrap();
            let (parsed, used) = LabelStack::read_from(&buf).unwrap();
            prop_assert_eq!(used, buf.len());
            prop_assert_eq!(parsed, s);
        }

        #[test]
        fn push_pop_is_identity(entries in proptest::collection::vec(arb_entry(), 0..MAX_STACK_DEPTH), extra in arb_entry()) {
            let mut s = LabelStack::from_entries(&entries).unwrap();
            let before = s.clone();
            s.push(extra).unwrap();
            s.validate().unwrap();
            let popped = s.pop().unwrap();
            prop_assert_eq!(popped.label, extra.label);
            prop_assert_eq!(popped.ttl, extra.ttl);
            prop_assert_eq!(s, before);
        }

        #[test]
        fn depth_never_exceeds_max(ops in proptest::collection::vec(any::<bool>(), 0..64)) {
            let mut s = LabelStack::new();
            for (i, push) in ops.into_iter().enumerate() {
                if push {
                    let _ = s.push(entry((i as u32) & Label::MAX, 64));
                } else {
                    let _ = s.pop();
                }
                prop_assert!(s.depth() <= MAX_STACK_DEPTH);
                s.validate().unwrap();
            }
        }
    }
}
