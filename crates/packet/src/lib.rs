#![warn(missing_docs)]
//! MPLS wire formats.
//!
//! This crate defines the data-plane vocabulary shared by every other crate
//! in the workspace:
//!
//! * [`Label`] — a 20-bit MPLS label with the reserved values of RFC 3032.
//! * [`LabelStackEntry`] — the 32-bit generic label format of the paper's
//!   Fig. 5 (label, CoS, bottom-of-stack bit, TTL).
//! * [`LabelStack`] — an ordered stack of entries (Fig. 4) with push/pop/
//!   swap semantics and the invariant that exactly the bottom entry carries
//!   the S bit.
//! * [`Ipv4Header`] / [`EthernetFrame`] — the minimal layer-3/layer-2
//!   framing needed to exercise a Label Edge Router: enough to extract the
//!   *packet identifier* (the IPv4 destination address, §3 of the paper)
//!   and to splice a label stack between the L2 header and the IP payload.
//! * [`MplsPacket`] — a parsed view of an Ethernet frame carrying an MPLS
//!   label stack and an IPv4 payload.
//!
//! All encodings are big-endian network byte order and round-trip exactly;
//! see the property tests in each module.

pub mod error;
pub mod ethernet;
pub mod ipv4;
pub mod label;
pub mod ldp;
pub mod packet;
pub mod sr;
pub mod stack;

pub use error::PacketError;
pub use ethernet::{EtherType, EthernetFrame, MacAddr};
pub use ipv4::Ipv4Header;
pub use label::{CosBits, Label, LabelStackEntry, Ttl};
pub use ldp::{LdpFec, LdpMessage, LdpPdu};
pub use packet::MplsPacket;
pub use sr::{ecmp_index, entropy_label, EntropyScan, MnaNas, SrError};
pub use stack::LabelStack;

/// Number of stack entries the embedded hardware data path provisions.
///
/// "A typical MPLS network does not use more than two or three levels of
/// nested paths and consequently, label stacks do not normally exceed two
/// or three labels" (§2). The hardware label stack modifier holds exactly
/// three 32-bit entry registers, and the software forwarder mirrors that
/// limit for hardware/software parity. Segment-routed source routes
/// (see [`sr`]) deliberately exceed it — that excess is the cost model
/// the EXT-16 benchmark measures.
pub const EMBEDDED_STACK_DEPTH: usize = 3;

/// Maximum label stack depth the wire format and simulator carry.
///
/// Deep segment-routing stacks (node-SID source routes plus entropy and
/// MNA metadata, RFC 8986 / RFC 6790 / draft-ietf-mpls-mna-hdr) need more
/// room than the embedded hardware's three entry registers
/// ([`EMBEDDED_STACK_DEPTH`]). [`LabelStack`] provisions this many
/// in-line entries; routers with shallower hardware discard or compress
/// beyond their own limit.
pub const MAX_STACK_DEPTH: usize = 12;
