#![warn(missing_docs)]
//! MPLS wire formats.
//!
//! This crate defines the data-plane vocabulary shared by every other crate
//! in the workspace:
//!
//! * [`Label`] — a 20-bit MPLS label with the reserved values of RFC 3032.
//! * [`LabelStackEntry`] — the 32-bit generic label format of the paper's
//!   Fig. 5 (label, CoS, bottom-of-stack bit, TTL).
//! * [`LabelStack`] — an ordered stack of entries (Fig. 4) with push/pop/
//!   swap semantics and the invariant that exactly the bottom entry carries
//!   the S bit.
//! * [`Ipv4Header`] / [`EthernetFrame`] — the minimal layer-3/layer-2
//!   framing needed to exercise a Label Edge Router: enough to extract the
//!   *packet identifier* (the IPv4 destination address, §3 of the paper)
//!   and to splice a label stack between the L2 header and the IP payload.
//! * [`MplsPacket`] — a parsed view of an Ethernet frame carrying an MPLS
//!   label stack and an IPv4 payload.
//!
//! All encodings are big-endian network byte order and round-trip exactly;
//! see the property tests in each module.

pub mod error;
pub mod ethernet;
pub mod ipv4;
pub mod label;
pub mod ldp;
pub mod packet;
pub mod stack;

pub use error::PacketError;
pub use ethernet::{EtherType, EthernetFrame, MacAddr};
pub use ipv4::Ipv4Header;
pub use label::{CosBits, Label, LabelStackEntry, Ttl};
pub use ldp::{LdpFec, LdpMessage, LdpPdu};
pub use packet::MplsPacket;
pub use stack::LabelStack;

/// Number of nesting levels the embedded architecture supports.
///
/// "A typical MPLS network does not use more than two or three levels of
/// nested paths and consequently, label stacks do not normally exceed two
/// or three labels" (§2). The hardware data path provisions exactly three
/// levels of information-base memory, so the whole workspace shares this
/// constant.
pub const MAX_STACK_DEPTH: usize = 3;
