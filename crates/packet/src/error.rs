//! Error type shared by the packet parsers and builders.

use core::fmt;

/// Errors raised while parsing or constructing packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// The label value does not fit in 20 bits.
    LabelOutOfRange(u32),
    /// The CoS value does not fit in 3 bits.
    CosOutOfRange(u8),
    /// Attempted to push onto a stack already holding [`crate::MAX_STACK_DEPTH`] entries.
    StackOverflow,
    /// Attempted to pop or swap on an empty label stack.
    StackUnderflow,
    /// The buffer is too short to contain the expected structure.
    Truncated {
        /// What was being parsed.
        what: &'static str,
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// An Ethernet frame whose EtherType is not one we understand.
    UnexpectedEtherType(u16),
    /// An IPv4 header with a version nibble other than 4.
    BadIpVersion(u8),
    /// An IPv4 header whose IHL field is below the minimum of 5 words.
    BadIhl(u8),
    /// A label stack that never terminates with the bottom-of-stack bit.
    UnterminatedStack,
    /// A label stack entry with the S bit set before the bottom entry.
    EarlyBottomOfStack {
        /// Zero-based depth at which the stray S bit was found.
        depth: usize,
    },
    /// An LDP PDU with a protocol version other than [`crate::ldp::LDP_VERSION`].
    BadLdpVersion(u16),
    /// An LDP PDU advertising a label space other than the platform-wide
    /// space 0.
    BadLdpLabelSpace(u16),
    /// An LDP message whose type code is not one we implement.
    UnknownLdpMessage(u16),
    /// An LDP length field that disagrees with the bytes actually present.
    BadLdpLength {
        /// Which length field lied.
        what: &'static str,
        /// The value the field declared.
        declared: usize,
        /// The length implied by the buffer.
        actual: usize,
    },
    /// An LDP FEC element with a prefix length above 32.
    BadLdpFecLength(u8),
    /// An LDP path vector longer than [`crate::ldp::MAX_PATH_VECTOR`].
    LdpPathVectorTooLong {
        /// Declared hop count.
        len: usize,
        /// Maximum accepted.
        max: usize,
    },
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LabelOutOfRange(v) => write!(f, "label value {v:#x} exceeds 20 bits"),
            Self::CosOutOfRange(v) => write!(f, "CoS value {v} exceeds 3 bits"),
            Self::StackOverflow => write!(
                f,
                "label stack is full ({} entries)",
                crate::MAX_STACK_DEPTH
            ),
            Self::StackUnderflow => write!(f, "operation on empty label stack"),
            Self::Truncated { what, need, have } => {
                write!(f, "truncated {what}: need {need} bytes, have {have}")
            }
            Self::UnexpectedEtherType(t) => write!(f, "unexpected EtherType {t:#06x}"),
            Self::BadIpVersion(v) => write!(f, "IP version {v} is not 4"),
            Self::BadIhl(v) => write!(f, "IPv4 IHL {v} is below the minimum of 5"),
            Self::UnterminatedStack => write!(f, "label stack missing bottom-of-stack bit"),
            Self::EarlyBottomOfStack { depth } => {
                write!(
                    f,
                    "bottom-of-stack bit set at depth {depth} before the bottom"
                )
            }
            Self::BadLdpVersion(v) => write!(f, "LDP version {v} is not supported"),
            Self::BadLdpLabelSpace(s) => {
                write!(f, "LDP label space {s} is not the platform-wide space 0")
            }
            Self::UnknownLdpMessage(t) => write!(f, "unknown LDP message type {t:#06x}"),
            Self::BadLdpLength {
                what,
                declared,
                actual,
            } => write!(
                f,
                "LDP {what} declares {declared} bytes but {actual} follow"
            ),
            Self::BadLdpFecLength(l) => write!(f, "LDP FEC prefix length {l} exceeds 32"),
            Self::LdpPathVectorTooLong { len, max } => {
                write!(f, "LDP path vector of {len} hops exceeds the cap of {max}")
            }
        }
    }
}

impl std::error::Error for PacketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PacketError::Truncated {
            what: "IPv4 header",
            need: 20,
            have: 7,
        };
        let s = e.to_string();
        assert!(s.contains("IPv4 header"));
        assert!(s.contains("20"));
        assert!(s.contains('7'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            PacketError::LabelOutOfRange(1 << 20),
            PacketError::LabelOutOfRange(1 << 20)
        );
        assert_ne!(PacketError::StackOverflow, PacketError::StackUnderflow);
    }
}
