#![warn(missing_docs)]
//! Cycle-accurate RTL simulation substrate.
//!
//! The paper's label stack modifier is an FPGA design evaluated through
//! waveform simulation. This crate provides the synchronous-hardware
//! building blocks needed to model it faithfully in Rust:
//!
//! * [`Register`] — a D-type register with enable.
//! * [`UpDownCounter`] — the load/clear/increment/decrement counters used to
//!   address the information-base memories (paper Fig. 13).
//! * [`SyncMemory`] — a synchronous-read RAM with one-cycle read latency,
//!   which is why the search FSM has a `WAIT FOR INFO` state (Fig. 11).
//! * [`Comparator`] — the width-parameterized equality comparators of the
//!   data path (32/20/10 bits, Fig. 12).
//! * [`trace::Trace`] — a waveform recorder that renders ASCII timing
//!   diagrams and standard VCD files, used to regenerate Figs. 14–16.
//!
//! # Clocking discipline
//!
//! Every sequential component exposes *input setters* that stage the values
//! present on its input pins and a [`Clocked::tick`] that commits them, as a
//! rising clock edge would. Within one cycle, code must (1) compute all
//! combinational values from current outputs, (2) stage inputs, (3) tick
//! every component exactly once. Reading an output after staging but before
//! `tick` still returns the pre-edge value, exactly like real hardware.

pub mod comparator;
pub mod counter;
pub mod memory;
pub mod register;
pub mod trace;
pub mod vcd;

pub use comparator::Comparator;
pub use counter::{CounterCtl, UpDownCounter};
pub use memory::SyncMemory;
pub use register::Register;
pub use trace::{SignalId, Trace};

/// A sequential component driven by a common clock.
pub trait Clocked {
    /// Commit staged inputs on the rising clock edge.
    fn tick(&mut self);

    /// Synchronous reset: return to the power-on state. Components reset
    /// when the design's reset line is asserted during a tick.
    fn reset(&mut self);
}

/// Masks `value` to `width` bits, mirroring a hardware bus truncation
/// ("the appropriate number of most significant bits is ignored", paper
/// §3.2). `width` must be 1..=64.
#[inline]
pub fn mask(value: u64, width: u32) -> u64 {
    debug_assert!((1..=64).contains(&width));
    if width == 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_truncates() {
        assert_eq!(mask(0xffff_ffff, 20), 0xf_ffff);
        assert_eq!(mask(0x12345, 8), 0x45);
        assert_eq!(mask(u64::MAX, 64), u64::MAX);
        assert_eq!(mask(3, 1), 1);
    }
}
