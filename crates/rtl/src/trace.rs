//! Waveform recording.
//!
//! The paper evaluates its design with simulator waveforms (Figs. 14–16).
//! [`Trace`] captures named signals cycle by cycle and renders them as an
//! ASCII timing diagram, a transition log, or a standard VCD file (see
//! [`crate::vcd`]) that any waveform viewer (GTKWave etc.) can open.

use serde::Serialize;

/// Handle to a probed signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(pub(crate) usize);

#[derive(Debug, Clone, Serialize)]
pub(crate) struct SignalDef {
    pub(crate) name: String,
    pub(crate) width: u32,
}

/// A recorded waveform: a set of signals sampled once per clock cycle.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    signals: Vec<SignalDef>,
    /// `rows[cycle][signal]`.
    rows: Vec<Vec<u64>>,
    /// Samples staged for the cycle currently being recorded.
    staging: Vec<u64>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a signal before recording starts. `width` in bits governs
    /// rendering (1-bit signals draw as waveforms, buses as values).
    pub fn probe(&mut self, name: impl Into<String>, width: u32) -> SignalId {
        assert!(
            self.rows.is_empty(),
            "probes must be declared before the first cycle is committed"
        );
        self.signals.push(SignalDef {
            name: name.into(),
            width,
        });
        self.staging.push(0);
        SignalId(self.signals.len() - 1)
    }

    /// Stages the value of `signal` for the current cycle. Unsampled signals
    /// keep their previous value.
    pub fn sample(&mut self, signal: SignalId, value: u64) {
        self.staging[signal.0] = crate::mask(value, self.signals[signal.0].width.max(1));
    }

    /// Stages a boolean signal.
    pub fn sample_bool(&mut self, signal: SignalId, value: bool) {
        self.sample(signal, value as u64);
    }

    /// Commits the staged samples as one clock cycle.
    pub fn commit_cycle(&mut self) {
        self.rows.push(self.staging.clone());
    }

    /// Number of recorded cycles.
    pub fn cycles(&self) -> usize {
        self.rows.len()
    }

    /// Number of probed signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// The value of `signal` at `cycle`.
    pub fn value_at(&self, signal: SignalId, cycle: usize) -> u64 {
        self.rows[cycle][signal.0]
    }

    /// Name of a signal.
    pub fn name(&self, signal: SignalId) -> &str {
        &self.signals[signal.0].name
    }

    /// Looks a signal up by name.
    pub fn find(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(SignalId)
    }

    /// Iterates `(cycle, value)` transitions of a signal: cycle 0 plus every
    /// cycle where the value differs from the previous one.
    pub fn transitions(&self, signal: SignalId) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        let mut prev = None;
        for (cycle, row) in self.rows.iter().enumerate() {
            let v = row[signal.0];
            if prev != Some(v) {
                out.push((cycle, v));
                prev = Some(v);
            }
        }
        out
    }

    /// First cycle at which `signal` equals `value`, if any. Handy for
    /// assertions like "lookup_done goes high at cycle N".
    pub fn first_cycle_where(&self, signal: SignalId, value: u64) -> Option<usize> {
        self.rows.iter().position(|row| row[signal.0] == value)
    }

    /// Renders an ASCII timing diagram of cycles `range` (clamped to the
    /// recording). 1-bit signals draw as `▁`/`█` waveforms; buses print
    /// their decimal value at each change and `·` while stable.
    pub fn render_ascii(&self, range: core::ops::Range<usize>) -> String {
        let start = range.start.min(self.rows.len());
        let end = range.end.min(self.rows.len());
        let name_w = self
            .signals
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(0)
            .max(5);

        // Column width: widest decimal value in the window across buses.
        let mut col_w = 1;
        for row in &self.rows[start..end] {
            for (def, v) in self.signals.iter().zip(row) {
                if def.width > 1 {
                    col_w = col_w.max(v.to_string().len());
                }
            }
        }

        let mut out = String::new();
        // Cycle ruler.
        out.push_str(&format!("{:>name_w$} ", "cycle"));
        for c in start..end {
            out.push_str(&format!("{:>col_w$} ", c % 10_usize.pow(col_w as u32)));
        }
        out.push('\n');

        for (idx, def) in self.signals.iter().enumerate() {
            out.push_str(&format!("{:>name_w$} ", def.name));
            let mut prev: Option<u64> = None;
            for row in &self.rows[start..end] {
                let v = row[idx];
                if def.width == 1 {
                    let glyph = if v != 0 { '█' } else { '▁' };
                    for _ in 0..col_w {
                        out.push(glyph);
                    }
                    out.push(' ');
                } else if prev == Some(v) {
                    out.push_str(&format!("{:>col_w$} ", "·"));
                } else {
                    out.push_str(&format!("{v:>col_w$} "));
                }
                prev = Some(v);
            }
            out.push('\n');
        }
        out
    }

    /// Renders a compact transition log: one line per signal change.
    pub fn render_transitions(&self) -> String {
        let mut events: Vec<(usize, String)> = Vec::new();
        for (idx, def) in self.signals.iter().enumerate() {
            let id = SignalId(idx);
            for (cycle, v) in self.transitions(id) {
                let desc = if def.width == 1 {
                    format!("{} -> {}", def.name, if v != 0 { "high" } else { "low" })
                } else {
                    format!("{} = {}", def.name, v)
                };
                events.push((cycle, desc));
            }
        }
        events.sort_by_key(|(c, _)| *c);
        let mut out = String::new();
        for (cycle, desc) in events {
            out.push_str(&format!("@{cycle:>5}  {desc}\n"));
        }
        out
    }

    pub(crate) fn signals(&self) -> &[SignalDef] {
        &self.signals
    }

    pub(crate) fn rows(&self) -> &[Vec<u64>] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_trace() -> (Trace, SignalId, SignalId) {
        let mut t = Trace::new();
        let clk_like = t.probe("lookup", 1);
        let bus = t.probe("label_out", 20);
        for c in 0..6u64 {
            t.sample_bool(clk_like, (2..4).contains(&c));
            t.sample(bus, if c >= 4 { 504 } else { 0 });
            t.commit_cycle();
        }
        (t, clk_like, bus)
    }

    #[test]
    fn records_and_reads_back() {
        let (t, lookup, bus) = demo_trace();
        assert_eq!(t.cycles(), 6);
        assert_eq!(t.value_at(lookup, 2), 1);
        assert_eq!(t.value_at(lookup, 4), 0);
        assert_eq!(t.value_at(bus, 5), 504);
    }

    #[test]
    fn transitions_capture_changes_only() {
        let (t, lookup, bus) = demo_trace();
        assert_eq!(t.transitions(lookup), vec![(0, 0), (2, 1), (4, 0)]);
        assert_eq!(t.transitions(bus), vec![(0, 0), (4, 504)]);
    }

    #[test]
    fn first_cycle_where_finds_rise() {
        let (t, lookup, bus) = demo_trace();
        assert_eq!(t.first_cycle_where(lookup, 1), Some(2));
        assert_eq!(t.first_cycle_where(bus, 504), Some(4));
        assert_eq!(t.first_cycle_where(bus, 9999), None);
    }

    #[test]
    fn ascii_render_contains_names_and_values() {
        let (t, _, _) = demo_trace();
        let s = t.render_ascii(0..6);
        assert!(s.contains("lookup"));
        assert!(s.contains("label_out"));
        assert!(s.contains("504"));
        assert!(s.contains('█'));
        assert!(s.contains('▁'));
    }

    #[test]
    fn transition_log_is_ordered() {
        let (t, _, _) = demo_trace();
        let log = t.render_transitions();
        let pos_high = log.find("lookup -> high").unwrap();
        let pos_val = log.find("label_out = 504").unwrap();
        assert!(pos_high < pos_val);
    }

    #[test]
    fn unsampled_signal_holds_value() {
        let mut t = Trace::new();
        let a = t.probe("a", 8);
        t.sample(a, 7);
        t.commit_cycle();
        t.commit_cycle(); // not re-sampled
        assert_eq!(t.value_at(a, 1), 7);
    }

    #[test]
    #[should_panic(expected = "probes must be declared")]
    fn late_probe_panics() {
        let mut t = Trace::new();
        let _ = t.probe("a", 1);
        t.commit_cycle();
        let _ = t.probe("b", 1);
    }
}
