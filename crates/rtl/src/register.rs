//! A D-type register with clock enable.
//!
//! Models the `NEW <label> REGISTER` of the data path (paper Fig. 12): the
//! value staged on the D input appears on Q only after the next rising clock
//! edge, and only when the enable was asserted for that edge.

use crate::{mask, Clocked};

/// A `width`-bit register. Values wider than the register are truncated on
/// the way in, as a narrower bus would.
#[derive(Debug, Clone)]
pub struct Register {
    width: u32,
    q: u64,
    d: u64,
    enable: bool,
    reset_value: u64,
}

impl Register {
    /// Creates a register of `width` bits that resets to `reset_value`.
    pub fn new(width: u32, reset_value: u64) -> Self {
        let reset_value = mask(reset_value, width);
        Self {
            width,
            q: reset_value,
            d: reset_value,
            enable: false,
            reset_value,
        }
    }

    /// Stages `value` on the D input and asserts the clock enable for the
    /// next edge.
    pub fn set(&mut self, value: u64) {
        self.d = mask(value, self.width);
        self.enable = true;
    }

    /// Current output (pre-edge value until `tick`).
    pub fn q(&self) -> u64 {
        self.q
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }
}

impl Clocked for Register {
    fn tick(&mut self) {
        if self.enable {
            self.q = self.d;
            self.enable = false;
        }
    }

    fn reset(&mut self) {
        self.q = self.reset_value;
        self.d = self.reset_value;
        self.enable = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_until_edge() {
        let mut r = Register::new(20, 0);
        r.set(500);
        assert_eq!(r.q(), 0, "pre-edge read must see the old value");
        r.tick();
        assert_eq!(r.q(), 500);
    }

    #[test]
    fn holds_without_enable() {
        let mut r = Register::new(8, 7);
        r.tick();
        assert_eq!(r.q(), 7);
        r.set(9);
        r.tick();
        r.tick(); // second edge with no new set: hold
        assert_eq!(r.q(), 9);
    }

    #[test]
    fn truncates_to_width() {
        let mut r = Register::new(20, 0);
        r.set(0xFFFF_FFFF);
        r.tick();
        assert_eq!(r.q(), 0xF_FFFF);
    }

    #[test]
    fn reset_restores_power_on_value() {
        let mut r = Register::new(8, 0xAA);
        r.set(1);
        r.tick();
        r.reset();
        assert_eq!(r.q(), 0xAA);
        // A pending (staged but not ticked) write is also cancelled.
        r.set(3);
        r.reset();
        r.tick();
        assert_eq!(r.q(), 0xAA);
    }
}
