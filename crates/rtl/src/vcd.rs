//! Value Change Dump (IEEE 1364) export for [`crate::Trace`].
//!
//! Lets the regenerated Fig. 14–16 waveforms be inspected in GTKWave or any
//! other VCD viewer alongside the ASCII rendering.

use crate::trace::Trace;
use std::fmt::Write as _;

/// Serializes a trace as a VCD document. `module` names the enclosing
/// scope; `timescale_ns` is the clock period in nanoseconds (20 ns for the
/// paper's 50 MHz Stratix clock).
pub fn to_vcd(trace: &Trace, module: &str, timescale_ns: u32) -> String {
    let mut out = String::new();
    let signals = trace.signals();

    out.push_str("$date\n  embedded-mpls reproduction\n$end\n");
    out.push_str("$version\n  mpls-rtl VCD writer\n$end\n");
    let _ = writeln!(out, "$timescale {timescale_ns}ns $end");
    let _ = writeln!(out, "$scope module {module} $end");
    for (i, def) in signals.iter().enumerate() {
        let _ = writeln!(
            out,
            "$var wire {} {} {} $end",
            def.width,
            ident(i),
            def.name
        );
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    let mut prev: Vec<Option<u64>> = vec![None; signals.len()];
    for (cycle, row) in trace.rows().iter().enumerate() {
        let mut changes = String::new();
        for (i, (&v, def)) in row.iter().zip(signals).enumerate() {
            if prev[i] != Some(v) {
                if def.width == 1 {
                    let _ = writeln!(changes, "{}{}", v & 1, ident(i));
                } else {
                    let _ = writeln!(changes, "b{:b} {}", v, ident(i));
                }
                prev[i] = Some(v);
            }
        }
        if !changes.is_empty() {
            let _ = writeln!(out, "#{cycle}");
            out.push_str(&changes);
        }
    }
    let _ = writeln!(out, "#{}", trace.cycles());
    out
}

/// VCD identifier codes: printable ASCII `!`..`~`, extended to multiple
/// characters when more than 94 signals exist.
fn ident(mut i: usize) -> String {
    const BASE: usize = 94;
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % BASE) as u8) as char);
        i /= BASE;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn idents_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = ident(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id), "duplicate ident for {i}");
        }
    }

    #[test]
    fn vcd_structure() {
        let mut t = Trace::new();
        let bit = t.probe("save", 1);
        let bus = t.probe("w_index", 10);
        for c in 0..4u64 {
            t.sample_bool(bit, c % 2 == 1);
            t.sample(bus, c);
            t.commit_cycle();
        }
        let vcd = to_vcd(&t, "info_base", 20);
        assert!(vcd.contains("$timescale 20ns $end"));
        assert!(vcd.contains("$var wire 1 ! save $end"));
        assert!(vcd.contains("$var wire 10 \" w_index $end"));
        assert!(vcd.contains("$enddefinitions $end"));
        // Initial dump at cycle 0, change markers afterwards.
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#1"));
        // Bus change encoded in binary.
        assert!(vcd.contains("b11 \""));
    }

    #[test]
    fn unchanged_cycles_emit_no_timestamp_body() {
        let mut t = Trace::new();
        let bus = t.probe("x", 8);
        for _ in 0..5 {
            t.sample(bus, 7);
            t.commit_cycle();
        }
        let vcd = to_vcd(&t, "m", 20);
        // Only the initial #0 and the terminal timestamp appear.
        assert_eq!(vcd.matches("#0").count(), 1);
        assert!(!vcd.contains("#2"));
        assert!(vcd.contains("#5"));
    }
}
